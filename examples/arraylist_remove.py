"""The paper's Section 2 workflow: developer guidance on the Array List.

This example mirrors the role of Figure 1: the ``whereIs`` method has an
existentially quantified postcondition, and a ``witness`` statement tells
the provers which witness to use -- the paper's "witness identification".
The example verifies the Array List twice, once with its proof annotations
stripped and once with them, and shows which obligations only go through
with the developer's guidance (the per-structure version of Table 2).

Run with:  python examples/arraylist_remove.py
"""

from repro.suite.array_list import build_array_list
from repro.verifier.engine import VerificationEngine


def summarize(tag, report):
    print(f"\n=== {tag} ===")
    for method_report in report.methods:
        failed = [o.sequent.label for o in method_report.failed_sequents]
        status = "ok" if not failed else f"failed: {', '.join(failed)}"
        print(
            f"  {method_report.method_name:<12} "
            f"{method_report.sequents_proved}/{method_report.sequents_total}  {status}"
        )
    print(
        f"  -> {report.sequents_proved}/{report.sequents_total} sequents, "
        f"{report.methods_verified}/{report.methods_total} methods"
    )


def main() -> None:
    array_list = build_array_list()
    engine = VerificationEngine()
    without = engine.verify_class(array_list, strip_proofs=True)
    with_proofs = engine.verify_class(array_list, strip_proofs=False)
    summarize("without proof language constructs", without)
    summarize("with proof language constructs", with_proofs)
    gained = with_proofs.sequents_proved - without.sequents_proved
    print(
        f"\nthe integrated proof language closed "
        f"{gained if gained > 0 else 0} additional sequent(s); the witness "
        "statement in whereIs resolves the existential postcondition."
    )


if __name__ == "__main__":
    main()
