"""Quickstart: verify a tiny annotated method end to end.

The example builds a one-method "counter" module with a contract and a class
invariant, runs the full pipeline (lowering -> guarded commands -> weakest
liberal preconditions -> splitting -> multi-prover dispatch) and prints the
per-sequent results, including which prover of the portfolio discharged each
sequent.

Run with:  python examples/quickstart.py
"""

from repro.suite.common import StructureBuilder
from repro.verifier.engine import VerificationEngine


def build_counter():
    s = StructureBuilder("Counter")
    s.concrete("value", "int")
    s.concrete("limit", "int")
    s.ghost("history", "int set")
    s.invariant("InRange", "0 <= value & value <= limit")
    s.invariant("Recorded", "value in history")

    m = s.method(
        "increment",
        requires="value < limit",
        modifies="value, history",
        ensures="value = old value + 1 & old value in history",
    )
    m.assign("value", "value + 1")
    m.ghost_assign("history", "history Un {value}")
    m.done()

    m = s.method(
        "reset",
        requires="0 <= limit",
        modifies="value, history",
        ensures="value = 0",
    )
    m.assign("value", "0")
    m.ghost_assign("history", "history Un {0}")
    m.done()
    return s.build()


def main() -> None:
    counter = build_counter()
    engine = VerificationEngine()
    report = engine.verify_class(counter)
    print(f"verifying {counter.name!r}")
    for method_report in report.methods:
        print(f"\nmethod {method_report.method_name}:")
        for outcome in method_report.outcomes:
            status = "proved" if outcome.proved else "FAILED"
            prover = f" [{outcome.prover}]" if outcome.proved else ""
            print(f"  {outcome.sequent.label:<28} {status}{prover}")
    print(
        f"\ntotal: {report.sequents_proved}/{report.sequents_total} sequents, "
        f"{report.methods_verified}/{report.methods_total} methods, "
        f"{report.elapsed:.1f}s"
    )


if __name__ == "__main__":
    main()
