"""Machine-checking the soundness argument of Section 5 / Appendix A.

Every integrated proof language construct ``p`` must be *stronger than
skip*: ``wlp([[p]], H) --> H``.  This example instantiates each construct of
Figure 3 (plus ``fix`` of Appendix B) with representative formulas, builds
the obligation from the construct's guarded-command translation, and has the
prover portfolio discharge it.

Run with:  python examples/soundness_check.py
"""

from repro.gcl.extended import Skip
from repro.logic import INT, Var
from repro.logic.parser import parse_formula
from repro.proofs.constructs import (
    Assuming,
    ByContradiction,
    Cases,
    Contradiction,
    Fix,
    Induct,
    Instantiate,
    Localize,
    Mp,
    Note,
    PickAny,
    PickWitness,
    ShowedCase,
    Witness,
)
from repro.proofs.soundness import SoundnessChecker
from repro.suite.common import StructureBuilder


def build_soundness_demo():
    """A tiny class using proof constructs, so ``jahob-py verify
    examples/soundness_check.py`` has a model to ingest (the wlp-level
    soundness sweep below stays the example's main act)."""
    s = StructureBuilder("SoundnessDemo")
    s.concrete("x", "int")
    s.invariant("NonNegative", "0 <= x")

    m = s.method(
        "bound",
        params="k: int",
        requires="x <= k",
        modifies="x",
        ensures="x <= k + 1",
    )
    m.note("Step", "x <= k + 1")
    m.assign("x", "x")
    m.done()
    return s.build()


def main() -> None:
    env = {"x": INT, "y": INT, "n": INT}
    f = lambda text: parse_formula(text, env)  # noqa: E731
    n = Var("n", INT)
    post = f("x <= y | y <= x")
    constructs = [
        Note("L", f("x <= x")),
        Localize(Note("inner", f("x <= x + 1")), "L", f("x <= x + 2")),
        Mp("L", f("x <= y"), f("x <= y + 1")),
        Assuming("h", f("x <= y"), Skip(), "c", f("x <= y + 1")),
        Cases((f("x <= y"), f("y <= x")), "L", f("x <= y | y <= x")),
        ShowedCase(1, "L", (f("x <= x"), f("x < 0"))),
        ByContradiction("L", f("x <= x"), Skip()),
        Contradiction("L", f("x = x")),
        Instantiate("L", f("ALL k : int. k <= k"), (Var("x", INT),)),
        Witness((Var("x", INT),), "L", f("EX k : int. k <= x")),
        PickWitness((Var("w", INT),), "h", f("w = w"), Skip(), "c", f("x = x")),
        PickAny((Var("z", INT),), Skip(), "L", f("z <= z")),
        Induct("L", f("0 <= n"), n, Skip()),
        Fix((Var("z", INT),), f("z = x"), Skip(), "L", f("z = x")),
    ]
    checker = SoundnessChecker()
    print("checking wlp([[p]], H) --> H for every proof construct:\n")
    all_ok = True
    for construct in constructs:
        report = checker.check(construct, post)
        status = "sound" if report.proved else "NOT PROVED"
        all_ok &= report.proved
        print(f"  {report.construct:<16} {status}  (prover: {report.prover})")
    print("\nall constructs verified" if all_ok else "\nsome checks failed")


if __name__ == "__main__":
    main()
