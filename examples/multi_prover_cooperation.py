"""Multiple provers cooperating on one verification problem.

The paper's integrated reasoning lets specialised provers work together: in
the Binary Tree, note statements expose shape facts to the structure
reasoner while the first-order/SMT provers handle abstraction facts.  This
example shows the same effect with the reproduction's portfolio on the
Linked List: cardinality obligations are discharged by the BAPA-style set
reasoner while the quantified structural obligations go to the SMT-lite
prover -- and restricting the portfolio to a single prover loses sequents.

Run with:  python examples/multi_prover_cooperation.py
"""

from repro.provers.dispatch import default_portfolio
from repro.suite.linked_structures import build_linked_list
from repro.verifier.engine import VerificationEngine


def run(tag, portfolio):
    engine = VerificationEngine(portfolio)
    report = engine.verify_class(build_linked_list())
    print(
        f"{tag:<28} {report.sequents_proved}/{report.sequents_total} sequents, "
        f"provers used: {report.provers_used}"
    )
    return report


def main() -> None:
    full = default_portfolio()
    run("full portfolio", full)
    run("SMT-lite only", full.only("smt"))
    run("set reasoner only", full.only("sets"))
    run("first-order prover only", full.only("fol"))


if __name__ == "__main__":
    main()
