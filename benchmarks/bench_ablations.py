"""Benchmark E5: ablations of the design choices DESIGN.md calls out.

* assumption-base control: the Hash Table's annotated sequents are dispatched
  with the ``from`` clauses honoured vs. ignored (Section 4.2's claim that an
  over-large assumption base degrades the provers);
* portfolio vs. single prover: the Linked List verified by the full portfolio
  vs. by the SMT-lite prover alone (integrated reasoning, Section 1/3).
"""

from __future__ import annotations

from repro.provers.dispatch import default_portfolio
from repro.suite.hash_table import build_hash_table
from repro.suite.linked_structures import build_linked_list
from repro.vcgen.assumptions import apply_from_clause, ignore_from_clause
from repro.verifier.engine import VerificationEngine

_SCALE = 0.4


def _hash_table_annotated_sequents():
    engine = VerificationEngine(default_portfolio().scaled(_SCALE))
    table = build_hash_table()
    sequents = []
    for method in table.methods:
        for sequent in engine.method_sequents(table, method):
            if sequent.from_hints:
                sequents.append(sequent)
    return engine, sequents


def test_assumption_base_control_on(benchmark):
    """Dispatch the from-annotated Hash Table sequents with selection ON."""
    engine, sequents = _hash_table_annotated_sequents()

    def run():
        return sum(
            1
            for sequent in sequents
            if engine.portfolio.dispatch(apply_from_clause(sequent)).proved
        )

    proved = benchmark.pedantic(run, rounds=1, iterations=1)
    assert proved >= 0


def test_assumption_base_control_off(benchmark):
    """The same sequents with the full assumption base (selection ignored)."""
    engine, sequents = _hash_table_annotated_sequents()

    def run():
        return sum(
            1
            for sequent in sequents
            if engine.portfolio.dispatch(ignore_from_clause(sequent)).proved
        )

    proved = benchmark.pedantic(run, rounds=1, iterations=1)
    assert proved >= 0


def test_portfolio_vs_single_prover(benchmark):
    """Full portfolio vs. SMT-only on the Linked List."""
    structure = build_linked_list()

    def run():
        full = VerificationEngine(default_portfolio().scaled(_SCALE)).verify_class(
            structure
        )
        smt_only = VerificationEngine(
            default_portfolio().scaled(_SCALE).only("smt")
        ).verify_class(structure)
        return full, smt_only

    full, smt_only = benchmark.pedantic(run, rounds=1, iterations=1)
    # Integrated reasoning: the portfolio proves at least as much as any
    # single prover alone.
    assert full.sequents_proved >= smt_only.sequents_proved
