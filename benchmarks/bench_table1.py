"""Benchmark E1: regenerate Table 1.

Table 1 of the paper reports, per data structure, the number of methods and
statements, the verification time, the specification variable / invariant
counts, and the number of uses of each integrated proof language construct.
One benchmark is emitted per data structure (its measured time is the
"Verification Time" column); the full formatted table is printed at the end
of the run.
"""

from __future__ import annotations

import pytest

from conftest import make_engine
from repro.suite import all_structures
from repro.verifier.report import Table1Row, format_table1, table1_rows
from repro.verifier.stats import class_statistics

_ROWS: list[Table1Row] = []


@pytest.mark.parametrize(
    "structure", all_structures(), ids=lambda cls: cls.name.replace(" ", "")
)
def test_table1_row(structure, benchmark):
    """Verify one data structure and record its Table 1 row."""
    engine = make_engine()

    def verify():
        return engine.verify_class(structure)

    report = benchmark.pedantic(verify, rounds=1, iterations=1)
    stats = class_statistics(structure)
    _ROWS.append(
        Table1Row(
            class_name=structure.name,
            methods=stats.methods,
            statements=stats.statements,
            verification_time=report.elapsed,
            spec_vars=stats.spec_vars,
            local_spec_vars=stats.local_spec_vars,
            invariants=stats.invariants,
            loop_invariants=stats.loop_invariants,
            notes=stats.construct("note"),
            notes_with_from=stats.notes_with_from,
            construct_counts=dict(stats.construct_counts),
            verified=report.verified,
        )
    )
    # Structural sanity: every structure must produce proof obligations and
    # prove at least half of them even at benchmark-scaled timeouts.
    assert report.sequents_total > 0
    assert report.sequents_proved * 2 >= report.sequents_total


def test_table1_print():
    """Print the assembled Table 1 (runs after the per-structure rows)."""
    if not _ROWS:
        rows = table1_rows(all_structures(), engine=None)
    else:
        rows = _ROWS
    print("\n\nTable 1 -- construct counts and verification times\n")
    print(format_table1(rows))
    assert len(rows) == len(all_structures())
