"""Benchmark E1: regenerate Table 1.

Table 1 of the paper reports, per data structure, the number of methods and
statements, the verification time, the specification variable / invariant
counts, and the number of uses of each integrated proof language construct.
One benchmark is emitted per data structure (its measured time is the
"Verification Time" column); the full formatted table is printed at the end
of the run.
"""

from __future__ import annotations

import pytest

from conftest import make_engine
from repro.logic.terms import term_stats
from repro.suite import all_structures
from repro.provers.result import PortfolioStatistics
from repro.verifier.report import Table1Row, format_performance, format_table1, table1_rows
from repro.verifier.stats import PerformanceCounters, class_statistics, performance_counters

_ROWS: list[Table1Row] = []
_PORTFOLIO_TOTALS = PortfolioStatistics()


@pytest.mark.parametrize(
    "structure", all_structures(), ids=lambda cls: cls.name.replace(" ", "")
)
def test_table1_row(structure, benchmark):
    """Verify one data structure and record its Table 1 row."""
    engine = make_engine()
    terms_before = term_stats()

    def verify():
        return engine.verify_class(structure)

    report = benchmark.pedantic(verify, rounds=1, iterations=1)
    _PORTFOLIO_TOTALS.merge(engine.portfolio.statistics)
    counters = performance_counters(engine.portfolio)
    benchmark.extra_info["proof_cache_hits"] = counters.proof_cache_hits
    benchmark.extra_info["proof_cache_misses"] = counters.proof_cache_misses
    benchmark.extra_info["terms_allocated"] = (
        counters.terms_allocated - terms_before.allocated
    )
    benchmark.extra_info["terms_interned"] = (
        counters.terms_interned - terms_before.interned_hits
    )
    stats = class_statistics(structure)
    _ROWS.append(
        Table1Row(
            class_name=structure.name,
            methods=stats.methods,
            statements=stats.statements,
            verification_time=report.elapsed,
            spec_vars=stats.spec_vars,
            local_spec_vars=stats.local_spec_vars,
            invariants=stats.invariants,
            loop_invariants=stats.loop_invariants,
            notes=stats.construct("note"),
            notes_with_from=stats.notes_with_from,
            construct_counts=dict(stats.construct_counts),
            verified=report.verified,
        )
    )
    # Structural sanity: every structure must produce proof obligations and
    # prove at least half of them even at benchmark-scaled timeouts.
    assert report.sequents_total > 0
    assert report.sequents_proved * 2 >= report.sequents_total


def test_table1_print():
    """Print the assembled Table 1 (runs after the per-structure rows)."""
    if not _ROWS:
        rows = table1_rows(all_structures(), engine=None)
    else:
        rows = _ROWS
    print("\n\nTable 1 -- construct counts and verification times\n")
    print(format_table1(rows))
    print()
    terms = performance_counters()
    print(
        format_performance(
            PerformanceCounters(
                terms_allocated=terms.terms_allocated,
                terms_interned=terms.terms_interned,
                proof_cache_hits=_PORTFOLIO_TOTALS.cache_hits,
                proof_cache_misses=_PORTFOLIO_TOTALS.cache_misses,
                sequents_attempted=_PORTFOLIO_TOTALS.sequents_attempted,
                sequents_proved=_PORTFOLIO_TOTALS.sequents_proved,
            )
        )
    )
    assert len(rows) == len(all_structures())
