"""Benchmark E1: regenerate Table 1.

Table 1 of the paper reports, per data structure, the number of methods and
statements, the verification time, the specification variable / invariant
counts, and the number of uses of each integrated proof language construct.
One benchmark is emitted per data structure (its measured time is the
"Verification Time" column); the full formatted table is printed at the end
of the run.

Besides the pytest-benchmark entry points, this module is runnable as a
script in **smoke mode** -- ``python benchmarks/bench_table1.py --smoke
--json out.json`` -- which verifies the fast catalogue classes on a
suite-scheduled two-job engine and writes a small JSON record (per-class
timings, scheduling and cache counters).  The CI tier-1 job runs exactly
this and uploads the JSON as a build artifact, so the perf trajectory is
recorded per commit.
"""

from __future__ import annotations

import pytest

from conftest import TIMEOUT_SCALE, make_engine
from repro.logic.terms import term_stats
from repro.provers.dispatch import default_portfolio
from repro.suite import all_structures
from repro.provers.result import PortfolioStatistics
from repro.verifier.engine import VerificationEngine
from repro.verifier.report import (
    Table1Row,
    format_performance,
    format_table1,
    table1_rows,
)
from repro.verifier.stats import (
    PerformanceCounters,
    class_statistics,
    performance_counters,
)

_ROWS: list[Table1Row] = []
_PORTFOLIO_TOTALS = PortfolioStatistics()


def run_suite(
    jobs: int = 1,
    structures=None,
    cache_dir=None,
    persist: bool = True,
    use_proof_cache: bool = True,
    suite_schedule: bool = False,
):
    """Verify a list of structures on a fresh benchmark-scaled engine.

    Shared by the ``--jobs N`` comparison benchmark below and the tier-1
    smoke tests (``tests/test_bench_smoke.py``); returns ``(engine,
    reports)`` so callers can inspect statistics and parallel scheduling.
    With ``suite_schedule`` the classes are verified as one job graph
    (:meth:`VerificationEngine.verify_suite`, longest class first) instead
    of class by class.
    """
    engine = VerificationEngine(
        default_portfolio(with_cache=use_proof_cache).scaled(TIMEOUT_SCALE),
        use_proof_cache=use_proof_cache,
        jobs=jobs,
        cache_dir=cache_dir,
        persist=persist,
    )
    structures = structures or all_structures()
    if suite_schedule:
        reports = engine.verify_suite(structures)
    else:
        reports = [engine.verify_class(cls) for cls in structures]
    return engine, reports


@pytest.mark.parametrize(
    "structure", all_structures(), ids=lambda cls: cls.name.replace(" ", "")
)
def test_table1_row(structure, benchmark):
    """Verify one data structure and record its Table 1 row."""
    engine = make_engine()
    terms_before = term_stats()

    def verify():
        return engine.verify_class(structure)

    report = benchmark.pedantic(verify, rounds=1, iterations=1)
    _PORTFOLIO_TOTALS.merge(engine.portfolio.statistics)
    counters = performance_counters(engine.portfolio)
    benchmark.extra_info["proof_cache_hits"] = counters.proof_cache_hits
    benchmark.extra_info["proof_cache_misses"] = counters.proof_cache_misses
    benchmark.extra_info["terms_allocated"] = (
        counters.terms_allocated - terms_before.allocated
    )
    benchmark.extra_info["terms_interned"] = (
        counters.terms_interned - terms_before.interned_hits
    )
    stats = class_statistics(structure)
    _ROWS.append(
        Table1Row(
            class_name=structure.name,
            methods=stats.methods,
            statements=stats.statements,
            verification_time=report.elapsed,
            spec_vars=stats.spec_vars,
            local_spec_vars=stats.local_spec_vars,
            invariants=stats.invariants,
            loop_invariants=stats.loop_invariants,
            notes=stats.construct("note"),
            notes_with_from=stats.notes_with_from,
            construct_counts=dict(stats.construct_counts),
            verified=report.verified,
        )
    )
    # Structural sanity: every structure must produce proof obligations and
    # prove at least half of them even at benchmark-scaled timeouts.
    assert report.sequents_total > 0
    assert report.sequents_proved * 2 >= report.sequents_total


@pytest.mark.parametrize("jobs", [2])
def test_table1_parallel_jobs(jobs, benchmark):
    """Sequential vs ``--jobs N``: re-verify the full suite with sharded
    dispatch and assert the verdicts match the sequential rows.

    The per-structure benchmarks above are the sequential baseline; this
    benchmark's wall time is the parallel counterpart (same workload, same
    timeouts, fresh engine), so the trajectory records the speedup.
    """

    def verify_parallel():
        return run_suite(jobs=jobs)

    engine, reports = benchmark.pedantic(verify_parallel, rounds=1, iterations=1)
    stats = engine.parallel_stats_total
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["dispatched"] = stats.dispatched
    benchmark.extra_info["cache_hits_memory"] = stats.hits_memory
    benchmark.extra_info["duplicates_folded"] = stats.duplicates_folded
    benchmark.extra_info["workers"] = len(stats.workers)
    by_name = {report.class_name: report for report in reports}
    for row in _ROWS:
        report = by_name[row.class_name]
        assert report.verified == row.verified, row.class_name
    if _ROWS:
        # The sequential benchmarks above proved exactly this many sequents.
        assert (
            sum(report.sequents_proved for report in reports)
            == _PORTFOLIO_TOTALS.sequents_proved
        )


@pytest.mark.parametrize("jobs", [2])
def test_table1_suite_scheduled(jobs, benchmark):
    """Whole-catalogue suite scheduling (longest class first): one job
    graph instead of eight per-class pool fills, verdicts identical to the
    sequential rows."""

    def verify_suite():
        return run_suite(jobs=jobs, suite_schedule=True)

    engine, reports = benchmark.pedantic(verify_suite, rounds=1, iterations=1)
    stats = engine.last_suite_stats
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["schedule_order"] = ", ".join(stats.schedule_order)
    benchmark.extra_info["dispatched"] = stats.dispatched
    benchmark.extra_info["duplicates_folded"] = stats.duplicates_folded
    assert stats.dispatched + stats.hits_memory + stats.hits_disk + (
        stats.duplicates_folded
    ) == stats.sequents_total
    by_name = {report.class_name: report for report in reports}
    for row in _ROWS:
        assert by_name[row.class_name].verified == row.verified, row.class_name


#: The quickly-verifying structures the smoke mode (and the tier-1 smoke
#: tests) exercise; their verdicts sit far from any prover timeout.
SMOKE_STRUCTURES = ("Array List", "Cursor List", "Linked List", "Circular List")


def run_smoke(jobs: int = 2, structure_names=SMOKE_STRUCTURES) -> dict:
    """One suite-scheduled smoke run, summarized as a JSON-ready dict.

    Small on purpose: a per-commit CI artifact that records the shape of
    the run (per-class timings, scheduling and cache counters) without
    the multi-minute full catalogue.
    """
    import time as _time

    chosen = [cls for cls in all_structures() if cls.name in structure_names]
    start = _time.monotonic()
    engine, reports = run_suite(jobs=jobs, structures=chosen, suite_schedule=True)
    wall = _time.monotonic() - start
    stats = engine.last_suite_stats
    counters = performance_counters(engine.portfolio)
    return {
        "mode": "smoke",
        "jobs": jobs,
        "timeout_scale": TIMEOUT_SCALE,
        "wall_seconds": round(wall, 3),
        "schedule_order": list(stats.schedule_order),
        # The adaptive plan (PR 5): per-class cost and which rung of the
        # cost model's fallback chain produced it.  A cold CI run records
        # "static" everywhere; warm-cache experiments show "measured".
        "schedule_plan": [
            {
                "name": cls.class_name,
                "cost_hint": round(cls.cost_hint, 6),
                "hint_source": cls.hint_source,
            }
            for cls in stats.classes
        ],
        "dispatch": {
            "backend": stats.backend,
            "sequents_total": stats.sequents_total,
            "dispatched": stats.dispatched,
            "hits_memory": stats.hits_memory,
            "hits_disk": stats.hits_disk,
            "duplicates_folded": stats.duplicates_folded,
        },
        "counters": counters.as_dict(),
        "classes": [
            {
                "name": report.class_name,
                "verified": report.verified,
                "methods": report.methods_total,
                "sequents_total": report.sequents_total,
                "sequents_proved": report.sequents_proved,
                "elapsed": round(report.elapsed, 3),
            }
            for report in reports
        ],
    }


def main(argv=None) -> int:
    """Script entry: ``--smoke`` (required) plus ``--json PATH``."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fast-structure suite-scheduled smoke benchmark",
    )
    parser.add_argument(
        "--jobs", type=int, default=2, help="worker processes (default 2)"
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH", help="write the record here"
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("only --smoke mode is scriptable; use pytest for the rest")
    record = run_smoke(jobs=args.jobs)
    text = json.dumps(record, indent=2, sort_keys=True)
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(text + "\n", encoding="utf-8")
    print(text)
    if not all(cls["verified"] for cls in record["classes"]):
        return 1
    return 0


def test_table1_print():
    """Print the assembled Table 1 (runs after the per-structure rows)."""
    if not _ROWS:
        rows = table1_rows(all_structures(), engine=None)
    else:
        rows = _ROWS
    print("\n\nTable 1 -- construct counts and verification times\n")
    print(format_table1(rows))
    print()
    terms = performance_counters()
    print(
        format_performance(
            PerformanceCounters(
                terms_allocated=terms.terms_allocated,
                terms_interned=terms.terms_interned,
                proof_cache_hits=_PORTFOLIO_TOTALS.cache_hits,
                proof_cache_misses=_PORTFOLIO_TOTALS.cache_misses,
                proof_cache_hits_disk=_PORTFOLIO_TOTALS.cache_hits_disk,
                sequents_attempted=_PORTFOLIO_TOTALS.sequents_attempted,
                sequents_proved=_PORTFOLIO_TOTALS.sequents_proved,
            )
        )
    )
    assert len(rows) == len(all_structures())


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    import sys

    sys.exit(main())
