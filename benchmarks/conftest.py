"""Shared fixtures for the benchmark harness.

The benchmarks re-generate the paper's experimental artifacts (Tables 1 and
2) on the reproduction's own prover portfolio.  Per-prover timeouts are
scaled down relative to the interactive defaults so that a full benchmark
run stays within minutes on a laptop; the shape of the results (which
structures verify fully without proof constructs, which need them, relative
verification times) is what is compared against the paper -- see
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.provers.dispatch import default_portfolio
from repro.verifier.engine import VerificationEngine

#: Scale factor applied to every per-prover timeout in the benchmarks.
TIMEOUT_SCALE = 0.4


@pytest.fixture
def engine() -> VerificationEngine:
    """A verification engine with benchmark-scaled prover timeouts."""
    return make_engine()


def make_engine(use_proof_cache: bool = True) -> VerificationEngine:
    """Engine factory for benchmarks that need a fresh engine per call."""
    return VerificationEngine(
        default_portfolio(with_cache=use_proof_cache).scaled(TIMEOUT_SCALE),
        use_proof_cache=use_proof_cache,
    )
