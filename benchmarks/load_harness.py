"""Load benchmark for the verification service front door.

Self-hosts a two-job daemon with an HTTP front door on a loopback port
and storms it with concurrent mixed-priority clients
(:mod:`repro.verifier.loadgen`), then writes a JSON record with latency
percentiles (p50/p95/p99), every admission rejection by code, and the
verdict check against a sequential baseline.  The nightly ``slow`` CI
job runs ``--smoke`` and uploads the JSON as a build artifact, the
service-layer counterpart of ``bench_table1.py --smoke``'s prover-layer
artifact.

Smoke mode must end healthy: zero dropped connections, zero exhausted
retry budgets, zero verdict mismatches -- a failing exit code here means
the admission layer broke under the very load it exists to absorb.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.verifier.loadgen import run_loadgen  # noqa: E402
from repro.verifier.report import format_loadgen  # noqa: E402

#: Matches the benchmark conftest's scale: generous margins on loaded CI
#: runners without multi-minute prover waits.
TIMEOUT_SCALE = 0.4


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the CI-sized load experiment (50 clients, 2 tenants)",
    )
    parser.add_argument(
        "--clients", type=int, default=50, help="concurrent clients (default 50)"
    )
    parser.add_argument(
        "--requests", type=int, default=4, help="requests per client (default 4)"
    )
    parser.add_argument(
        "--queue-limit", type=int, default=8, help="daemon queue bound (default 8)"
    )
    parser.add_argument(
        "--jobs", type=int, default=2, help="daemon worker processes (default 2)"
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH", help="write the record here"
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("only --smoke mode is supported; tune it with the flags")
    record = run_loadgen(
        clients=args.clients,
        requests_per_client=args.requests,
        queue_limit=args.queue_limit,
        jobs=args.jobs,
        timeout_scale=TIMEOUT_SCALE,
    )
    if args.json:
        Path(args.json).write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    print(format_loadgen(record))
    requests = record["requests"]
    healthy = (
        requests["dropped_connections"] == 0
        and requests["gave_up"] == 0
        and requests["succeeded"] == requests["total"]
        and not record["verdicts"]["mismatches"]
    )
    return 0 if healthy else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    sys.exit(main())
