"""Benchmark E4: single-edit incremental re-verification latency.

The watch-mode promise is that editing one method re-proves only the
sequents the edit invalidated.  This benchmark measures exactly that
workload: verify a class, apply a one-method edit (a new postcondition
conjunct), and compare a **cold** full re-run of the edited class on a
fresh engine against the **incremental** re-run on the warm engine's
dependency index.

Runnable as a script in **smoke mode** -- ``python
benchmarks/bench_incremental.py --smoke --json out.json`` -- which writes
a small JSON record (cold vs incremental wall time, the dirty/clean
accounting, and the speedup).  The CI tier-1 job runs exactly this and
uploads the JSON next to the bench-smoke artifact, so the incremental
latency trajectory is recorded per commit.  The smoke gate requires the
speedup to stay >= 10x (measured ~30-60x on the reference container).
"""

from __future__ import annotations

import time

import pytest

from conftest import TIMEOUT_SCALE
from repro.provers.dispatch import default_portfolio
from repro.suite.common import StructureBuilder
from repro.verifier.engine import VerificationEngine

#: The smoke gate: a one-method edit must re-verify at least this much
#: faster than a cold full run of the same class.
MIN_SPEEDUP = 10.0

BASE_ENSURES = "value = 0"
EDITED_ENSURES = "value = 0 & 0 in history"


def build_counter(reset_ensures: str = BASE_ENSURES):
    """The quickstart counter, with ``reset``'s postcondition swappable
    (both variants are provable; they differ in exactly one sequent
    fingerprint)."""
    s = StructureBuilder("Counter")
    s.concrete("value", "int")
    s.concrete("limit", "int")
    s.ghost("history", "int set")
    s.invariant("InRange", "0 <= value & value <= limit")
    s.invariant("Recorded", "value in history")
    m = s.method(
        "increment",
        requires="value < limit",
        modifies="value, history",
        ensures="value = old value + 1 & old value in history",
    )
    m.assign("value", "value + 1")
    m.ghost_assign("history", "history Un {value}")
    m.done()
    m = s.method(
        "reset",
        requires="0 <= limit",
        modifies="value, history",
        ensures=reset_ensures,
    )
    m.assign("value", "0")
    m.ghost_assign("history", "history Un {0}")
    m.done()
    return s.build()


def fresh_engine(jobs: int = 1) -> VerificationEngine:
    return VerificationEngine(
        default_portfolio().scaled(TIMEOUT_SCALE), jobs=jobs
    )


def run_edit_cycle(jobs: int = 1):
    """One measured edit cycle.

    Returns ``(cold_wall, incremental_wall, incremental_stats,
    cold_report, incremental_report)``: the cold wall is a full verify of
    the edited class on a fresh engine, the incremental wall is the same
    class on an engine whose dependency index is warm from the base
    variant.
    """
    warm = fresh_engine(jobs)
    warm.verify_class(build_counter())
    edited = build_counter(EDITED_ENSURES)

    start = time.monotonic()
    cold_report = fresh_engine(jobs).verify_class(edited)
    cold_wall = time.monotonic() - start

    start = time.monotonic()
    incremental_report, stats = warm.verify_class_incremental(edited)
    incremental_wall = time.monotonic() - start
    return cold_wall, incremental_wall, stats, cold_report, incremental_report


def test_incremental_edit_cycle(benchmark):
    """Benchmark the incremental half of the edit cycle and assert the
    verdict differential the tier-1 tests pin down."""
    engine = fresh_engine()
    engine.verify_class(build_counter())
    edited = build_counter(EDITED_ENSURES)

    def reverify():
        return engine.verify_class_incremental(edited)

    report, stats = benchmark.pedantic(reverify, rounds=1, iterations=1)
    benchmark.extra_info["dispatched"] = stats.dispatched
    benchmark.extra_info["sequents_clean"] = stats.sequents_clean
    benchmark.extra_info["sequents_dirty"] = stats.sequents_dirty
    assert report.verified
    assert stats.dispatched == stats.sequents_dirty == 1


@pytest.mark.parametrize("jobs", [1])
def test_incremental_speedup(jobs, benchmark):
    """Cold full re-run vs incremental re-run, as one benchmark row."""

    def cycle():
        return run_edit_cycle(jobs=jobs)

    cold, incremental, stats, cold_report, inc_report = benchmark.pedantic(
        cycle, rounds=1, iterations=1
    )
    benchmark.extra_info["cold_wall"] = round(cold, 4)
    benchmark.extra_info["incremental_wall"] = round(incremental, 4)
    assert cold_report.verified and inc_report.verified
    assert stats.dispatched < cold_report.sequents_total


def run_smoke(jobs: int = 1) -> dict:
    """One edit cycle, summarized as a JSON-ready dict (the CI artifact)."""
    cold, incremental, stats, cold_report, inc_report = run_edit_cycle(jobs)
    speedup = cold / incremental if incremental > 0 else float("inf")
    return {
        "mode": "smoke",
        "jobs": jobs,
        "timeout_scale": TIMEOUT_SCALE,
        "workload": {
            "class": "Counter",
            "edit": f"reset ensures: {BASE_ENSURES!r} -> {EDITED_ENSURES!r}",
        },
        "cold": {
            "wall_seconds": round(cold, 4),
            "sequents_total": cold_report.sequents_total,
            "sequents_proved": cold_report.sequents_proved,
            "verified": cold_report.verified,
        },
        "incremental": {
            "wall_seconds": round(incremental, 4),
            "sequents_total": stats.sequents_total,
            "sequents_clean": stats.sequents_clean,
            "sequents_dirty": stats.sequents_dirty,
            "dispatched": stats.dispatched,
            "methods_skipped": stats.methods_skipped,
            "dirty_labels": list(stats.dirty_labels),
            "verified": inc_report.verified,
        },
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
    }


def main(argv=None) -> int:
    """Script entry: ``--smoke`` (required) plus ``--json PATH``.

    Exit status gates the CI step: non-zero when a verdict regressed or
    the single-edit re-verify latency fell below the 10x speedup floor.
    """
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the single-edit incremental smoke benchmark",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1)"
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH", help="write the record here"
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("only --smoke mode is scriptable; use pytest for the rest")
    record = run_smoke(jobs=args.jobs)
    text = json.dumps(record, indent=2, sort_keys=True)
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(text + "\n", encoding="utf-8")
    print(text)
    if not (record["cold"]["verified"] and record["incremental"]["verified"]):
        return 1
    if record["incremental"]["dispatched"] >= record["cold"]["sequents_total"]:
        return 1
    if record["speedup"] < MIN_SPEEDUP:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    import sys

    sys.exit(main())
