"""Benchmark E2: regenerate Table 2.

Table 2 compares, per data structure, how many methods and sequents verify
*without* the integrated proof language constructs against the fully
annotated program.  The expected shape (the paper's headline result): the
simple structures verify fully either way, while the complex structures lose
methods/sequents when the proof constructs are stripped.
"""

from __future__ import annotations

import pytest

from conftest import make_engine
from repro.suite import all_structures
from repro.provers.result import PortfolioStatistics
from repro.verifier.report import Table2Row, format_performance, format_table2
from repro.verifier.stats import PerformanceCounters, performance_counters

_ROWS: list[Table2Row] = []
_PORTFOLIO_TOTALS = PortfolioStatistics()


@pytest.mark.parametrize(
    "structure", all_structures(), ids=lambda cls: cls.name.replace(" ", "")
)
def test_table2_row(structure, benchmark):
    """Verify one structure with and without proof constructs."""
    engine = make_engine()

    def verify_both():
        without = engine.verify_class(structure, strip_proofs=True)
        with_proofs = engine.verify_class(structure, strip_proofs=False)
        return without, with_proofs

    without, with_proofs = benchmark.pedantic(verify_both, rounds=1, iterations=1)
    _PORTFOLIO_TOTALS.merge(engine.portfolio.statistics)
    counters = performance_counters(engine.portfolio)
    benchmark.extra_info["proof_cache_hits"] = counters.proof_cache_hits
    benchmark.extra_info["proof_cache_misses"] = counters.proof_cache_misses
    _ROWS.append(
        Table2Row(
            class_name=structure.name,
            methods_without=without.methods_verified,
            methods_total=without.methods_total,
            sequents_without=without.sequents_proved,
            sequents_total_without=without.sequents_total,
            methods_with=with_proofs.methods_verified,
            sequents_with=with_proofs.sequents_proved,
            sequents_total_with=with_proofs.sequents_total,
        )
    )
    # The paper's qualitative claim: adding proof language constructs never
    # loses proved sequents and (for the annotated structures) gains some.
    assert with_proofs.sequents_proved >= without.sequents_proved
    assert with_proofs.methods_verified >= without.methods_verified


def test_table2_print():
    """Print the assembled Table 2."""
    print("\n\nTable 2 -- effect of proof language constructs\n")
    print(format_table2(_ROWS))
    print()
    terms = performance_counters()
    print(
        format_performance(
            PerformanceCounters(
                terms_allocated=terms.terms_allocated,
                terms_interned=terms.terms_interned,
                proof_cache_hits=_PORTFOLIO_TOTALS.cache_hits,
                proof_cache_misses=_PORTFOLIO_TOTALS.cache_misses,
                sequents_attempted=_PORTFOLIO_TOTALS.sequents_attempted,
                sequents_proved=_PORTFOLIO_TOTALS.sequents_proved,
            )
        )
    )
    assert len(_ROWS) <= len(all_structures())
