"""Term-kernel microbenchmarks: interning, substitution, simplify, wlp.

These isolate the hot paths the hash-consed kernel accelerates: deep-term
construction (pool hits versus fresh allocations), capture-avoiding
substitution over wide/deep formulas, fixpoint simplification, and
weakest-precondition generation over guarded commands with duplicated
branches.  The workload builders are plain functions parameterised by depth
so the tier-1 smoke test (``tests/test_bench_smoke.py``) can run the exact
same code at tiny sizes; perf regressions then show up in the BENCH_*.json
trajectory via the full-size runs here.
"""

from __future__ import annotations

from repro.gcl.simple import SAssert, SAssume, SChoice, SHavoc, SSeq
from repro.gcl.wlp import wlp
from repro.logic import builder as b
from repro.logic.simplify import clear_simplify_memos, simplify
from repro.logic.sorts import INT
from repro.logic.subst import substitute
from repro.logic.terms import Term, Var, dag_size


def build_deep_formula(depth: int) -> Term:
    """A deep conjunction/comparison tower over a handful of variables.

    Subterms repeat on purpose: with hash-consing the tree is a DAG and the
    memoized passes visit every distinct node once.
    """
    x, y, z = b.IntVar("x"), b.IntVar("y"), b.IntVar("z")
    formula = b.Lt(x, y)
    for level in range(depth):
        bound = b.IntVar(f"k{level % 4}")
        formula = b.And(
            b.Implies(b.Le(b.Plus(x, b.Int(level % 7)), z), formula),
            b.ForAll([bound], b.Or(b.Lt(bound, y), formula)),
        )
    return formula


def workload_interning(depth: int = 150, repeats: int = 3) -> int:
    """Rebuild the same deep formula several times; later rounds are pure
    pool hits."""
    last = 0
    for _ in range(repeats):
        last = dag_size(build_deep_formula(depth))
    return last


def workload_substitute(depth: int = 150) -> Term:
    """Substitute one leaf variable through a deep shared formula."""
    formula = build_deep_formula(depth)
    mapping = {Var("z", INT): b.Plus(b.IntVar("x"), b.Int(1))}
    return substitute(formula, mapping)


def workload_simplify(depth: int = 120, cold: bool = True) -> Term:
    """Fixpoint-simplify a deep formula (cold caches by default)."""
    formula = build_deep_formula(depth)
    if cold:
        clear_simplify_memos()
    return simplify(formula)


def build_branchy_command(depth: int) -> SSeq:
    """A guarded command with nested choices sharing subcommands."""
    x = b.IntVar("x")
    y = b.IntVar("y")
    check = SAssert(b.Le(b.Int(0), x), label="Bound")
    step = SSeq(
        (
            SAssume(b.Lt(x, y), label="Guard"),
            SHavoc((x,)),
            check,
        )
    )
    command: SSeq = step
    for _ in range(depth):
        command = SSeq((SChoice(command, command), check))
    return command


def workload_wlp(depth: int = 14) -> Term:
    """wlp over a command whose naive expansion is exponential in depth."""
    command = build_branchy_command(depth)
    return wlp(command, b.Le(b.Int(0), b.IntVar("y")))


def test_kernel_interning(benchmark):
    size = benchmark(workload_interning)
    assert size > 0


def test_kernel_substitute(benchmark):
    result = benchmark(workload_substitute)
    assert result.is_formula


def test_kernel_simplify(benchmark):
    result = benchmark(workload_simplify)
    assert result.is_formula


def test_kernel_wlp(benchmark):
    result = benchmark(workload_wlp)
    assert result.is_formula
