"""Prover micro-benchmarks.

These measure the individual reasoning systems of the portfolio on
representative sequent families drawn from the data-structure proofs:
ground arithmetic + equality (SMT-lite), quantified heap facts with
function updates (SMT-lite with instantiation), cardinality reasoning
(the BAPA-style set reasoner) and unification-based quantified reasoning
(the resolution prover).  They are the reproduction's counterpart of the
per-prover behaviour the paper describes qualitatively in Section 6.
"""

from __future__ import annotations

from repro.logic import BOOL, INT, OBJ, fun_of, map_of, set_of
from repro.logic.parser import parse_formula
from repro.provers import FolProver, ProofTask, SetCardinalityProver, SmtProver

_ENV = {
    "x": INT,
    "y": INT,
    "z": INT,
    "i": INT,
    "size": INT,
    "csize": INT,
    "old_csize": INT,
    "a": OBJ,
    "b": OBJ,
    "n": OBJ,
    "elements": map_of(INT, OBJ),
    "next": map_of(OBJ, OBJ),
    "nodes": set_of(OBJ),
    "old_nodes": set_of(OBJ),
    "S": set_of(OBJ),
    "T": set_of(OBJ),
}
_FUNCS = {"p": fun_of([OBJ], BOOL), "q": fun_of([OBJ], BOOL)}


def _task(assumptions, goal):
    return ProofTask(
        tuple(
            (f"h{i}", parse_formula(text, _ENV, _FUNCS))
            for i, text in enumerate(assumptions)
        ),
        parse_formula(goal, _ENV, _FUNCS),
    )


_SMT_GROUND = _task(["x <= y", "y < z", "a = b"], "x < z & next[a] = next[b]")
_SMT_QUANT = _task(
    [
        "ALL k : int. 0 <= k & k < size --> elements[k] ~= null",
        "0 <= i",
        "i < size",
    ],
    "elements[i := elements[i]][i] ~= null",
)
_SETS_CARD = _task(
    [
        "csize = card nodes",
        "old_nodes = nodes",
        "~(n in nodes)",
        "old_csize = csize",
    ],
    "card (nodes Un {n}) = old_csize + 1",
)
_FOL_CHAIN = _task(
    ["ALL x : obj. p(x) --> q(x)", "p(a)"],
    "q(a)",
)


def test_smt_ground_arithmetic_equality(benchmark):
    prover = SmtProver()
    result = benchmark(lambda: prover.prove(_SMT_GROUND, timeout=10.0))
    assert result.is_proved


def test_smt_quantified_array_facts(benchmark):
    prover = SmtProver()
    result = benchmark(lambda: prover.prove(_SMT_QUANT, timeout=10.0))
    assert result.is_proved


def test_sets_cardinality_reasoning(benchmark):
    prover = SetCardinalityProver()
    result = benchmark(lambda: prover.prove(_SETS_CARD, timeout=10.0))
    assert result.is_proved


def test_fol_quantified_chain(benchmark):
    prover = FolProver()
    result = benchmark(lambda: prover.prove(_FOL_CHAIN, timeout=10.0))
    assert result.is_proved
