"""A first-order saturation prover (resolution with factoring).

This prover is the stand-in for the first-order back-ends (SPASS, E) of the
paper's integrated reasoning setup.  It complements the SMT-lite prover: it
performs *unification-based* reasoning, so it can prove quantified goals and
chains of universally quantified facts that ground instantiation heuristics
miss, while being weak at arithmetic (it only knows syntactic facts about
integer literals) and at the theory of arrays.

The calculus is classic binary resolution plus positive factoring over
clauses obtained by NNF / Skolemization / CNF conversion, with:

* unit-preference and smallest-clause-first given-clause selection,
* forward subsumption (a new clause subsumed by an existing one is dropped),
* equality handled by adding reflexivity and, for the function symbols that
  occur in the problem, congruence axioms (a pragmatic, bounded treatment of
  equality in the SPASS/E role; the EUF-complete reasoning lives in the
  SMT-lite prover),
* limits on clause count, clause size and iterations so the prover always
  terminates within its budget.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..logic import builder as b
from ..logic.clauses import Clause, ClauseBudgetExceeded, Literal, cnf_clauses
from ..logic.nnf import matrix_of, skolemize, to_nnf
from ..logic.sorts import BOOL
from ..logic.subst import FreshNameGenerator, substitute
from ..logic.terms import (
    App,
    Binder,
    BoolLit,
    Const,
    IntLit,
    Term,
    Var,
    free_vars,
    function_symbols,
    subterms,
)
from .interface import Prover
from .result import Budget, Outcome, ProofTask, ProverResult
from .rewriter import prepare

__all__ = ["FolProver", "unify"]


# ---------------------------------------------------------------------------
# Unification
# ---------------------------------------------------------------------------


def _walk(term: Term, subst: dict[Var, Term]) -> Term:
    while isinstance(term, Var) and term in subst:
        term = subst[term]
    return term


def _occurs(var: Var, term: Term, subst: dict[Var, Term]) -> bool:
    term = _walk(term, subst)
    if term == var:
        return True
    return any(_occurs(var, child, subst) for child in term.children())


def unify(
    left: Term, right: Term, subst: dict[Var, Term] | None = None
) -> dict[Var, Term] | None:
    """Most general unifier of two terms, or None."""
    subst = dict(subst or {})
    stack = [(left, right)]
    while stack:
        l, r = stack.pop()
        l, r = _walk(l, subst), _walk(r, subst)
        if l == r:
            continue
        if isinstance(l, Var):
            if l.sort != r.sort or _occurs(l, r, subst):
                return None
            subst[l] = r
            continue
        if isinstance(r, Var):
            if l.sort != r.sort or _occurs(r, l, subst):
                return None
            subst[r] = l
            continue
        if isinstance(l, App) and isinstance(r, App):
            if l.op != r.op or len(l.args) != len(r.args):
                return None
            stack.extend(zip(l.args, r.args))
            continue
        if isinstance(l, Binder) or isinstance(r, Binder):
            return None
        return None  # distinct constants / literals
    return subst


def _apply(term: Term, subst: dict[Var, Term]) -> Term:
    if not subst:
        return term
    resolved = {var: _resolve_term(value, subst) for var, value in subst.items()}
    return substitute(term, resolved)


def _resolve_term(term: Term, subst: dict[Var, Term]) -> Term:
    previous = None
    current = term
    while previous != current:
        previous = current
        current = substitute(current, subst)
    return current


# ---------------------------------------------------------------------------
# Clause utilities
# ---------------------------------------------------------------------------


def _canonical_clause(clause: Clause) -> Clause:
    """Rename clause variables to a canonical numbering for deduplication."""
    literals = sorted(clause, key=lambda lit: (lit.positive, str(lit.atom)))
    mapping: dict[Var, Term] = {}
    for literal in literals:
        for sub in subterms(literal.atom):
            if isinstance(sub, Var) and sub not in mapping:
                mapping[sub] = Var(f"V{len(mapping)}", sub.sort)
    if not mapping:
        return clause
    return frozenset(
        Literal(substitute(lit.atom, mapping), lit.positive) for lit in clause
    )


def _freeze_free_variables(formula: Term) -> Term:
    """Replace the free variables of a task formula by rigid constants."""
    mapping = {var: Const(var.name, var.sort) for var in free_vars(formula)}
    if not mapping:
        return formula
    return substitute(formula, mapping)


def _rename_clause(clause: Clause, suffix: int) -> Clause:
    variables = set()
    for literal in clause:
        variables |= free_vars(literal.atom)
    mapping = {var: Var(f"{var.name}%{suffix}", var.sort) for var in variables}
    if not mapping:
        return clause
    return frozenset(
        Literal(substitute(lit.atom, mapping), lit.positive) for lit in clause
    )


def _clause_size(clause: Clause) -> int:
    return sum(len(str(lit.atom)) for lit in clause)


def _subsumes(general: Clause, specific: Clause) -> bool:
    """Very light subsumption: syntactic subset check."""
    return general <= specific


@dataclass
class _Limits:
    max_clauses: int = 3000
    max_clause_literals: int = 8
    max_iterations: int = 4000


class FolProver(Prover):
    """Resolution/factoring saturation prover."""

    name = "fol"

    def __init__(self, limits: _Limits | None = None) -> None:
        self.limits = limits or _Limits()

    # -- clausification --------------------------------------------------------

    def _clausify_task(self, task: ProofTask) -> list[Clause] | None:
        prepared = prepare(task)
        if prepared.trivially_proved:
            return []
        used: set[str] = set()
        formulas = prepared.ground + prepared.axioms
        for formula in formulas:
            used |= {v.name for v in free_vars(formula)}
            used |= set(function_symbols(formula))
        fresh = FreshNameGenerator(used)
        clauses: list[Clause] = []
        for formula in formulas:
            # Freeze the proof task's free variables into constants: they
            # denote fixed program values, and must not be treated as
            # unifiable variables by the resolution calculus (that would
            # strengthen the assumptions and be unsound).
            frozen = _freeze_free_variables(formula)
            matrix, _variables = matrix_of(skolemize(to_nnf(frozen), fresh))
            try:
                clauses.extend(cnf_clauses(matrix, max_clauses=400))
            except ClauseBudgetExceeded:
                continue  # drop over-large formulas; sound (fewer assumptions)
        return clauses

    def _equality_axioms(self, clauses: list[Clause]) -> list[Clause]:
        """Reflexivity plus bounded congruence axioms for occurring symbols."""
        axioms: list[Clause] = []
        sorts = set()
        symbols: dict[str, App] = {}
        for clause in clauses:
            for literal in clause:
                for sub in subterms(literal.atom):
                    if isinstance(sub, App) and sub.op == "eq":
                        sorts.add(sub.args[0].sort)
                    if isinstance(sub, App) and len(sub.args) >= 1:
                        symbols.setdefault(sub.op, sub)
        for index, sort in enumerate(sorts):
            var = Var(f"rx{index}", sort)
            axioms.append(frozenset({Literal(b.Eq(var, var), True)}))
        # Congruence for unary/binary applications of occurring symbols.
        for op, example in list(symbols.items())[:20]:
            if example.op in ("eq", "and", "or", "not", "implies", "iff"):
                continue
            if len(example.args) > 2 or example.sort == BOOL:
                continue
            params = [
                (Var(f"cx{i}", arg.sort), Var(f"cy{i}", arg.sort))
                for i, arg in enumerate(example.args)
            ]
            left = App(op, tuple(p[0] for p in params), example.sort)
            right = App(op, tuple(p[1] for p in params), example.sort)
            literals = [Literal(b.Eq(x, y), False) for x, y in params]
            literals.append(Literal(b.Eq(left, right), True))
            axioms.append(frozenset(literals))
        return axioms

    # -- inference rules ---------------------------------------------------------

    def _resolvents(self, left: Clause, right: Clause, suffix: int) -> list[Clause]:
        renamed = _rename_clause(right, suffix)
        out: list[Clause] = []
        for lit_l in left:
            for lit_r in renamed:
                if lit_l.positive == lit_r.positive:
                    continue
                mgu = unify(lit_l.atom, lit_r.atom)
                if mgu is None:
                    continue
                merged = (left - {lit_l}) | (renamed - {lit_r})
                resolved = frozenset(
                    Literal(_apply(lit.atom, mgu), lit.positive) for lit in merged
                )
                if len(resolved) <= self.limits.max_clause_literals:
                    out.append(resolved)
        return out

    def _factors(self, clause: Clause) -> list[Clause]:
        out: list[Clause] = []
        literals = list(clause)
        for a, c in itertools.combinations(literals, 2):
            if a.positive != c.positive:
                continue
            mgu = unify(a.atom, c.atom)
            if mgu is None:
                continue
            out.append(
                frozenset(
                    Literal(_apply(lit.atom, mgu), lit.positive) for lit in clause
                )
            )
        return out

    @staticmethod
    def _is_trivial(clause: Clause) -> bool:
        positives = {lit.atom for lit in clause if lit.positive}
        negatives = {lit.atom for lit in clause if not lit.positive}
        if positives & negatives:
            return True
        for literal in clause:
            atom = literal.atom
            if isinstance(atom, BoolLit) and atom.value == literal.positive:
                return True
            if isinstance(atom, App) and atom.op == "eq" and literal.positive:
                if atom.args[0] == atom.args[1]:
                    return True
            # Disequality between distinct integer literals is trivially true.
            if (
                not literal.positive
                and isinstance(atom, App)
                and atom.op == "eq"
                and isinstance(atom.args[0], IntLit)
                and isinstance(atom.args[1], IntLit)
                and atom.args[0].value != atom.args[1].value
            ):
                return True
        return False

    @staticmethod
    def _evaluate_ground_literals(clause: Clause) -> Clause | None:
        """Drop literals that are definitely false (e.g. ``3 = 4``)."""
        kept: list[Literal] = []
        for literal in clause:
            atom = literal.atom
            value: bool | None = None
            if isinstance(atom, BoolLit):
                value = atom.value
            elif isinstance(atom, App) and atom.op == "eq":
                left, right = atom.args
                if isinstance(left, IntLit) and isinstance(right, IntLit):
                    value = left.value == right.value
                elif isinstance(left, Const) and isinstance(right, Const):
                    value = None if left == right else None
            elif isinstance(atom, App) and atom.op in ("lt", "le"):
                left, right = atom.args
                if isinstance(left, IntLit) and isinstance(right, IntLit):
                    value = (
                        left.value < right.value
                        if atom.op == "lt"
                        else left.value <= right.value
                    )
            if value is None:
                kept.append(literal)
            elif value == literal.positive:
                return None  # literal true -> clause true -> useless
        return frozenset(kept)

    # -- main saturation loop ------------------------------------------------------

    def attempt(self, task: ProofTask, budget: Budget) -> ProverResult:
        clauses = self._clausify_task(task)
        if clauses == []:
            return ProverResult(Outcome.PROVED, reason="trivial")
        if clauses is None:
            return ProverResult(Outcome.UNKNOWN, reason="clausification failed")
        clauses = clauses + self._equality_axioms(clauses)
        processed: list[Clause] = []
        unprocessed: list[Clause] = []
        seen: set[Clause] = set()
        for clause in clauses:
            reduced = self._evaluate_ground_literals(clause)
            if reduced is None or self._is_trivial(reduced):
                continue
            if not reduced:
                return ProverResult(Outcome.PROVED, reason="empty input clause")
            reduced = _canonical_clause(reduced)
            if reduced not in seen:
                seen.add(reduced)
                unprocessed.append(reduced)
        iterations = 0
        rename_counter = 0
        while unprocessed:
            budget.check()
            iterations += 1
            if iterations > self.limits.max_iterations:
                return ProverResult(Outcome.UNKNOWN, reason="iteration limit")
            if len(seen) > self.limits.max_clauses:
                return ProverResult(Outcome.UNKNOWN, reason="clause limit")
            # Given-clause selection: smallest clause first (unit preference).
            unprocessed.sort(key=lambda c: (len(c), _clause_size(c)), reverse=True)
            given = unprocessed.pop()
            if any(_subsumes(other, given) for other in processed):
                continue
            processed.append(given)
            new_clauses: list[Clause] = []
            for other in processed:
                rename_counter += 1
                new_clauses.extend(self._resolvents(given, other, rename_counter))
            new_clauses.extend(self._factors(given))
            for clause in new_clauses:
                reduced = self._evaluate_ground_literals(clause)
                if reduced is None or self._is_trivial(reduced):
                    continue
                if not reduced:
                    return ProverResult(
                        Outcome.PROVED,
                        reason=f"empty clause after {iterations} iterations",
                    )
                reduced = _canonical_clause(reduced)
                if reduced in seen:
                    continue
                seen.add(reduced)
                unprocessed.append(reduced)
        return ProverResult(Outcome.UNKNOWN, reason="saturated without proof")
