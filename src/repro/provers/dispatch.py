"""The multi-prover dispatcher (Jahob's "integrated reasoning" loop).

Jahob does not rely on a single monolithic prover: every proof obligation is
offered to a portfolio of reasoning systems, each with its own timeout; the
first prover that succeeds discharges the sequent and the others are never
consulted.  This module reproduces that behaviour for the from-scratch
portfolio of this package:

* ``smt``          -- the lazy SMT-lite prover (stand-in for CVC3 / Z3),
* ``sets``         -- the BAPA-style set-with-cardinality reasoner
  (stand-in for the MONA / BAPA decision procedures),
* ``fol``          -- the resolution prover (stand-in for SPASS / E),
* ``model-finder`` -- a counter-model search used only to report refutations.

The dispatcher also implements the paper's *assumption base control*: when a
proof obligation carries a ``from`` clause (a set of named assumptions), only
those assumptions are passed to the provers.

Dispatch is split into three phases (cache consult / prover run /
accounting+store) so the schedulers can distribute them: the per-class
sharder (:mod:`repro.verifier.parallel`) and the suite-level scheduler
(:mod:`repro.verifier.scheduler`) run phase 1 and 3 in the parent and
phase 2 in worker processes rebuilt from :class:`PortfolioSpec`.  The
end-to-end picture lives in ``docs/architecture.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .cache import CachedVerdict, ProofCache
from .fol import FolProver
from .interface import Prover
from .model_finder import FiniteModelFinder
from .result import (
    Outcome,
    PortfolioStatistics,
    ProofTask,
    ProverResult,
)
from .setsolver import SetCardinalityProver
from .smt import SmtProver

__all__ = [
    "ProverPortfolio",
    "DispatchResult",
    "PortfolioSpec",
    "PROVER_FACTORIES",
    "default_portfolio",
]


#: Registry mapping prover names to zero-argument factories.  The parallel
#: scheduler serializes a portfolio as a :class:`PortfolioSpec` (names and
#: timeouts only) and each worker process rebuilds the actual prover objects
#: from this registry -- prover instances themselves never cross process
#: boundaries.
PROVER_FACTORIES: dict[str, type[Prover]] = {
    SmtProver.name: SmtProver,
    SetCardinalityProver.name: SetCardinalityProver,
    FolProver.name: FolProver,
    FiniteModelFinder.name: FiniteModelFinder,
}


@dataclass
class DispatchResult:
    """Everything the verifier needs to know about one dispatched sequent.

    ``cache_origin`` is empty for sequents that actually ran provers and
    ``"memory"`` / ``"disk"`` for cache hits, depending on whether the
    verdict was produced during this process or loaded from a persistent
    store.

    ``wall`` is the wall-clock duration of the prover phase
    (:meth:`ProverPortfolio.run_provers`) for sequents that actually ran
    provers -- measured in whichever process ran them -- and 0.0 for
    cache hits.  It feeds the scheduler's measured cost profiles
    (:mod:`repro.verifier.costmodel`); ``elapsed`` stays the per-process
    CPU total the provers themselves reported.
    """

    task: ProofTask
    proved: bool
    refuted: bool = False
    winning_prover: str = ""
    attempts: list[ProverResult] = field(default_factory=list)
    cached: bool = False
    cache_origin: str = ""
    wall: float = 0.0

    @property
    def elapsed(self) -> float:
        return sum(result.elapsed for result in self.attempts)


@dataclass
class PortfolioEntry:
    """A prover together with its per-sequent timeout."""

    prover: Prover
    timeout: float
    enabled: bool = True


class ProverPortfolio:
    """Ordered portfolio of provers with per-prover timeouts.

    When ``proof_cache`` is set, :meth:`dispatch` consults it before running
    any prover and records every verdict afterwards.  A cache is only valid
    for one prover line-up with fixed timeouts, so the :meth:`only` /
    :meth:`without` / :meth:`scaled` copies never share the parent's cache.
    """

    def __init__(
        self,
        entries: list[PortfolioEntry],
        proof_cache: ProofCache | None = None,
    ) -> None:
        self.entries = entries
        self.statistics = PortfolioStatistics()
        self.proof_cache = proof_cache

    # -- configuration ---------------------------------------------------------

    def only(self, *names: str) -> "ProverPortfolio":
        """A copy of the portfolio restricted to the named provers."""
        kept = [
            PortfolioEntry(e.prover, e.timeout, e.enabled)
            for e in self.entries
            if e.prover.name in names
        ]
        return ProverPortfolio(
            kept, ProofCache() if self.proof_cache is not None else None
        )

    def without(self, *names: str) -> "ProverPortfolio":
        """A copy of the portfolio with the named provers removed."""
        kept = [
            PortfolioEntry(e.prover, e.timeout, e.enabled)
            for e in self.entries
            if e.prover.name not in names
        ]
        return ProverPortfolio(
            kept, ProofCache() if self.proof_cache is not None else None
        )

    def scaled(self, factor: float) -> "ProverPortfolio":
        """A copy with all per-prover timeouts scaled by ``factor``."""
        return ProverPortfolio(
            [
                PortfolioEntry(e.prover, e.timeout * factor, e.enabled)
                for e in self.entries
            ],
            ProofCache() if self.proof_cache is not None else None,
        )

    @property
    def prover_names(self) -> list[str]:
        return [entry.prover.name for entry in self.entries if entry.enabled]

    # -- dispatching -------------------------------------------------------------

    def dispatch(self, task: ProofTask) -> DispatchResult:
        """Offer ``task`` to the provers in order until one proves it.

        With a proof cache attached, a sequent whose canonical fingerprint
        has been dispatched before is answered from the cache without
        consulting any prover.
        """
        key, hit = self.consult_cache(task)
        if hit is not None:
            return hit
        start = time.monotonic()
        result = self.run_provers(task)
        result.wall = time.monotonic() - start
        self.record_outcome(result)
        self.store_verdict(key, result)
        return result

    # The three dispatch phases are exposed separately so the parallel
    # scheduler (:mod:`repro.verifier.parallel`) can run the cache phase in
    # the parent, the prover phase in worker processes, and the accounting /
    # store phase back in the parent -- with counters and verdicts identical
    # to a sequential :meth:`dispatch` loop over the same task order.

    def consult_cache(
        self, task: ProofTask
    ) -> tuple[tuple | None, DispatchResult | None]:
        """Phase 1: count the attempt and answer from the cache if possible.

        Returns ``(key, hit)`` where ``key`` is the task's fingerprint (or
        ``None`` without a cache) and ``hit`` a finished cached
        :class:`DispatchResult` (or ``None`` on a miss).
        """
        self.statistics.sequents_attempted += 1
        cache = self.proof_cache
        if cache is None:
            return None, None
        key = cache.key(task)
        verdict = cache.lookup(key)
        if verdict is None:
            self.statistics.cache_misses += 1
            return key, None
        self.statistics.cache_hits += 1
        if verdict.origin == "disk":
            self.statistics.cache_hits_disk += 1
        if verdict.proved:
            self.statistics.sequents_proved += 1
        return key, DispatchResult(
            task=task,
            proved=verdict.proved,
            refuted=verdict.refuted,
            winning_prover=verdict.winning_prover,
            cached=True,
            cache_origin=verdict.origin,
        )

    def run_provers(self, task: ProofTask) -> DispatchResult:
        """Phase 2: run the portfolio on a cache miss (no accounting)."""
        result = DispatchResult(task=task, proved=False)
        for entry in self.entries:
            if not entry.enabled:
                continue
            prover_result = entry.prover.prove(task, timeout=entry.timeout)
            result.attempts.append(prover_result)
            if prover_result.outcome is Outcome.PROVED:
                result.proved = True
                result.winning_prover = entry.prover.name
                break
            if prover_result.outcome is Outcome.REFUTED:
                result.refuted = True
                result.winning_prover = entry.prover.name
                break
        return result

    def record_outcome(self, result: DispatchResult) -> None:
        """Phase 3a: fold a :meth:`run_provers` result into the statistics."""
        for prover_result in result.attempts:
            self.statistics.record(prover_result.prover, prover_result)
        if result.proved:
            self.statistics.sequents_proved += 1

    def store_verdict(self, key: tuple | None, result: DispatchResult) -> None:
        """Phase 3b: remember the verdict (and its measured cost) for
        future duplicates and for the persistent store's cost profiles."""
        if self.proof_cache is not None and key is not None:
            self.proof_cache.store(
                key,
                CachedVerdict(
                    result.proved,
                    result.refuted,
                    result.winning_prover,
                    wall=result.wall,
                    cpu=result.elapsed,
                ),
            )


def default_portfolio(
    smt_timeout: float = 4.0,
    sets_timeout: float = 1.5,
    fol_timeout: float = 2.0,
    model_finder_timeout: float = 0.0,
    with_cache: bool = True,
) -> ProverPortfolio:
    """The standard portfolio used by the verification engine.

    The model finder is disabled by default (timeout 0) because refutation of
    invalid sequents is a diagnostic aid, not part of verification; pass a
    positive timeout to enable it.  ``with_cache`` attaches a sequent-level
    :class:`ProofCache` (pass False for cold-cache measurements).
    """
    entries = [
        PortfolioEntry(SmtProver(), smt_timeout),
        PortfolioEntry(SetCardinalityProver(), sets_timeout),
        PortfolioEntry(FolProver(), fol_timeout),
    ]
    if model_finder_timeout > 0:
        entries.append(PortfolioEntry(FiniteModelFinder(), model_finder_timeout))
    return ProverPortfolio(entries, ProofCache() if with_cache else None)


@dataclass(frozen=True)
class PortfolioSpec:
    """A picklable description of a portfolio: prover names and timeouts.

    This is the unit shipped to worker processes (worker-side portfolio
    construction) and the identity a persistent proof cache is bound to:
    two runs share disk verdicts only when their specs -- and the
    fingerprint scheme -- agree.
    """

    entries: tuple[tuple[str, float], ...]

    @classmethod
    def from_portfolio(cls, portfolio: ProverPortfolio) -> "PortfolioSpec":
        """Describe ``portfolio``; raises ``ValueError`` for provers outside
        :data:`PROVER_FACTORIES` (custom prover objects cannot be rebuilt in
        a worker process)."""
        entries = []
        for entry in portfolio.entries:
            if not entry.enabled:
                continue
            name = entry.prover.name
            if name not in PROVER_FACTORIES:
                raise ValueError(
                    f"prover {name!r} is not in PROVER_FACTORIES; parallel "
                    "dispatch and persistent caching need reconstructible provers"
                )
            entries.append((name, float(entry.timeout)))
        return cls(tuple(entries))

    def build(self, proof_cache: ProofCache | None = None) -> ProverPortfolio:
        """Construct a fresh portfolio matching this spec."""
        return ProverPortfolio(
            [
                PortfolioEntry(PROVER_FACTORIES[name](), timeout)
                for name, timeout in self.entries
            ],
            proof_cache,
        )

    @property
    def cache_key(self) -> str:
        """The persistent-cache compatibility key of this line-up."""
        return ";".join(f"{name}:{timeout:g}" for name, timeout in self.entries)
