"""Ground reasoning support for the theory of functional arrays (maps).

Java fields and arrays are modelled as map-valued variables updated with
``store`` (function update), exactly as in Jahob's translation of field and
array assignments.  The combined EUF+LIA theory checker treats ``select`` and
``store`` as uninterpreted symbols, so this module supplies the missing
*read-over-write* reasoning by instantiating the array axioms for the
select-over-store patterns that actually occur in a proof problem:

    select(store(m, k, v), j) = v          when  j = k
    select(store(m, k, v), j) = select(m, j) when  j /= k

For every subterm ``select(store(m, k, v), j)`` of the problem the lemma

    (j = k  -->  select(store(m,k,v), j) = v)  AND
    (j /= k -->  select(store(m,k,v), j) = select(m, j))

is added as a ground fact.  The generation is iterated because the second
conjunct introduces ``select(m, j)`` which may itself be a select-over-store.
"""

from __future__ import annotations

from ..logic import builder as b
from ..logic.simplify import simplify
from ..logic.terms import App, Binder, Term

__all__ = ["select_store_lemmas"]

_MAX_ROUNDS = 6
_MAX_LEMMAS = 400


def _select_over_store_terms(formulas: list[Term]) -> list[App]:
    """All ``select(store(...), key)`` subterms, not descending into binders."""
    found: list[App] = []
    seen: set[Term] = set()
    stack: list[Term] = list(formulas)
    while stack:
        term = stack.pop()
        if term in seen or isinstance(term, Binder):
            continue
        seen.add(term)
        stack.extend(term.children())
        if (
            isinstance(term, App)
            and term.op == "select"
            and isinstance(term.args[0], App)
            and term.args[0].op == "store"
        ):
            found.append(term)
    return found


def _lemma_for(read: App) -> Term:
    """The read-over-write case split for one select-over-store term."""
    store = read.args[0]
    assert isinstance(store, App) and store.op == "store"
    base, key, value = store.args
    index = read.args[1]
    hit = b.Implies(b.Eq(index, key), b.Eq(read, value))
    miss = b.Implies(b.Not(b.Eq(index, key)), b.Eq(read, b.Select(base, index)))
    return b.And(hit, miss)


def select_store_lemmas(formulas: list[Term]) -> list[Term]:
    """Ground read-over-write lemmas for every select-over-store pattern."""
    lemmas: list[Term] = []
    produced: set[Term] = set()
    work = list(formulas)
    for _ in range(_MAX_ROUNDS):
        new_lemmas: list[Term] = []
        for read in _select_over_store_terms(work):
            if read in produced:
                continue
            produced.add(read)
            lemma = simplify(_lemma_for(read))
            new_lemmas.append(lemma)
            if len(lemmas) + len(new_lemmas) >= _MAX_LEMMAS:
                break
        if not new_lemmas:
            break
        lemmas.extend(new_lemmas)
        work = new_lemmas
        if len(lemmas) >= _MAX_LEMMAS:
            break
    return lemmas
