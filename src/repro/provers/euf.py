"""Congruence closure for ground equality reasoning (EUF).

This component plays the role of the equality core of the SMT provers Jahob
delegates to.  Given a set of ground equalities and disequalities over terms
(uninterpreted functions, constants, interpreted function symbols treated as
uninterpreted), it decides satisfiability by congruence closure, and exposes
the equivalence classes so the arithmetic solver can exchange equalities with
it (a lightweight Nelson-Oppen combination).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.terms import App, Binder, BoolLit, Const, IntLit, Term, Var

__all__ = ["CongruenceClosure", "EufConflict"]


@dataclass
class EufConflict:
    """A detected conflict: the disequality violated by the closure."""

    left: Term
    right: Term
    reason: str = ""


class CongruenceClosure:
    """Incremental congruence closure over ground terms.

    Terms are interned into integer node ids.  Function applications are
    curried into ``(op, child_ids)`` signatures for congruence detection.
    Binders are treated as opaque constants (they are ground lambdas or
    comprehensions that survived simplification).
    """

    def __init__(self) -> None:
        self._ids: dict[Term, int] = {}
        self._terms: list[Term] = []
        self._parent: list[int] = []
        self._rank: list[int] = []
        self._signature: dict[tuple, int] = {}
        self._uses: list[list[int]] = []  # node -> application nodes using it
        self._args: list[tuple[str, tuple[int, ...]] | None] = []
        self._disequalities: list[tuple[int, int, Term, Term]] = []
        self._pending: list[tuple[int, int]] = []

    # -- interning -------------------------------------------------------------

    def intern(self, term: Term) -> int:
        """Intern ``term`` (and its subterms) and return its node id."""
        if term in self._ids:
            return self._ids[term]
        if isinstance(term, App):
            child_ids = tuple(self.intern(arg) for arg in term.args)
            node = self._new_node(term, (term.op, child_ids))
            for child in child_ids:
                self._uses[self.find(child)].append(node)
            self._update_signature(node)
        elif isinstance(term, (Var, Const, IntLit, BoolLit, Binder)):
            node = self._new_node(term, None)
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot intern {type(term)!r}")
        return node

    def _new_node(self, term: Term, args) -> int:
        node = len(self._terms)
        self._ids[term] = node
        self._terms.append(term)
        self._parent.append(node)
        self._rank.append(0)
        self._uses.append([])
        self._args.append(args)
        return node

    # -- union-find --------------------------------------------------------------

    def find(self, node: int) -> int:
        root = node
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[node] != root:
            self._parent[node], node = root, self._parent[node]
        return root

    def _union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._uses[ra].extend(self._uses[rb])
        return ra

    def _update_signature(self, node: int) -> None:
        args = self._args[node]
        if args is None:
            return
        op, child_ids = args
        signature = (op, tuple(self.find(c) for c in child_ids))
        existing = self._signature.get(signature)
        if existing is None:
            self._signature[signature] = node
        elif self.find(existing) != self.find(node):
            self._pending.append((existing, node))

    # -- public API ---------------------------------------------------------------

    def assert_equal(self, left: Term, right: Term) -> None:
        """Assert ``left = right``."""
        self._pending.append((self.intern(left), self.intern(right)))
        self._process()

    def assert_distinct(self, left: Term, right: Term) -> None:
        """Assert ``left != right``."""
        lid, rid = self.intern(left), self.intern(right)
        self._disequalities.append((lid, rid, left, right))

    def are_equal(self, left: Term, right: Term) -> bool:
        """True when the closure entails ``left = right``."""
        return self.find(self.intern(left)) == self.find(self.intern(right))

    def check(self) -> EufConflict | None:
        """Return a conflict if some asserted disequality is violated, or if
        two distinct integer/boolean literals were merged."""
        self._process()
        for lid, rid, left, right in self._disequalities:
            if self.find(lid) == self.find(rid):
                return EufConflict(left, right, "disequality violated")
        # Distinct literals must not be merged.
        literal_classes: dict[int, Term] = {}
        for term, node in self._ids.items():
            if isinstance(term, (IntLit, BoolLit)):
                root = self.find(node)
                other = literal_classes.get(root)
                if other is not None and other != term:
                    return EufConflict(other, term, "distinct literals merged")
                literal_classes[root] = term
        return None

    def _process(self) -> None:
        while self._pending:
            a, b = self._pending.pop()
            ra, rb = self.find(a), self.find(b)
            if ra == rb:
                continue
            users = list(self._uses[ra]) + list(self._uses[rb])
            self._union(ra, rb)
            for user in users:
                self._update_signature(user)

    # -- class inspection -----------------------------------------------------------

    def equivalence_classes(self) -> list[list[Term]]:
        """Return the current equivalence classes (lists of terms)."""
        classes: dict[int, list[Term]] = {}
        for term, node in self._ids.items():
            classes.setdefault(self.find(node), []).append(term)
        return list(classes.values())

    def implied_equalities(self, terms: list[Term]) -> list[tuple[Term, Term]]:
        """Pairs among ``terms`` the closure has identified as equal."""
        by_class: dict[int, list[Term]] = {}
        for term in terms:
            if term in self._ids:
                by_class.setdefault(self.find(self._ids[term]), []).append(term)
        pairs: list[tuple[Term, Term]] = []
        for members in by_class.values():
            representative = members[0]
            for other in members[1:]:
                pairs.append((representative, other))
        return pairs
