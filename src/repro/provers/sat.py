"""A CDCL propositional SAT solver.

This is the boolean core of the SMT-lite prover (the stand-in for the
CVC3/Z3 back-ends Jahob dispatches to).  It implements the standard
conflict-driven clause learning loop:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning,
* non-chronological backjumping,
* VSIDS-style activity-based decision heuristic with decay,
* restarts on a Luby-like schedule.

Variables are positive integers; literals are signed integers (DIMACS
convention).  The solver is deliberately self-contained so it can be tested
exhaustively against a brute-force oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SatSolver", "SatResult", "Tseitin"]


@dataclass
class SatResult:
    """Result of a SAT call: satisfiable flag and a model if SAT."""

    satisfiable: bool
    model: dict[int, bool] = field(default_factory=dict)
    conflicts: int = 0
    decisions: int = 0


class SatSolver:
    """CDCL SAT solver over integer literals."""

    def __init__(self) -> None:
        self.clauses: list[list[int]] = []
        self.num_vars = 0
        self._seen_clauses: set[tuple[int, ...]] = set()

    def add_clause(self, literals: list[int] | tuple[int, ...]) -> None:
        """Add a clause (a disjunction of non-zero integer literals).

        Duplicate clauses (same sorted literal set) are ignored, so repeated
        ``add_clauses`` calls with overlapping translations don't bloat the
        watch lists.
        """
        clause = sorted(set(literals), key=abs)
        if any(-lit in clause for lit in clause):
            return  # tautology
        key = tuple(clause)
        if key in self._seen_clauses:
            return
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self.num_vars = max(self.num_vars, abs(lit))
        self._seen_clauses.add(key)
        self.clauses.append(list(clause))

    def add_clauses(self, clauses) -> None:
        for clause in clauses:
            self.add_clause(clause)

    # -- solving --------------------------------------------------------------

    def solve(
        self,
        assumptions: list[int] | tuple[int, ...] = (),
        max_conflicts: int | None = None,
        should_stop=None,
    ) -> SatResult:
        """Solve the current clause set under optional assumptions.

        ``should_stop`` is an optional callable polled periodically; when it
        returns True the solver raises ``TimeoutError``.
        """
        state = _SolverState(self.num_vars, [list(c) for c in self.clauses])
        for lit in assumptions:
            state.num_vars = max(state.num_vars, abs(lit))
        state.grow()
        # Assumptions become unit clauses for this call.
        for lit in assumptions:
            state.clauses.append([lit])
        return state.search(max_conflicts, should_stop)


class _SolverState:
    def __init__(self, num_vars: int, clauses: list[list[int]]) -> None:
        self.num_vars = num_vars
        self.clauses = clauses
        self.learned: list[list[int]] = []

    def grow(self) -> None:
        n = self.num_vars + 1
        self.assign: list[int] = [0] * n  # 0 unassigned, 1 true, -1 false
        self.level: list[int] = [0] * n
        self.reason: list[list[int] | None] = [None] * n
        self.activity: list[float] = [0.0] * n
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.watches: dict[int, list[list[int]]] = {}
        self.var_inc = 1.0
        self.conflicts = 0
        self.decisions = 0

    # -- basic operations ------------------------------------------------------

    def value(self, lit: int) -> int:
        sign = 1 if lit > 0 else -1
        return self.assign[abs(lit)] * sign

    def watch(self, lit: int, clause: list[int]) -> None:
        self.watches.setdefault(lit, []).append(clause)

    def attach_clause(self, clause: list[int]) -> None:
        if len(clause) >= 2:
            self.watch(-clause[0], clause)
            self.watch(-clause[1], clause)

    def enqueue(self, lit: int, reason: list[int] | None) -> bool:
        current = self.value(lit)
        if current == 1:
            return True
        if current == -1:
            return False
        var = abs(lit)
        self.assign[var] = 1 if lit > 0 else -1
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def propagate(self) -> list[int] | None:
        """Unit propagation; returns a conflicting clause or None."""
        index = getattr(self, "_qhead", 0)
        while index < len(self.trail):
            lit = self.trail[index]
            index += 1
            watching = self.watches.get(lit, [])
            new_watching: list[list[int]] = []
            i = 0
            while i < len(watching):
                clause = watching[i]
                i += 1
                # Ensure clause[1] is the false literal (-lit).
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                if self.value(clause[0]) == 1:
                    new_watching.append(clause)
                    continue
                found = False
                for k in range(2, len(clause)):
                    if self.value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watch(-clause[1], clause)
                        found = True
                        break
                if found:
                    continue
                new_watching.append(clause)
                if self.value(clause[0]) == -1:
                    # Conflict: restore remaining watches and report.
                    new_watching.extend(watching[i:])
                    self.watches[lit] = new_watching
                    self._qhead = len(self.trail)
                    return clause
                self.enqueue(clause[0], clause)
            self.watches[lit] = new_watching
        self._qhead = index
        return None

    # -- conflict analysis ------------------------------------------------------

    def bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    def decay(self) -> None:
        self.var_inc /= 0.95

    def analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        learned = [0]
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = 0
        clause = conflict
        trail_index = len(self.trail) - 1
        current_level = len(self.trail_lim)
        while True:
            for q in clause:
                if q == lit:
                    continue
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self.bump(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            while not seen[abs(self.trail[trail_index])]:
                trail_index -= 1
            lit = self.trail[trail_index]
            var = abs(lit)
            seen[var] = False
            trail_index -= 1
            counter -= 1
            if counter == 0:
                break
            clause = self.reason[var] or []
            lit = lit  # the resolved literal
        learned[0] = -lit
        # Backjump level = max level among learned[1:]; move a literal of that
        # level into position 1 so the watched-literal invariant holds after
        # backjumping.
        if len(learned) == 1:
            back_level = 0
        else:
            best = 1
            for index in range(2, len(learned)):
                if self.level[abs(learned[index])] > self.level[abs(learned[best])]:
                    best = index
            learned[1], learned[best] = learned[best], learned[1]
            back_level = self.level[abs(learned[1])]
        return learned, back_level

    def backjump(self, level: int) -> None:
        while len(self.trail_lim) > level:
            limit = self.trail_lim.pop()
            while len(self.trail) > limit:
                lit = self.trail.pop()
                var = abs(lit)
                self.assign[var] = 0
                self.reason[var] = None
        self._qhead = min(getattr(self, "_qhead", 0), len(self.trail))

    # -- decisions ---------------------------------------------------------------

    def decide(self) -> int | None:
        best_var = 0
        best_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if self.assign[var] == 0 and self.activity[var] > best_activity:
                best_var = var
                best_activity = self.activity[var]
        if best_var == 0:
            return None
        return -best_var  # prefer negative phase (compact models)

    # -- main search ---------------------------------------------------------------

    def search(self, max_conflicts: int | None, should_stop) -> SatResult:
        self._qhead = 0
        # Attach clauses; handle empty and unit clauses directly.
        for clause in self.clauses:
            if not clause:
                return SatResult(False)
            if len(clause) == 1:
                if not self.enqueue(clause[0], None):
                    return SatResult(False)
            else:
                self.attach_clause(clause)
        restart_limit = 100
        conflicts_since_restart = 0
        while True:
            if should_stop is not None and should_stop():
                raise TimeoutError("SAT solver interrupted")
            conflict = self.propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_since_restart += 1
                if max_conflicts is not None and self.conflicts > max_conflicts:
                    raise TimeoutError("SAT solver exceeded conflict budget")
                if not self.trail_lim:
                    return SatResult(
                        False, conflicts=self.conflicts, decisions=self.decisions
                    )
                learned, back_level = self.analyze(conflict)
                self.backjump(back_level)
                if len(learned) == 1:
                    self.enqueue(learned[0], None)
                else:
                    self.learned.append(learned)
                    self.attach_clause(learned)
                    self.enqueue(learned[0], learned)
                self.decay()
                if conflicts_since_restart >= restart_limit:
                    conflicts_since_restart = 0
                    restart_limit = int(restart_limit * 1.5)
                    self.backjump(0)
                continue
            lit = self.decide()
            if lit is None:
                model = {
                    var: self.assign[var] == 1
                    for var in range(1, self.num_vars + 1)
                }
                self._verify_model(model)
                return SatResult(
                    True, model, conflicts=self.conflicts, decisions=self.decisions
                )
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            self.enqueue(lit, None)

    def _verify_model(self, model: dict[int, bool]) -> None:
        """Safety net: every input clause must be satisfied by the model."""
        for clause in self.clauses:
            if not any(model.get(abs(lit), False) == (lit > 0) for lit in clause):
                raise RuntimeError(
                    "internal SAT solver error: model does not satisfy clause "
                    f"{clause}"
                )


class Tseitin:
    """Tseitin transformation of formula DAGs into CNF over integer literals.

    The class manages the mapping between atoms (arbitrary hashable objects,
    in practice :class:`~repro.logic.terms.Term` atoms) and SAT variables,
    and introduces auxiliary variables for internal connective nodes.
    """

    def __init__(self) -> None:
        self.solver = SatSolver()
        self._atom_vars: dict[object, int] = {}
        self._next_var = 0
        self._cache: dict[object, int] = {}

    def fresh_var(self) -> int:
        self._next_var += 1
        return self._next_var

    def atom_var(self, atom: object) -> int:
        if atom not in self._atom_vars:
            self._atom_vars[atom] = self.fresh_var()
        return self._atom_vars[atom]

    @property
    def atoms(self) -> dict[object, int]:
        return dict(self._atom_vars)

    def add_clause(self, literals) -> None:
        self.solver.add_clause(literals)

    def encode_and(self, lits: list[int]) -> int:
        """Return a literal equivalent to the conjunction of ``lits``."""
        key = ("and", tuple(sorted(lits)))
        if key in self._cache:
            return self._cache[key]
        out = self.fresh_var()
        for lit in lits:
            self.add_clause([-out, lit])
        self.add_clause([out] + [-lit for lit in lits])
        self._cache[key] = out
        return out

    def encode_or(self, lits: list[int]) -> int:
        """Return a literal equivalent to the disjunction of ``lits``."""
        key = ("or", tuple(sorted(lits)))
        if key in self._cache:
            return self._cache[key]
        out = self.fresh_var()
        for lit in lits:
            self.add_clause([out, -lit])
        self.add_clause([-out] + list(lits))
        self._cache[key] = out
        return out

    def assert_literal(self, lit: int) -> None:
        self.add_clause([lit])

    def solve(self, should_stop=None, max_conflicts: int | None = None) -> SatResult:
        return self.solver.solve(should_stop=should_stop, max_conflicts=max_conflicts)
