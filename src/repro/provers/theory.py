"""Ground theory reasoning: EUF + linear integer arithmetic combination.

The :class:`TheoryChecker` decides (soundly, incompletely) whether a
conjunction of ground literals is consistent with the combined theory of

* equality with uninterpreted functions (congruence closure),
* linear integer arithmetic (Fourier-Motzkin),

exchanging equalities between the two solvers in a lightweight Nelson-Oppen
loop.  It is used as the theory backend of the lazy SMT-lite prover: the SAT
core proposes a boolean model, the checker either accepts it or returns a
conflicting subset of literals that is turned into a blocking clause.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.clauses import Literal
from ..logic.sorts import INT
from ..logic.terms import App, BoolLit, IntLit, Term, subterms
from .euf import CongruenceClosure
from .lia import LinearSolver
from .result import Budget

__all__ = ["TheoryChecker", "TheoryConflict"]


@dataclass
class TheoryConflict:
    """An inconsistent subset of the checked literals."""

    core: list[Literal]
    reason: str


_TRUE = BoolLit(True)
_FALSE = BoolLit(False)


class TheoryChecker:
    """Consistency checking for conjunctions of ground theory literals."""

    def __init__(self, exchange_rounds: int = 3, minimize_cores: bool = True) -> None:
        self.exchange_rounds = exchange_rounds
        self.minimize_cores = minimize_cores

    # -- public API -------------------------------------------------------------

    def check(
        self, literals: list[Literal], budget: Budget | None = None
    ) -> TheoryConflict | None:
        """Return a conflict (with a minimised core) or None if consistent."""
        if self._consistent(literals, budget):
            return None
        core = list(literals)
        if self.minimize_cores:
            core = self._minimize(core, budget)
        return TheoryConflict(core, "EUF+LIA conflict")

    # -- consistency ------------------------------------------------------------

    def _consistent(self, literals: list[Literal], budget: Budget | None) -> bool:
        if budget is not None:
            budget.check()
        closure = CongruenceClosure()
        arithmetic = LinearSolver(deadline=budget)
        closure.assert_distinct(_TRUE, _FALSE)
        int_terms: set[Term] = set()
        shared_atoms: set[Term] = set()

        for literal in literals:
            atom = literal.atom
            if isinstance(atom, BoolLit):
                if atom.value != literal.positive:
                    return False
                continue
            if isinstance(atom, App) and atom.op == "eq":
                left, right = atom.args
                if literal.positive:
                    closure.assert_equal(left, right)
                    if left.sort == INT:
                        arithmetic.add_eq_terms(left, right)
                else:
                    closure.assert_distinct(left, right)
                    # Integer disequalities are split at the boolean level by
                    # the preprocessing pass; here they only inform EUF.
                self._collect(left, int_terms, shared_atoms)
                self._collect(right, int_terms, shared_atoms)
                continue
            if isinstance(atom, App) and atom.op in ("le", "lt"):
                left, right = atom.args
                if literal.positive:
                    if atom.op == "le":
                        arithmetic.add_le_terms(left, right)
                    else:
                        arithmetic.add_lt_terms(left, right)
                else:
                    # ~(l <= r)  ==  r < l ;  ~(l < r)  ==  r <= l
                    if atom.op == "le":
                        arithmetic.add_lt_terms(right, left)
                    else:
                        arithmetic.add_le_terms(right, left)
                self._collect(left, int_terms, shared_atoms)
                self._collect(right, int_terms, shared_atoms)
                continue
            # Any other atom (membership in an opaque set variable, an
            # uninterpreted predicate, a boolean field read, ...) is handled
            # as an equation with the boolean constants in EUF.
            closure.assert_equal(atom, _TRUE if literal.positive else _FALSE)
            self._collect(atom, int_terms, shared_atoms)

        # Intern every collected term so congruences between terms that only
        # occur inside arithmetic atoms (e.g. ``g[x]`` and ``g[y]`` when only
        # ``g[y]`` appears under an inequality) are still detected.
        for term in int_terms | shared_atoms:
            closure.intern(term)

        if closure.check() is not None:
            return False
        if arithmetic.is_infeasible():
            return False

        # Nelson-Oppen style equality exchange.
        known_pairs: set[tuple[Term, Term]] = set()
        int_term_list = sorted(int_terms, key=repr)
        shared_list = sorted(shared_atoms, key=repr)
        for _ in range(self.exchange_rounds):
            if budget is not None:
                budget.check()
            changed = False
            # EUF -> LIA
            for left, right in closure.implied_equalities(int_term_list):
                key = (left, right)
                if key in known_pairs:
                    continue
                known_pairs.add(key)
                arithmetic.add_eq_terms(left, right)
                changed = True
            if arithmetic.is_infeasible():
                return False
            # LIA -> EUF (restricted to atoms that occur under uninterpreted
            # symbols, where new congruences can actually fire).  This
            # direction costs one entailment check per pair, so it is only
            # attempted for small shared-variable sets and when there are
            # arithmetic facts to draw from.
            if arithmetic.constraints and len(shared_list) <= 4:
                for left, right in arithmetic.implied_equalities(shared_list):
                    if closure.are_equal(left, right):
                        continue
                    closure.assert_equal(left, right)
                    changed = True
            if closure.check() is not None:
                return False
            if not changed:
                break
        return True

    @staticmethod
    def _collect(term: Term, int_terms: set[Term], shared_atoms: set[Term]) -> None:
        for sub in subterms(term):
            if sub.sort == INT and not isinstance(sub, IntLit):
                int_terms.add(sub)
            if isinstance(sub, App):
                # Arguments of select / uninterpreted applications are the
                # "shared" positions where arithmetic equalities can enable
                # new congruences.
                if sub.op == "select" or not sub.is_interpreted:
                    for arg in sub.args:
                        if arg.sort == INT and not isinstance(arg, IntLit):
                            shared_atoms.add(arg)

    # -- core minimisation --------------------------------------------------------

    def _minimize(self, core: list[Literal], budget: Budget | None) -> list[Literal]:
        """Deletion-based minimisation of a conflicting literal set."""
        if len(core) > 120:
            return core
        index = 0
        current = list(core)
        while index < len(current):
            if budget is not None and budget.expired():
                return current
            candidate = current[:index] + current[index + 1:]
            if candidate and not self._consistent(candidate, budget):
                current = candidate
            else:
                index += 1
        return current
