"""The SMT-lite prover: lazy SAT + theories + heuristic instantiation.

This prover plays the role of the SMT back-ends (CVC3, Z3) in Jahob's
integrated reasoning setup.  The pipeline for a proof task is:

1. :func:`repro.provers.rewriter.prepare` turns ``assumptions AND NOT goal``
   into ground conjuncts plus universally quantified axioms;
2. the :class:`~repro.provers.quant.InstantiationEngine` produces ground
   instances of the axioms using positional triggers;
3. the ground formulas are Tseitin-encoded over theory atoms;
4. a lazy SMT loop runs the CDCL SAT solver and checks each proposed boolean
   model against the combined EUF + linear-integer-arithmetic theory checker,
   adding blocking clauses for theory conflicts until the SAT solver reports
   unsatisfiability (task proved) or a theory-consistent model survives
   (unknown -- instantiation is incomplete, so this is not a refutation).

Integer disequalities are split into strict inequalities at encoding time so
that the arithmetic solver can reason about them.
"""

from __future__ import annotations

from ..logic.clauses import Literal
from ..logic.sorts import BOOL, INT
from ..logic.terms import App, BoolLit, Term
from .arrays import select_store_lemmas
from .interface import Prover
from .quant import InstantiationEngine
from .result import Budget, Outcome, ProofTask, ProverResult
from .rewriter import prepare
from .sat import Tseitin
from .theory import TheoryChecker

__all__ = ["SmtProver"]


class SmtProver(Prover):
    """Lazy-combination SMT prover over EUF + LIA with quantifier heuristics."""

    name = "smt"

    def __init__(
        self,
        instantiation_rounds: int = 3,
        max_candidates_per_var: int = 8,
        max_theory_iterations: int = 400,
        max_sat_conflicts: int = 20000,
    ) -> None:
        self.instantiation_rounds = instantiation_rounds
        self.max_candidates_per_var = max_candidates_per_var
        self.max_theory_iterations = max_theory_iterations
        self.max_sat_conflicts = max_sat_conflicts

    # -- main entry point --------------------------------------------------------

    def attempt(self, task: ProofTask, budget: Budget) -> ProverResult:
        prepared = prepare(task)
        if prepared.trivially_proved:
            return ProverResult(Outcome.PROVED, reason="trivial")
        budget.check()

        engine = InstantiationEngine(
            max_rounds=self.instantiation_rounds,
            max_candidates_per_var=self.max_candidates_per_var,
        )
        for axiom in prepared.axioms:
            engine.add_axiom(axiom)
        instances = engine.saturate(prepared.ground, prepared.goal_hint)
        budget.check()

        ground_formulas = prepared.ground + instances
        # Instantiate the read-over-write array axioms for the
        # select-over-store patterns produced by field/array assignments.
        ground_formulas = ground_formulas + select_store_lemmas(ground_formulas)
        if not ground_formulas:
            return ProverResult(Outcome.UNKNOWN, reason="no ground facts")

        encoder = _GroundEncoder()
        for formula in ground_formulas:
            encoder.assert_formula(formula)
            if budget.expired():
                return ProverResult(Outcome.TIMEOUT, reason="encoding")

        checker = TheoryChecker()
        iterations = 0
        while True:
            budget.check()
            iterations += 1
            if iterations > self.max_theory_iterations:
                return ProverResult(Outcome.UNKNOWN, reason="theory iteration limit")
            try:
                sat_result = encoder.tseitin.solve(
                    should_stop=budget.expired,
                    max_conflicts=self.max_sat_conflicts,
                )
            except TimeoutError:
                return ProverResult(Outcome.TIMEOUT, reason="sat budget")
            if not sat_result.satisfiable:
                return ProverResult(
                    Outcome.PROVED,
                    reason=f"unsat after {iterations} theory iterations, "
                    f"{len(instances)} instantiations",
                )
            literals = encoder.model_literals(sat_result.model)
            conflict = checker.check(literals, budget)
            if conflict is None:
                return ProverResult(
                    Outcome.UNKNOWN,
                    reason="theory-consistent boolean model "
                    "(quantifier instantiation exhausted)",
                )
            encoder.block(conflict.core)


class _GroundEncoder:
    """Tseitin encoding of ground formulas over theory atoms."""

    def __init__(self) -> None:
        self.tseitin = Tseitin()
        # Reserve a variable that is always true, used for boolean literals.
        self._true_var = self.tseitin.fresh_var()
        self.tseitin.assert_literal(self._true_var)

    # -- encoding -----------------------------------------------------------------

    def assert_formula(self, formula: Term) -> None:
        self.tseitin.assert_literal(self.encode(formula))

    def encode(self, formula: Term) -> int:
        if isinstance(formula, BoolLit):
            return self._true_var if formula.value else -self._true_var
        if isinstance(formula, App):
            op = formula.op
            if op == "and":
                return self.tseitin.encode_and(
                    [self.encode(arg) for arg in formula.args]
                )
            if op == "or":
                return self.tseitin.encode_or(
                    [self.encode(arg) for arg in formula.args]
                )
            if op == "not":
                return -self.encode(formula.args[0])
            if op == "implies":
                left, right = formula.args
                return self.tseitin.encode_or([-self.encode(left), self.encode(right)])
            if op == "iff":
                left, right = (self.encode(arg) for arg in formula.args)
                return self.tseitin.encode_and(
                    [
                        self.tseitin.encode_or([-left, right]),
                        self.tseitin.encode_or([-right, left]),
                    ]
                )
            if op == "ite" and formula.sort == BOOL:
                cond, then, other = (self.encode(arg) for arg in formula.args)
                return self.tseitin.encode_and(
                    [
                        self.tseitin.encode_or([-cond, then]),
                        self.tseitin.encode_or([cond, other]),
                    ]
                )
            if op == "eq" and formula.args[0].sort == INT:
                # Keep the equality atom itself but it is helpful to also know
                # its arithmetic negation splits; the theory checker handles
                # positive/negative equalities, and negative int equalities
                # are additionally split for arithmetic completeness.
                return self._atom_literal(formula)
        return self._atom_literal(formula)

    def _atom_literal(self, atom: Term) -> int:
        atom = _canonical_atom(atom)
        lit = self.tseitin.atom_var(atom)
        if (
            isinstance(atom, App)
            and atom.op == "eq"
            and atom.args[0].sort == INT
            and atom not in getattr(self, "_split_int_eq", set())
        ):
            # eq(a,b) <-> ~(a<b) & ~(b<a): ties the boolean equality atom to
            # the order atoms so the arithmetic solver sees disequalities.
            split = getattr(self, "_split_int_eq", set())
            split.add(atom)
            self._split_int_eq = split
            left, right = atom.args
            lt_left = self.tseitin.atom_var(
                _canonical_atom(App("lt", (left, right), BOOL))
            )
            lt_right = self.tseitin.atom_var(
                _canonical_atom(App("lt", (right, left), BOOL))
            )
            # eq -> ~lt_left, eq -> ~lt_right, (~lt_left & ~lt_right) -> eq
            self.tseitin.add_clause([-lit, -lt_left])
            self.tseitin.add_clause([-lit, -lt_right])
            self.tseitin.add_clause([lit, lt_left, lt_right])
        return lit

    # -- model extraction / blocking ------------------------------------------------

    def model_literals(self, model: dict[int, bool]) -> list[Literal]:
        literals: list[Literal] = []
        for atom, var in self.tseitin.atoms.items():
            if var in model:
                literals.append(Literal(atom, model[var]))
        return literals

    def block(self, core: list[Literal]) -> None:
        """Add a blocking clause forbidding the conflicting literal set."""
        clause = []
        for literal in core:
            var = self.tseitin.atom_var(_canonical_atom(literal.atom))
            clause.append(-var if literal.positive else var)
        if not clause:
            # An unconditionally inconsistent theory state: the formula is
            # unsatisfiable outright.
            clause = []
        self.tseitin.add_clause(clause or [ -self._true_var ])


def _canonical_atom(atom: Term) -> Term:
    """Canonicalise symmetric atoms so ``a = b`` and ``b = a`` share a SAT var."""
    if isinstance(atom, App) and atom.op == "eq":
        left, right = atom.args
        if repr(right) < repr(left):
            return App("eq", (right, left), BOOL)
    return atom
