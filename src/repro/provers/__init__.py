"""The integrated reasoning portfolio: provers and the dispatcher."""

from .cache import CachedVerdict, ProofCache, task_fingerprint, term_fingerprint
from .dispatch import DispatchResult, PortfolioEntry, ProverPortfolio, default_portfolio
from .fol import FolProver
from .interface import Prover
from .model_finder import FiniteModelFinder
from .result import Budget, Outcome, ProofTask, ProverResult
from .setsolver import SetCardinalityProver
from .smt import SmtProver

__all__ = [
    "Budget",
    "CachedVerdict",
    "DispatchResult",
    "FiniteModelFinder",
    "FolProver",
    "Outcome",
    "PortfolioEntry",
    "ProofCache",
    "ProofTask",
    "Prover",
    "ProverPortfolio",
    "ProverResult",
    "SetCardinalityProver",
    "SmtProver",
    "default_portfolio",
    "task_fingerprint",
    "term_fingerprint",
]
