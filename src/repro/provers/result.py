"""Prover results, tasks and resource budgets."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum

from ..logic.terms import Term


class Outcome(Enum):
    """Outcome of a prover invocation on a proof task."""

    PROVED = "proved"
    REFUTED = "refuted"
    UNKNOWN = "unknown"
    TIMEOUT = "timeout"

    @property
    def is_proved(self) -> bool:
        return self is Outcome.PROVED


@dataclass(frozen=True)
class ProofTask:
    """A sequent handed to a prover: named assumptions and a goal.

    ``assumptions`` is a tuple of ``(name, formula)`` pairs -- the assumption
    base.  The prover must establish that the conjunction of the assumptions
    entails ``goal``.
    """

    assumptions: tuple[tuple[str, Term], ...]
    goal: Term
    label: str = ""

    @property
    def assumption_formulas(self) -> tuple[Term, ...]:
        return tuple(formula for _, formula in self.assumptions)

    def restricted_to(self, names: set[str] | frozenset[str]) -> "ProofTask":
        """Keep only the assumptions whose name is in ``names``."""
        kept = tuple(
            (name, formula) for name, formula in self.assumptions if name in names
        )
        return ProofTask(kept, self.goal, self.label)


@dataclass
class ProverResult:
    """The result of running a prover on a proof task."""

    outcome: Outcome
    prover: str = ""
    elapsed: float = 0.0
    reason: str = ""
    countermodel: object = None

    @property
    def is_proved(self) -> bool:
        return self.outcome is Outcome.PROVED


class Budget:
    """A cooperative deadline shared by the components of a prover run.

    The budget measures **per-process CPU time**, not wall-clock time: the
    provers are pure compute, and a CPU budget makes timeouts independent
    of machine load -- in particular, the worker processes of a parallel
    run (:mod:`repro.verifier.parallel`) contending for cores reach
    exactly the same timeout decisions the sequential run would, which is
    what keeps parallel verdicts and prover attribution bit-identical.
    """

    def __init__(self, seconds: float | None) -> None:
        self.seconds = seconds
        self.start = time.process_time()

    def elapsed(self) -> float:
        return time.process_time() - self.start

    def remaining(self) -> float:
        if self.seconds is None:
            return float("inf")
        return self.seconds - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self) -> None:
        """Raise :class:`BudgetExpired` when the deadline has passed."""
        if self.expired():
            raise BudgetExpired()


class BudgetExpired(Exception):
    """Raised internally by provers when their time budget runs out."""


@dataclass
class ProverStatistics:
    """Aggregated statistics of a dispatcher run (per prover)."""

    attempts: int = 0
    proved: int = 0
    time_spent: float = 0.0

    def record(self, result: ProverResult) -> None:
        self.attempts += 1
        self.time_spent += result.elapsed
        if result.is_proved:
            self.proved += 1


@dataclass
class PortfolioStatistics:
    """Statistics for an entire portfolio run.

    ``cache_hits`` / ``cache_misses`` count proof-cache consultations by the
    dispatcher (zero when no cache is attached); a hit answers the sequent
    without running any prover.  ``cache_hits_disk`` is the subset of hits
    answered by verdicts loaded from a persistent store (the rest were
    produced during this process -- "memory" hits).
    """

    per_prover: dict[str, ProverStatistics] = field(default_factory=dict)
    sequents_attempted: int = 0
    sequents_proved: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hits_disk: int = 0

    @property
    def cache_hits_memory(self) -> int:
        return self.cache_hits - self.cache_hits_disk

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0

    def record(self, prover: str, result: ProverResult) -> None:
        stats = self.per_prover.setdefault(prover, ProverStatistics())
        stats.record(result)

    def merge(self, other: "PortfolioStatistics") -> None:
        self.sequents_attempted += other.sequents_attempted
        self.sequents_proved += other.sequents_proved
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_hits_disk += other.cache_hits_disk
        for name, stats in other.per_prover.items():
            mine = self.per_prover.setdefault(name, ProverStatistics())
            mine.attempts += stats.attempts
            mine.proved += stats.proved
            mine.time_spent += stats.time_spent
