"""Shared preprocessing for the refutation-based provers.

Given a proof task (assumption base + goal) the provers refute
``assumptions AND NOT goal``.  This module performs the common
normalisation steps:

1. simplification / comprehension elimination (:mod:`repro.logic.simplify`),
2. negation normal form and Skolemization of existentials,
3. prenexing, so that every processed conjunct is either *ground* or a
   single universally quantified axiom suitable for heuristic instantiation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic import builder as b
from ..logic.nnf import prenex, skolemize, to_nnf
from ..logic.simplify import simplify
from ..logic.subst import FreshNameGenerator
from ..logic.terms import (
    FORALL,
    App,
    Binder,
    BoolLit,
    Term,
    contains_quantifier,
    free_vars,
    function_symbols,
)
from .result import ProofTask

__all__ = ["PreparedTask", "prepare", "split_conjuncts"]


@dataclass
class PreparedTask:
    """The refutation problem in clause-friendly shape."""

    ground: list[Term] = field(default_factory=list)
    axioms: list[Term] = field(default_factory=list)  # universally quantified
    goal_hint: list[Term] = field(default_factory=list)  # original goal parts
    trivially_proved: bool = False


def split_conjuncts(formula: Term) -> list[Term]:
    """Flatten top-level conjunctions."""
    if isinstance(formula, App) and formula.op == "and":
        out: list[Term] = []
        for arg in formula.args:
            out.extend(split_conjuncts(arg))
        return out
    return [formula]


def prepare(task: ProofTask) -> PreparedTask:
    """Normalise ``task`` into ground facts plus universal axioms.

    The returned facts are the conjuncts of ``assumptions AND NOT goal``; the
    task is proved when they are unsatisfiable.
    """
    prepared = PreparedTask()
    goal = simplify(task.goal)
    if isinstance(goal, BoolLit) and goal.value:
        prepared.trivially_proved = True
        return prepared
    if _assumptions_trivially_false(task):
        prepared.trivially_proved = True
        return prepared
    formulas: list[Term] = [simplify(f) for f in task.assumption_formulas]
    negated_goal = simplify(b.Not(goal))
    formulas.append(negated_goal)
    prepared.goal_hint = split_conjuncts(simplify(goal)) + [negated_goal]

    # One fresh-name generator across all formulas keeps Skolem symbols
    # distinct between assumptions.
    used: set[str] = set()
    for formula in formulas:
        used |= {v.name for v in free_vars(formula)}
        used |= set(function_symbols(formula))
    fresh = FreshNameGenerator(used)

    for index, formula in enumerate(formulas):
        is_negated_goal = index == len(formulas) - 1
        if isinstance(formula, BoolLit):
            if not formula.value:
                prepared.trivially_proved = True
                return prepared
            continue
        for conjunct in split_conjuncts(formula):
            if not contains_quantifier(conjunct):
                prepared.ground.append(conjunct)
                if is_negated_goal:
                    prepared.goal_hint.append(conjunct)
                continue
            normal = prenex(skolemize(to_nnf(conjunct), fresh))
            for piece in split_conjuncts(normal):
                if isinstance(piece, Binder) and piece.kind == FORALL:
                    prepared.axioms.append(piece)
                elif isinstance(piece, BoolLit):
                    if not piece.value:
                        prepared.trivially_proved = True
                        return prepared
                else:
                    # Ground piece (possibly with residual nested
                    # quantification inside a lambda, kept opaque).  Pieces of
                    # the negated goal are instantiation priorities: their
                    # Skolem constants are exactly the terms the quantified
                    # assumptions must be instantiated with.
                    prepared.ground.append(piece)
                    if is_negated_goal:
                        prepared.goal_hint.append(piece)
    _inline_definitions(prepared)
    return prepared


def _assumptions_trivially_false(task: ProofTask) -> bool:
    return any(
        isinstance(simplify(f), BoolLit) and not simplify(f).value
        for f in task.assumption_formulas
    )


_MAX_INLINE_ROUNDS = 8


def _inline_definitions(prepared: PreparedTask) -> None:
    """Inline ground definitional equalities ``v = t`` into the whole task.

    The guarded-command translation of assignments (Figure 6 of the paper)
    produces chains of ``assume v = F`` facts; inlining them exposes
    select-over-store patterns to the simplifier and keeps the atom count
    seen by the ground solver small.  The equalities themselves are kept, so
    the transformation preserves both soundness and provability.
    """
    from ..logic.subst import substitute
    from ..logic.terms import Var, free_vars

    for _ in range(_MAX_INLINE_ROUNDS):
        definitions: dict[Var, Term] = {}
        for conjunct in prepared.ground:
            if not (isinstance(conjunct, App) and conjunct.op == "eq"):
                continue
            left, right = conjunct.args
            for var, value in ((left, right), (right, left)):
                if not isinstance(var, Var) or var in definitions:
                    continue
                if var in free_vars(value):
                    continue
                if any(v in definitions for v in free_vars(value)):
                    continue
                definitions[var] = value
                break
        if not definitions:
            return
        changed = False

        def apply(formula: Term) -> Term:
            nonlocal changed
            replaced = substitute(formula, definitions)
            if replaced is not formula and replaced != formula:
                changed = True
                return simplify(replaced)
            return formula

        new_ground = []
        for conjunct in prepared.ground:
            if (
                isinstance(conjunct, App)
                and conjunct.op == "eq"
                and (
                    (
                        isinstance(conjunct.args[0], Var)
                        and definitions.get(conjunct.args[0]) == conjunct.args[1]
                    )
                    or (
                        isinstance(conjunct.args[1], Var)
                        and definitions.get(conjunct.args[1]) == conjunct.args[0]
                    )
                )
            ):
                # Keep the definition itself un-inlined (it would rewrite to
                # the trivial ``t = t``); the equality still informs EUF.
                new_ground.append(conjunct)
            else:
                new_ground.append(apply(conjunct))
        prepared.ground = new_ground
        prepared.axioms = [apply(a) for a in prepared.axioms]
        prepared.goal_hint = [apply(g) for g in prepared.goal_hint]
        if not changed:
            return
