"""Sequent-level result caching for the prover portfolio.

Verification-condition generation produces many structurally identical
sequents: goal splitting duplicates hypothesis prefixes, loop encodings
re-assert the same invariant conjuncts at every cut point, and the Table 2
ablation verifies every method twice.  :class:`ProofCache` lets the
dispatcher (:meth:`repro.provers.dispatch.ProverPortfolio.dispatch`) prove
each distinct sequent once.

Cache keys are *canonical fingerprints*: every formula is alpha-normalized
(bound variables replaced by binding-depth indices), the assumption base is
deduplicated and order-normalized, and trivially-true assumptions carry no
weight.  Two sequents that differ only in assumption naming, assumption
order or the spelling of bound variables therefore share one cache entry.

A cache is attached to one portfolio (fixed prover set and per-prover
timeouts), so a cached verdict -- including "no prover could do it" -- is
exactly what re-running the portfolio would produce, modulo timing jitter
on near-timeout sequents.

:class:`PersistentCacheStore` carries verdicts across runs; its on-disk
JSON layout, versioning/invalidation rules and ``flock`` merge-save
protocol are documented normatively in ``docs/cache-format.md``.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

try:  # POSIX-only; saves degrade to lock-free atomic replace elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from ..logic.terms import App, Binder, BoolLit, Const, IntLit, Term, Var
from .result import ProofTask

__all__ = [
    "CachedVerdict",
    "ProofCache",
    "PersistentCacheStore",
    "task_fingerprint",
    "term_fingerprint",
    "fingerprint_to_json",
    "fingerprint_from_json",
    "FINGERPRINT_VERSION",
    "CACHE_FORMAT_VERSION",
]

#: Bump whenever :func:`term_fingerprint` / :func:`task_fingerprint` change
#: shape: persisted caches keyed under an older scheme are discarded (cold
#: start) instead of being misinterpreted.
FINGERPRINT_VERSION = 1

#: Bump whenever the on-disk JSON layout of :class:`PersistentCacheStore`
#: changes incompatibly.  Version 2 added measured per-sequent prover
#: timings (``wall`` / ``cpu``) to every entry and the per-class
#: ``profiles`` section; version 3 added the per-class ``dependencies``
#: section (the incremental-verification dependency index mapping source
#: artifacts to the fingerprints they produce); older stores cold-start
#: cleanly.
CACHE_FORMAT_VERSION = 3


# Bound variables are numbered by *relative* de Bruijn index (distance from
# the binding site), so a subterm that references no enclosing bound
# variable has a fingerprint independent of its context.  That makes the
# memo sound: fingerprints of such context-free subterms are cached per
# interned node.
_FP_MEMO_LIMIT = 1 << 17
_FP_MEMO: dict[Term, object] = {}


def term_fingerprint(term: Term) -> object:
    """A hashable alpha-invariant fingerprint of ``term``.

    ``alpha_equal(s, t)`` implies ``term_fingerprint(s) ==
    term_fingerprint(t)`` and, for well-sorted distinct terms, fingerprints
    differ whenever the terms are not alpha-equivalent; free variables,
    constants, operators and sorts are preserved exactly.
    """
    return _fingerprint(term, {}, 0)


def _fingerprint(term: Term, env: dict[str, int], depth: int) -> object:
    if env and term._free_names.isdisjoint(env):
        # No enclosing binder is referenced: the relative numbering makes
        # the fingerprint context-independent, so restart from depth 0 and
        # use the memo.
        env = {}
        depth = 0
    if not env:
        cached = _FP_MEMO.get(term)
        if cached is not None:
            return cached
        result = _fingerprint_uncached(term, env, 0)
        if len(_FP_MEMO) > _FP_MEMO_LIMIT:
            _FP_MEMO.clear()
        _FP_MEMO[term] = result
        return result
    return _fingerprint_uncached(term, env, depth)


def _fingerprint_uncached(term: Term, env: dict[str, int], depth: int) -> object:
    if isinstance(term, Var):
        level = env.get(term.name)
        if level is None:
            return ("v", term.name, term.sort.name)
        return ("b", depth - level, term.sort.name)
    if isinstance(term, Const):
        return ("c", term.name, term.sort.name)
    if isinstance(term, IntLit):
        return ("i", term.value)
    if isinstance(term, BoolLit):
        return ("t", term.value)
    if isinstance(term, App):
        return (
            "a",
            term.op,
            term.sort.name,
            tuple(_fingerprint(arg, env, depth) for arg in term.args),
        )
    if isinstance(term, Binder):
        inner = dict(env)
        for offset, (name, _) in enumerate(term.params):
            inner[name] = depth + offset
        return (
            "B",
            term.kind,
            tuple(sort.name for _, sort in term.params),
            _fingerprint(term.body, inner, depth + len(term.params)),
        )
    raise TypeError(f"unknown term type {type(term)!r}")


def task_fingerprint(task: ProofTask) -> tuple:
    """The cache key of a proof task.

    Assumption *names* are irrelevant to provability, so only the
    alpha-normalized formulas matter; they are deduplicated and sorted so
    that assumption order does not split cache entries.
    """
    hypotheses = {_fingerprint(formula, {}, 0) for _, formula in task.assumptions}
    return (tuple(sorted(hypotheses, key=repr)), _fingerprint(task.goal, {}, 0))


@dataclass(frozen=True)
class CachedVerdict:
    """The dispatcher verdict remembered for one canonical sequent.

    ``origin`` records where the verdict came from: ``"memory"`` for
    verdicts produced (and cached) during the current process, ``"disk"``
    for verdicts loaded from a :class:`PersistentCacheStore`.  Reports use
    it to split cache-hit provenance.

    ``wall`` / ``cpu`` are the measured prover cost of the sequent the
    one time it was actually dispatched: wall-clock seconds of the
    portfolio's prover phase and the per-process CPU seconds the provers
    reported.  They are 0.0 for verdicts whose cost was never measured
    (pre-v2 stores) and feed the scheduler's cost model
    (:mod:`repro.verifier.costmodel`) -- they never influence the verdict
    itself.
    """

    proved: bool
    refuted: bool
    winning_prover: str
    origin: str = "memory"
    wall: float = 0.0
    cpu: float = 0.0


class ProofCache:
    """Maps canonical sequent fingerprints to dispatcher verdicts.

    Hit/miss accounting lives in
    :class:`~repro.provers.result.PortfolioStatistics` (maintained by the
    dispatcher), not here, so there is exactly one set of counters.

    ``namespace`` isolates tenants of a shared cache: while it is set to a
    non-empty string, every key produced by :meth:`key` is prefixed with a
    ``("tenant", namespace)`` component, so one tenant's verdicts can
    neither serve nor poison another's.  The daemon sets it to the
    authenticated client id for the duration of each engine op
    (:mod:`repro.verifier.daemon`); the default ``""`` leaves keys exactly
    as before, so single-tenant callers (CLI, tests, existing persistent
    stores) are unaffected.  Namespaced keys are ordinary fingerprints to
    everything downstream -- persistence, cost model, parallel dedup all
    work per tenant for free.
    """

    def __init__(self, max_entries: int = 1 << 16) -> None:
        self.max_entries = max_entries
        self._entries: dict[tuple, CachedVerdict] = {}
        #: Bumped on every :meth:`store`; lets persistence layers skip
        #: writing when nothing new was learned since the last flush.
        self.mutations = 0
        #: The active tenant namespace ("" = the shared default tenant).
        self.namespace = ""

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, task: ProofTask) -> tuple:
        return self.key_for_fingerprint(task_fingerprint(task))

    def key_for_fingerprint(self, fingerprint: tuple) -> tuple:
        """The cache key for a raw (tenant-free) task fingerprint.

        The dependency index (:mod:`repro.verifier.incremental`) stores raw
        fingerprints so one index serves every tenant; resolving a verdict
        for the active tenant goes through this, exactly like :meth:`key`.
        """
        if self.namespace:
            return (("tenant", self.namespace), *fingerprint)
        return fingerprint

    def lookup(self, key: tuple) -> CachedVerdict | None:
        return self._entries.get(key)

    def store(self, key: tuple, verdict: CachedVerdict) -> None:
        if len(self._entries) >= self.max_entries:
            self._entries.clear()
        self._entries[key] = verdict
        self.mutations += 1

    def preload(self, entries: dict[tuple, CachedVerdict]) -> None:
        """Seed the cache (e.g. from a persistent store) without eviction.

        Existing entries win: verdicts produced during this process are
        never overwritten by stale disk entries.  Seeding stops at half
        ``max_entries`` -- :meth:`store` evicts by clearing the whole
        cache when full, and an over-large persistent store must never
        fill the cache so far that the first new verdict wipes every
        preloaded one (the unseeded remainder is merely re-proved).
        """
        limit = self.max_entries // 2
        for key, verdict in entries.items():
            if len(self._entries) >= limit:
                break
            self._entries.setdefault(key, verdict)

    def snapshot(self) -> dict[tuple, CachedVerdict]:
        """A shallow copy of the cache contents (for persistence)."""
        return dict(self._entries)

    def clear(self) -> None:
        self._entries.clear()


# ---------------------------------------------------------------------------
# Cross-run persistence
# ---------------------------------------------------------------------------


# Fingerprints are stored as nested JSON arrays: they contain only
# ``str`` / ``int`` / ``bool`` leaves (no ids, no process-dependent
# hashes), so the encoding is lossless and stable across processes and
# hash seeds, and ``json.loads`` parses a whole store at C speed -- which
# matters because a warm start parses everything before the first sequent
# is answered.


def fingerprint_to_json(value):
    """Encode a fingerprint (nested tuples of str/int/bool) for the store."""
    if isinstance(value, tuple):
        return [fingerprint_to_json(item) for item in value]
    if isinstance(value, (str, int, bool)):
        return value
    raise ValueError(f"fingerprints contain only str/int/bool, got {type(value)!r}")


def fingerprint_from_json(value):
    """Decode :func:`fingerprint_to_json` output back into tuples."""
    if isinstance(value, list):
        return tuple(fingerprint_from_json(item) for item in value)
    if isinstance(value, (str, int, bool)):
        return value
    raise ValueError(f"invalid fingerprint element {value!r}")


class PersistentCacheStore:
    """Cross-run persistence for :class:`ProofCache` verdicts.

    The on-disk format (field-by-field), the versioning/invalidation
    matrix and the merge-save locking protocol are specified in
    ``docs/cache-format.md``; keep that document in sync with any change
    here (and bump :data:`CACHE_FORMAT_VERSION` /
    :data:`FINGERPRINT_VERSION` as it prescribes).

    The store is a single versioned JSON file under ``directory``.  A store
    is only valid for one portfolio configuration (prover line-up and
    per-prover timeouts, summarized by ``portfolio_key``) and one
    fingerprint scheme (:data:`FINGERPRINT_VERSION`): any mismatch -- as
    well as a missing, truncated or otherwise corrupted file -- degrades to
    a cold start, never to a crash or a misused verdict.

    Writes are atomic (temp file + ``os.replace`` in the same directory)
    and *merging*: :meth:`save` re-reads the current file under an
    inter-process file lock and unions it with the new entries, so
    concurrent writers can never corrupt the file and never lose each
    other's verdicts (on platforms without ``fcntl`` the lock degrades to
    plain atomic replace, where a racing writer's batch may be dropped but
    the file always stays readable).
    """

    FILENAME = "proof_cache.json"

    #: Entry cap for the on-disk file: merge-saves union forever, so an
    #: unbounded store would eventually grow past any usefulness (and past
    #: :class:`ProofCache`'s own limits).  When the cap is hit the oldest
    #: entries are dropped (newly learned verdicts are kept).
    MAX_ENTRIES = 1 << 16

    def __init__(
        self,
        directory: str | Path,
        portfolio_key: str,
        filename: str | None = None,
        max_entries: int = MAX_ENTRIES,
    ) -> None:
        self.directory = Path(directory)
        self.portfolio_key = portfolio_key
        self.path = self.directory / (filename or self.FILENAME)
        self.max_entries = max_entries
        #: Human-readable outcome of the last :meth:`load` call (the
        #: internal re-reads of merge-saves do not touch it).
        self.last_load_status = "not-loaded"
        #: The per-class measured cost profiles of the last :meth:`load`
        #: (JSON-ready ``{class: {"wall", "cpu", "sequents"}}``; empty on
        #: a cold start).  Consumed by the engine's cost model.
        self.last_profiles: dict[str, dict] = {}
        #: The per-class dependency index of the last :meth:`load`
        #: (JSON-ready, see ``docs/cache-format.md``; empty on a cold
        #: start).  Consumed by
        #: :class:`repro.verifier.incremental.DependencyIndex`.
        self.last_dependencies: dict[str, dict] = {}

    # -- reading -----------------------------------------------------------------

    def load(self) -> dict[tuple, CachedVerdict]:
        """Load the persisted verdicts, or ``{}`` on any mismatch/corruption.

        The per-class cost profiles that rode along are exposed as
        :attr:`last_profiles` afterwards.
        """
        entries, profiles, dependencies, status = self._read()
        self.last_load_status = status
        self.last_profiles = profiles
        self.last_dependencies = dependencies
        return entries

    def _read(
        self,
    ) -> tuple[dict[tuple, CachedVerdict], dict[str, dict], dict[str, dict], str]:
        try:
            raw = self.path.read_text(encoding="utf-8")
        except (FileNotFoundError, NotADirectoryError):
            return {}, {}, {}, "cold:missing"
        except OSError:
            return {}, {}, {}, "cold:unreadable"
        return self._parse(raw)

    def _parse(
        self, raw: str
    ) -> tuple[dict[tuple, CachedVerdict], dict[str, dict], dict[str, dict], str]:
        try:
            payload = json.loads(raw)
        except (json.JSONDecodeError, ValueError):
            return {}, {}, {}, "cold:corrupt"
        if not isinstance(payload, dict):
            return {}, {}, {}, "cold:corrupt"
        if payload.get("format") != CACHE_FORMAT_VERSION:
            return {}, {}, {}, "cold:format-mismatch"
        if payload.get("fingerprint_version") != FINGERPRINT_VERSION:
            return {}, {}, {}, "cold:fingerprint-mismatch"
        if payload.get("portfolio") != self.portfolio_key:
            return {}, {}, {}, "cold:portfolio-mismatch"
        raw_entries = payload.get("entries")
        if not isinstance(raw_entries, list):
            return {}, {}, {}, "cold:corrupt"
        entries: dict[tuple, CachedVerdict] = {}
        for pair in raw_entries:
            try:
                raw_key, verdict = pair
                key = fingerprint_from_json(raw_key)
                if not isinstance(key, tuple):
                    raise ValueError("fingerprint must be a tuple")
                entries[key] = CachedVerdict(
                    proved=bool(verdict["proved"]),
                    refuted=bool(verdict["refuted"]),
                    winning_prover=str(verdict["prover"]),
                    origin="disk",
                    wall=float(verdict.get("wall", 0.0)),
                    cpu=float(verdict.get("cpu", 0.0)),
                )
            except (ValueError, KeyError, TypeError):
                # Skip individually damaged entries; keep the rest.
                continue
        profiles = self._parse_profiles(payload.get("profiles"))
        dependencies = self._parse_dependencies(payload.get("dependencies"))
        return entries, profiles, dependencies, f"warm:{len(entries)}"

    @staticmethod
    def _parse_profiles(raw_profiles) -> dict[str, dict]:
        """Validate the per-class profile section (damaged classes are
        skipped, exactly like damaged entries)."""
        if not isinstance(raw_profiles, dict):
            return {}
        profiles: dict[str, dict] = {}
        for name, data in raw_profiles.items():
            try:
                profiles[str(name)] = {
                    "wall": float(data["wall"]),
                    "cpu": float(data["cpu"]),
                    "sequents": int(data["sequents"]),
                }
            except (ValueError, KeyError, TypeError):
                continue
        return profiles

    @staticmethod
    def _parse_dependencies(raw_dependencies) -> dict[str, dict]:
        """Validate the per-class dependency-index section.

        The store only checks the JSON *shape* (string artifact digests, a
        list of per-method records each carrying ``[label, fingerprint]``
        sequent pairs); semantic interpretation lives in
        :class:`repro.verifier.incremental.DependencyIndex`, which decodes
        the fingerprints.  Damaged classes are skipped, like damaged
        entries.
        """
        if not isinstance(raw_dependencies, dict):
            return {}
        dependencies: dict[str, dict] = {}
        for name, record in raw_dependencies.items():
            try:
                artifacts = {
                    str(key): str(value)
                    for key, value in record["artifacts"].items()
                }
                methods = []
                for method_name, method_record in record["methods"]:
                    sequents = [
                        [str(label), fingerprint_to_json(fingerprint_from_json(fp))]
                        for label, fp in method_record["sequents"]
                    ]
                    methods.append(
                        [
                            str(method_name),
                            {
                                "digest": str(method_record["digest"]),
                                "sequents": sequents,
                            },
                        ]
                    )
                dependencies[str(name)] = {
                    "artifacts": artifacts,
                    "methods": methods,
                }
            except (ValueError, KeyError, TypeError):
                continue
        return dependencies

    # -- writing -----------------------------------------------------------------

    def save(
        self,
        entries: dict[tuple, CachedVerdict],
        merge: bool = True,
        profiles: dict[str, dict] | None = None,
        dependencies: dict[str, dict] | None = None,
    ) -> int:
        """Atomically write ``entries``; returns the number persisted.

        With ``merge`` (the default) the current on-disk entries are
        re-read and unioned in first, so concurrent writers and repeated
        partial runs accumulate instead of clobbering each other.
        ``profiles`` optionally carries the per-class measured cost
        profiles to persist alongside (merged per class name, new data
        winning); ``dependencies`` likewise carries the JSON-ready
        per-class dependency index (merged per class name, new data
        winning).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        with self._write_lock():
            return self._save_locked(entries, merge, profiles, dependencies)

    @contextlib.contextmanager
    def _write_lock(self):
        if fcntl is None:
            yield
            return
        lock_path = self.path.with_suffix(self.path.suffix + ".lock")
        with open(lock_path, "a+") as lock_file:
            fcntl.flock(lock_file.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock_file.fileno(), fcntl.LOCK_UN)

    def _save_locked(
        self,
        entries: dict[tuple, CachedVerdict],
        merge: bool,
        profiles: dict[str, dict] | None = None,
        dependencies: dict[str, dict] | None = None,
    ) -> int:
        combined: dict[tuple, CachedVerdict] = {}
        combined_profiles: dict[str, dict] = {}
        combined_dependencies: dict[str, dict] = {}
        if merge:
            disk_entries, disk_profiles, disk_dependencies, _ = self._read()
            combined.update(disk_entries)
            combined_profiles.update(disk_profiles)
            combined_dependencies.update(disk_dependencies)
        combined.update(entries)
        if profiles:
            combined_profiles.update(profiles)
        if dependencies:
            combined_dependencies.update(dependencies)
        if len(combined) > self.max_entries:
            # Dict order is insertion order: disk entries came first, so
            # dropping from the front keeps the newest verdicts.
            excess = len(combined) - self.max_entries
            for key in list(combined)[:excess]:
                del combined[key]
        payload = {
            "format": CACHE_FORMAT_VERSION,
            "fingerprint_version": FINGERPRINT_VERSION,
            "portfolio": self.portfolio_key,
            "profiles": combined_profiles,
            "dependencies": combined_dependencies,
            "entries": [
                [
                    fingerprint_to_json(key),
                    {
                        "proved": verdict.proved,
                        "refuted": verdict.refuted,
                        "prover": verdict.winning_prover,
                        # 6 decimals ~ microseconds: plenty for scheduling,
                        # and it keeps a 2^16-entry store compact.
                        "wall": round(verdict.wall, 6),
                        "cpu": round(verdict.cpu, 6),
                    },
                ]
                for key, verdict in combined.items()
            ],
        }
        fd, temp_path = tempfile.mkstemp(
            prefix=self.path.name + ".", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, self.path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        return len(combined)
