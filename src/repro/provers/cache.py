"""Sequent-level result caching for the prover portfolio.

Verification-condition generation produces many structurally identical
sequents: goal splitting duplicates hypothesis prefixes, loop encodings
re-assert the same invariant conjuncts at every cut point, and the Table 2
ablation verifies every method twice.  :class:`ProofCache` lets the
dispatcher (:meth:`repro.provers.dispatch.ProverPortfolio.dispatch`) prove
each distinct sequent once.

Cache keys are *canonical fingerprints*: every formula is alpha-normalized
(bound variables replaced by binding-depth indices), the assumption base is
deduplicated and order-normalized, and trivially-true assumptions carry no
weight.  Two sequents that differ only in assumption naming, assumption
order or the spelling of bound variables therefore share one cache entry.

A cache is attached to one portfolio (fixed prover set and per-prover
timeouts), so a cached verdict -- including "no prover could do it" -- is
exactly what re-running the portfolio would produce, modulo timing jitter
on near-timeout sequents.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.terms import App, Binder, BoolLit, Const, IntLit, Term, Var
from .result import ProofTask

__all__ = ["CachedVerdict", "ProofCache", "task_fingerprint", "term_fingerprint"]


# Bound variables are numbered by *relative* de Bruijn index (distance from
# the binding site), so a subterm that references no enclosing bound
# variable has a fingerprint independent of its context.  That makes the
# memo sound: fingerprints of such context-free subterms are cached per
# interned node.
_FP_MEMO_LIMIT = 1 << 17
_FP_MEMO: dict[Term, object] = {}


def term_fingerprint(term: Term) -> object:
    """A hashable alpha-invariant fingerprint of ``term``.

    ``alpha_equal(s, t)`` implies ``term_fingerprint(s) ==
    term_fingerprint(t)`` and, for well-sorted distinct terms, fingerprints
    differ whenever the terms are not alpha-equivalent; free variables,
    constants, operators and sorts are preserved exactly.
    """
    return _fingerprint(term, {}, 0)


def _fingerprint(term: Term, env: dict[str, int], depth: int) -> object:
    if env and term._free_names.isdisjoint(env):
        # No enclosing binder is referenced: the relative numbering makes
        # the fingerprint context-independent, so restart from depth 0 and
        # use the memo.
        env = {}
        depth = 0
    if not env:
        cached = _FP_MEMO.get(term)
        if cached is not None:
            return cached
        result = _fingerprint_uncached(term, env, 0)
        if len(_FP_MEMO) > _FP_MEMO_LIMIT:
            _FP_MEMO.clear()
        _FP_MEMO[term] = result
        return result
    return _fingerprint_uncached(term, env, depth)


def _fingerprint_uncached(term: Term, env: dict[str, int], depth: int) -> object:
    if isinstance(term, Var):
        level = env.get(term.name)
        if level is None:
            return ("v", term.name, term.sort.name)
        return ("b", depth - level, term.sort.name)
    if isinstance(term, Const):
        return ("c", term.name, term.sort.name)
    if isinstance(term, IntLit):
        return ("i", term.value)
    if isinstance(term, BoolLit):
        return ("t", term.value)
    if isinstance(term, App):
        return (
            "a",
            term.op,
            term.sort.name,
            tuple(_fingerprint(arg, env, depth) for arg in term.args),
        )
    if isinstance(term, Binder):
        inner = dict(env)
        for offset, (name, _) in enumerate(term.params):
            inner[name] = depth + offset
        return (
            "B",
            term.kind,
            tuple(sort.name for _, sort in term.params),
            _fingerprint(term.body, inner, depth + len(term.params)),
        )
    raise TypeError(f"unknown term type {type(term)!r}")


def task_fingerprint(task: ProofTask) -> tuple:
    """The cache key of a proof task.

    Assumption *names* are irrelevant to provability, so only the
    alpha-normalized formulas matter; they are deduplicated and sorted so
    that assumption order does not split cache entries.
    """
    hypotheses = {
        _fingerprint(formula, {}, 0) for _, formula in task.assumptions
    }
    return (tuple(sorted(hypotheses, key=repr)), _fingerprint(task.goal, {}, 0))


@dataclass(frozen=True)
class CachedVerdict:
    """The dispatcher verdict remembered for one canonical sequent."""

    proved: bool
    refuted: bool
    winning_prover: str


class ProofCache:
    """Maps canonical sequent fingerprints to dispatcher verdicts.

    Hit/miss accounting lives in
    :class:`~repro.provers.result.PortfolioStatistics` (maintained by the
    dispatcher), not here, so there is exactly one set of counters.
    """

    def __init__(self, max_entries: int = 1 << 16) -> None:
        self.max_entries = max_entries
        self._entries: dict[tuple, CachedVerdict] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, task: ProofTask) -> tuple:
        return task_fingerprint(task)

    def lookup(self, key: tuple) -> CachedVerdict | None:
        return self._entries.get(key)

    def store(self, key: tuple, verdict: CachedVerdict) -> None:
        if len(self._entries) >= self.max_entries:
            self._entries.clear()
        self._entries[key] = verdict

    def clear(self) -> None:
        self._entries.clear()
