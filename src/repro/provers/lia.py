"""Linear integer arithmetic: linearisation and a Fourier-Motzkin solver.

This component is the arithmetic theory of the SMT-lite prover and the
backend of the BAPA-style set-cardinality reasoner.  Integer-sorted terms
that are not themselves arithmetic (variables, ``select`` applications,
``card`` applications, uninterpreted function applications) are treated as
*atoms*, i.e. opaque integer unknowns.

Satisfiability checking works over the rationals via Fourier-Motzkin
elimination with exact :class:`fractions.Fraction` arithmetic.  Because a
rationally infeasible system is certainly integer-infeasible, reporting
``infeasible`` is sound for refutation-based proving; integer-feasible-only
gaps merely make the prover incomplete (never unsound).  Strict integer
inequalities are tightened (``a < b`` becomes ``a + 1 <= b``) before the
rational check, which recovers most of the integer reasoning the benchmark
verification conditions need.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..logic.sorts import INT
from ..logic.terms import App, IntLit, Term
from .result import Budget

__all__ = ["LinearExpr", "linearize", "LinearSolver", "LinearConstraint"]


@dataclass(frozen=True)
class LinearExpr:
    """A linear expression ``sum(coeff * atom) + constant``."""

    coeffs: tuple[tuple[Term, Fraction], ...] = ()
    constant: Fraction = Fraction(0)

    @staticmethod
    def of_constant(value: int | Fraction) -> "LinearExpr":
        return LinearExpr((), Fraction(value))

    @staticmethod
    def of_atom(atom: Term) -> "LinearExpr":
        return LinearExpr(((atom, Fraction(1)),), Fraction(0))

    def _as_dict(self) -> dict[Term, Fraction]:
        return dict(self.coeffs)

    @staticmethod
    def _from_dict(coeffs: dict[Term, Fraction], constant: Fraction) -> "LinearExpr":
        items = tuple(
            (atom, coeff)
            for atom, coeff in sorted(coeffs.items(), key=lambda kv: repr(kv[0]))
            if coeff != 0
        )
        return LinearExpr(items, constant)

    def add(self, other: "LinearExpr") -> "LinearExpr":
        coeffs = self._as_dict()
        for atom, coeff in other.coeffs:
            coeffs[atom] = coeffs.get(atom, Fraction(0)) + coeff
        return LinearExpr._from_dict(coeffs, self.constant + other.constant)

    def scale(self, factor: int | Fraction) -> "LinearExpr":
        factor = Fraction(factor)
        coeffs = {atom: coeff * factor for atom, coeff in self.coeffs}
        return LinearExpr._from_dict(coeffs, self.constant * factor)

    def sub(self, other: "LinearExpr") -> "LinearExpr":
        return self.add(other.scale(-1))

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    @property
    def atoms(self) -> tuple[Term, ...]:
        return tuple(atom for atom, _ in self.coeffs)

    def coefficient(self, atom: Term) -> Fraction:
        for a, c in self.coeffs:
            if a == atom:
                return c
        return Fraction(0)


def linearize(term: Term) -> LinearExpr:
    """Convert an integer-sorted term into a linear expression.

    Non-linear subterms (products of two non-constant terms, ``div``/``mod``
    applications) are treated as opaque atoms.
    """
    if isinstance(term, IntLit):
        return LinearExpr.of_constant(term.value)
    if isinstance(term, App):
        if term.op == "add":
            result = LinearExpr.of_constant(0)
            for arg in term.args:
                result = result.add(linearize(arg))
            return result
        if term.op == "sub":
            return linearize(term.args[0]).sub(linearize(term.args[1]))
        if term.op == "neg":
            return linearize(term.args[0]).scale(-1)
        if term.op == "mul":
            left, right = term.args
            left_lin = linearize(left)
            right_lin = linearize(right)
            if left_lin.is_constant:
                return right_lin.scale(left_lin.constant)
            if right_lin.is_constant:
                return left_lin.scale(right_lin.constant)
            return LinearExpr.of_atom(term)
    if term.sort != INT:
        raise ValueError(f"cannot linearise non-integer term {term}")
    return LinearExpr.of_atom(term)


@dataclass(frozen=True)
class LinearConstraint:
    """A constraint ``expr <= 0`` (``is_equality`` makes it ``expr = 0``)."""

    expr: LinearExpr
    is_equality: bool = False

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        relation = "=" if self.is_equality else "<="
        parts = [f"{coeff}*{atom}" for atom, coeff in self.expr.coeffs]
        parts.append(str(self.expr.constant))
        return " + ".join(parts) + f" {relation} 0"


class LinearSolver:
    """Conjunction of linear constraints with Fourier-Motzkin feasibility.

    ``deadline`` is an optional :class:`Budget` polled during elimination:
    Fourier-Motzkin can square the row count per round, and the constraint
    cap alone does not bound the *time* a round spends combining very wide
    rows.  When the deadline expires mid-elimination the solver raises
    :class:`~repro.provers.result.BudgetExpired`, which the prover wrapper
    converts into a TIMEOUT outcome -- so provers actually honour their
    per-sequent timeout instead of overshooting it by orders of magnitude.
    """

    def __init__(
        self, max_constraints: int = 4000, deadline: Budget | None = None
    ) -> None:
        self.constraints: list[LinearConstraint] = []
        self.max_constraints = max_constraints
        self.deadline = deadline

    def copy(self) -> "LinearSolver":
        clone = LinearSolver(self.max_constraints, self.deadline)
        clone.constraints = list(self.constraints)
        return clone

    # -- constraint entry -------------------------------------------------------

    def add_le(self, expr: LinearExpr) -> None:
        """Add ``expr <= 0``."""
        self.constraints.append(LinearConstraint(expr, False))

    def add_eq(self, expr: LinearExpr) -> None:
        """Add ``expr = 0``."""
        self.constraints.append(LinearConstraint(expr, True))

    def add_le_terms(self, left: Term, right: Term) -> None:
        """Add ``left <= right``."""
        self.add_le(linearize(left).sub(linearize(right)))

    def add_lt_terms(self, left: Term, right: Term) -> None:
        """Add ``left < right`` (integer-tightened to ``left + 1 <= right``)."""
        self.add_le(
            linearize(left).sub(linearize(right)).add(LinearExpr.of_constant(1))
        )

    def add_eq_terms(self, left: Term, right: Term) -> None:
        """Add ``left = right``."""
        self.add_eq(linearize(left).sub(linearize(right)))

    # -- feasibility ------------------------------------------------------------

    def is_infeasible(self) -> bool:
        """True when the constraint set is infeasible over the rationals.

        Returns False both when feasible and when the elimination exceeds the
        constraint budget (the sound direction for a refutation prover).
        """
        try:
            return self._check_infeasible()
        except _BudgetExceeded:
            return False

    def entails_le(self, expr: LinearExpr) -> bool:
        """True when the constraints entail ``expr <= 0`` (over integers)."""
        probe = self.copy()
        # Negation over integers: expr >= 1, i.e. 1 - expr <= 0.
        probe.add_le(LinearExpr.of_constant(1).sub(expr))
        return probe.is_infeasible()

    def entails_eq(self, left: Term, right: Term) -> bool:
        """True when the constraints entail ``left = right``."""
        difference = linearize(left).sub(linearize(right))
        return self.entails_le(difference) and self.entails_le(difference.scale(-1))

    def implied_equalities(self, atoms: list[Term]) -> list[tuple[Term, Term]]:
        """Pairs among ``atoms`` that the constraints force to be equal.

        Used for the Nelson-Oppen style exchange with congruence closure.
        The quadratic pairwise check is capped to keep the cost bounded.
        """
        pairs: list[tuple[Term, Term]] = []
        limit = 6
        atoms = atoms[:limit]
        for i, left in enumerate(atoms):
            for right in atoms[i + 1:]:
                if self.entails_eq(left, right):
                    pairs.append((left, right))
        return pairs

    # -- Fourier-Motzkin ---------------------------------------------------------

    def _normalised(self) -> list[LinearExpr] | None:
        """Expand equalities into inequality pairs; returns ``expr <= 0`` rows."""
        rows: list[LinearExpr] = []
        for constraint in self.constraints:
            rows.append(constraint.expr)
            if constraint.is_equality:
                rows.append(constraint.expr.scale(-1))
        return rows

    def _check_infeasible(self) -> bool:
        rows = self._normalised()
        # Iteratively eliminate atoms.
        while True:
            if self.deadline is not None:
                self.deadline.check()
            # Constant rows decide immediately.
            pending: list[LinearExpr] = []
            for row in rows:
                if row.is_constant:
                    if row.constant > 0:
                        return True
                else:
                    pending.append(row)
            rows = pending
            if not rows:
                return False
            atom = self._pick_atom(rows)
            rows = self._eliminate(rows, atom)
            if len(rows) > self.max_constraints:
                raise _BudgetExceeded()

    @staticmethod
    def _pick_atom(rows: list[LinearExpr]) -> Term:
        occurrences: dict[Term, tuple[int, int]] = {}
        for row in rows:
            for atom, coeff in row.coeffs:
                pos, neg = occurrences.get(atom, (0, 0))
                if coeff > 0:
                    pos += 1
                else:
                    neg += 1
                occurrences[atom] = (pos, neg)
        return min(occurrences, key=lambda a: occurrences[a][0] * occurrences[a][1])

    def _eliminate(self, rows: list[LinearExpr], atom: Term) -> list[LinearExpr]:
        upper: list[LinearExpr] = []  # rows where coeff > 0  (atom <= ...)
        lower: list[LinearExpr] = []  # rows where coeff < 0  (atom >= ...)
        rest: list[LinearExpr] = []
        for row in rows:
            coeff = row.coefficient(atom)
            if coeff > 0:
                upper.append(row.scale(Fraction(1) / coeff))
            elif coeff < 0:
                lower.append(row.scale(Fraction(1) / -coeff))
            else:
                rest.append(row)
        ticks = 0
        for up in upper:
            for low in lower:
                ticks += 1
                if self.deadline is not None and not ticks & 0xFF:
                    self.deadline.check()
                combined = up.add(low)
                # ``atom`` cancels by construction.
                coeffs = {a: c for a, c in combined.coeffs if a != atom}
                rest.append(LinearExpr._from_dict(coeffs, combined.constant))
        return rest


class _BudgetExceeded(Exception):
    pass
