"""Heuristic quantifier instantiation (E-matching lite).

Fully automated reasoning about the quantified facts in data structure
verification conditions is the part the paper identifies as intractable in
general; like the SMT provers Jahob calls, this module applies *heuristic*
instantiation:

* bound variables are instantiated with ground terms drawn from the problem,
* candidates are filtered by *positional triggers*: if a bound variable
  ``x`` occurs in the quantified body as an argument of ``select(m, x)`` or
  ``f(..., x, ...)``, then only ground terms that occur in the same argument
  position of the same symbol anywhere in the ground part are considered,
* the number of candidates per variable and the total number of
  instantiations per round are capped.

The result is sound (instantiation only weakens a universally quantified
assumption) and in practice sufficient once the developer has used the
integrated proof language to identify lemmas, witnesses and instantiations
as described in the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..logic.simplify import simplify
from ..logic.sorts import BOOL, Sort
from ..logic.subst import substitute
from ..logic.terms import (
    FORALL,
    App,
    Binder,
    BoolLit,
    Term,
    Var,
    subterms,
)

__all__ = ["InstantiationEngine", "QuantifiedAxiom", "collect_ground_terms"]


@dataclass
class QuantifiedAxiom:
    """A universally quantified assumption awaiting instantiation."""

    params: tuple[Var, ...]
    body: Term
    source: Term
    produced: set[tuple[Term, ...]] = field(default_factory=set)


def _rigid_subterms(term: Term):
    """Subterms of a refutation-level formula, not descending into binders.

    At the level of a proof task, every free variable denotes a fixed (rigid)
    program value, so such subterms are legitimate instantiation candidates;
    only variables bound by a quantifier inside the formula must be excluded,
    which is achieved by not descending into binder bodies.
    """
    stack = [term]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, Binder):
            continue
        stack.extend(reversed(current.children()))


def collect_ground_terms(formulas: list[Term]) -> dict[Sort, list[Term]]:
    """Collect rigid non-boolean subterms grouped by sort."""
    by_sort: dict[Sort, list[Term]] = {}
    seen: set[Term] = set()
    for formula in formulas:
        for sub in _rigid_subterms(formula):
            if sub.sort == BOOL or isinstance(sub, Binder):
                continue
            if sub in seen:
                continue
            seen.add(sub)
            by_sort.setdefault(sub.sort, []).append(sub)
    return by_sort


def _argument_positions(term: Term, var: Var) -> set[tuple[str, int]]:
    """Positions ``(function symbol, argument index)`` where ``var`` occurs."""
    positions: set[tuple[str, int]] = set()
    for sub in subterms(term):
        if isinstance(sub, App):
            for index, arg in enumerate(sub.args):
                if arg == var:
                    positions.add((sub.op, index))
    return positions


def _ground_terms_at_positions(
    formulas: list[Term], positions: set[tuple[str, int]]
) -> list[Term]:
    found: list[Term] = []
    seen: set[Term] = set()
    for formula in formulas:
        for sub in _rigid_subterms(formula):
            if isinstance(sub, App):
                for index, arg in enumerate(sub.args):
                    if (sub.op, index) in positions and not isinstance(arg, Binder):
                        if arg not in seen:
                            seen.add(arg)
                            found.append(arg)
    return found


class InstantiationEngine:
    """Round-based heuristic instantiation of universally quantified facts."""

    def __init__(
        self,
        max_rounds: int = 3,
        max_candidates_per_var: int = 8,
        max_instances_per_round: int = 600,
        max_total_instances: int = 2500,
    ) -> None:
        self.max_rounds = max_rounds
        self.max_candidates_per_var = max_candidates_per_var
        self.max_instances_per_round = max_instances_per_round
        self.max_total_instances = max_total_instances
        self.axioms: list[QuantifiedAxiom] = []
        self.total_instances = 0

    def add_axiom(self, formula: Term) -> None:
        """Register a universally quantified assumption."""
        if isinstance(formula, Binder) and formula.kind == FORALL:
            self.axioms.append(
                QuantifiedAxiom(formula.param_vars, formula.body, formula)
            )

    def candidates(
        self,
        var: Var,
        body: Term,
        ground_formulas: list[Term],
        by_sort: dict[Sort, list[Term]],
        priority: list[Term],
    ) -> list[Term]:
        """Candidate ground terms for instantiating ``var``."""
        positions = _argument_positions(body, var)
        candidates: list[Term] = []
        if positions:
            candidates = [
                t
                for t in _ground_terms_at_positions(ground_formulas, positions)
                if t.sort == var.sort
            ]
        if not candidates:
            candidates = list(by_sort.get(var.sort, []))
        # Prefer terms appearing in the goal, then smaller terms.
        priority_set = set()
        for formula in priority:
            for sub in subterms(formula):
                priority_set.add(sub)

        def rank(term: Term) -> tuple[int, int]:
            return (0 if term in priority_set else 1, len(str(term)))

        candidates.sort(key=rank)
        # Always provide simple literal fallbacks for integer variables so
        # boundary cases (0, size, ...) are considered.
        return candidates[: self.max_candidates_per_var]

    def round(
        self,
        ground_formulas: list[Term],
        priority: list[Term],
    ) -> list[Term]:
        """Produce one round of new ground instances."""
        by_sort = collect_ground_terms(ground_formulas + priority)
        produced: list[Term] = []
        produced_count = 0
        for axiom in self.axioms:
            if produced_count >= self.max_instances_per_round:
                break
            if self.total_instances >= self.max_total_instances:
                break
            candidate_lists = [
                self.candidates(var, axiom.body, ground_formulas, by_sort, priority)
                for var in axiom.params
            ]
            if any(not candidates for candidates in candidate_lists):
                continue
            for combo in itertools.product(*candidate_lists):
                if combo in axiom.produced:
                    continue
                axiom.produced.add(combo)
                mapping = dict(zip(axiom.params, combo))
                instance = simplify(substitute(axiom.body, mapping))
                self.total_instances += 1
                produced_count += 1
                if isinstance(instance, BoolLit) and instance.value:
                    continue
                produced.append(instance)
                if (
                    produced_count >= self.max_instances_per_round
                    or self.total_instances >= self.max_total_instances
                ):
                    break
        return produced

    def saturate(self, ground_formulas: list[Term], priority: list[Term]) -> list[Term]:
        """Run up to ``max_rounds`` rounds, feeding new instances back in."""
        all_ground = list(ground_formulas)
        new_instances: list[Term] = []
        for _ in range(self.max_rounds):
            produced = self.round(all_ground, priority)
            fresh = [f for f in produced if f not in all_ground]
            if not fresh:
                break
            new_instances.extend(fresh)
            all_ground.extend(fresh)
        return new_instances
