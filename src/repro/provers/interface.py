"""The common prover interface.

Every reasoning system in the portfolio (the stand-ins for SPASS/E, CVC3/Z3,
MONA and BAPA) implements :class:`Prover`: it receives a
:class:`~repro.provers.result.ProofTask` (the assumption base and a goal) and
a time budget, and answers with a :class:`~repro.provers.result.ProverResult`
whose outcome is ``PROVED``, ``REFUTED``, ``UNKNOWN`` or ``TIMEOUT``.

Only ``PROVED`` is trusted by the verification engine; every other outcome
simply means "this prover could not do it" and the dispatcher moves on to the
next prover, exactly as Jahob does.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

from .result import Budget, BudgetExpired, Outcome, ProofTask, ProverResult

__all__ = ["Prover"]


class Prover(ABC):
    """Abstract base class of all provers in the portfolio."""

    #: Human-readable name used in reports and statistics.
    name: str = "prover"

    @abstractmethod
    def attempt(self, task: ProofTask, budget: Budget) -> ProverResult:
        """Attempt the proof task within the budget.

        Implementations should poll ``budget`` and may raise
        :class:`~repro.provers.result.BudgetExpired`; the wrapper converts it
        into a ``TIMEOUT`` result.
        """

    def prove(self, task: ProofTask, timeout: float | None = None) -> ProverResult:
        """Run :meth:`attempt` under a fresh budget, normalising outcomes."""
        budget = Budget(timeout)
        start = time.monotonic()
        try:
            result = self.attempt(task, budget)
        except BudgetExpired:
            result = ProverResult(Outcome.TIMEOUT, reason="budget expired")
        except TimeoutError:
            result = ProverResult(Outcome.TIMEOUT, reason="budget expired")
        except RecursionError:
            result = ProverResult(Outcome.UNKNOWN, reason="recursion limit")
        result.prover = self.name
        result.elapsed = time.monotonic() - start
        return result
