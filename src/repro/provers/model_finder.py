"""A finite model finder used as a refuter.

Jahob's portfolio only needs provers that *establish* sequents; this
additional component searches small finite interpretations for a
counter-model of a sequent.  A found counter-model means the sequent is not
valid (``REFUTED``), which is invaluable while developing specifications and
proof annotations, and which the test suite uses to make sure the other
provers never claim such sequents.

The search enumerates assignments to the free variables of the sequent over
a small object universe and a small integer range.  Sequents mentioning
uninterpreted function symbols or map-valued/set-valued variables with large
value spaces are declined (UNKNOWN).
"""

from __future__ import annotations

import itertools

from ..logic import builder as b
from ..logic.evaluator import EvaluationError, Interpretation
from ..logic.simplify import simplify
from ..logic.sorts import BOOL, INT, OBJ, SetSort
from ..logic.terms import Term, free_vars, function_symbols, term_size
from .interface import Prover
from .result import Budget, Outcome, ProofTask, ProverResult

__all__ = ["FiniteModelFinder"]


class FiniteModelFinder(Prover):
    """Brute-force counter-model search over small universes."""

    name = "model-finder"

    def __init__(
        self,
        objects: tuple[object, ...] = ("o0", "o1"),
        int_values: tuple[int, ...] = (-1, 0, 1, 2),
        max_formula_size: int = 400,
        max_assignments: int = 30000,
    ) -> None:
        self.objects = objects
        self.int_values = int_values
        self.max_formula_size = max_formula_size
        self.max_assignments = max_assignments

    def attempt(self, task: ProofTask, budget: Budget) -> ProverResult:
        formula = simplify(b.Implies(b.And(*task.assumption_formulas), task.goal))
        if term_size(formula) > self.max_formula_size:
            return ProverResult(Outcome.UNKNOWN, reason="formula too large")
        symbols = function_symbols(formula) - {"null"}
        if symbols:
            return ProverResult(
                Outcome.UNKNOWN,
                reason=f"uninterpreted symbols present: {sorted(symbols)[:3]}",
            )
        variables = sorted(free_vars(formula), key=lambda v: v.name)
        base = Interpretation(
            objects=self.objects,
            int_range=(min(self.int_values), max(self.int_values)),
        )
        spaces: list[list[object]] = []
        for var in variables:
            if var.sort == INT:
                spaces.append(list(self.int_values))
            elif var.sort in (OBJ, BOOL) or isinstance(var.sort, SetSort):
                try:
                    spaces.append(base.domain(var.sort))
                except EvaluationError:
                    return ProverResult(
                        Outcome.UNKNOWN, reason=f"cannot enumerate {var.sort}"
                    )
            else:
                return ProverResult(
                    Outcome.UNKNOWN, reason=f"cannot enumerate {var.sort}"
                )
        total = 1
        for space in spaces:
            total *= max(len(space), 1)
            if total > self.max_assignments:
                return ProverResult(Outcome.UNKNOWN, reason="search space too large")
        checked = 0
        for combo in itertools.product(*spaces):
            if checked % 256 == 0:
                budget.check()
            checked += 1
            interp = base.with_variables(dict(zip((v.name for v in variables), combo)))
            try:
                value = interp_holds(formula, interp)
            except EvaluationError:
                return ProverResult(Outcome.UNKNOWN, reason="evaluation failed")
            if not value:
                return ProverResult(
                    Outcome.REFUTED,
                    reason="counter-model found",
                    countermodel=dict(zip((v.name for v in variables), combo)),
                )
        return ProverResult(
            Outcome.UNKNOWN,
            reason=f"no counter-model over {len(self.objects)} objects / "
            f"ints {self.int_values}",
        )


def interp_holds(formula: Term, interp: Interpretation) -> bool:
    from ..logic.evaluator import holds

    return holds(formula, interp)
