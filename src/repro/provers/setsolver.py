"""A BAPA-style reasoner for sets with cardinalities.

This prover is the stand-in for the MONA / BAPA decision procedures in the
paper's portfolio.  It decides (soundly, and completely within its fragment
up to the LP relaxation) entailments whose atoms speak about

* set variables over a common element sort, combined with union,
  intersection, difference and finite set literals,
* membership of element terms,
* equalities / inclusions between set expressions,
* linear integer arithmetic over set cardinalities (``card``) and ordinary
  integer variables -- e.g. ``csize = card content``.

The decision procedure is the classic Venn-region encoding of BAPA
(Kuncak et al.): every set variable and every element term (viewed as a
singleton) becomes a dimension; each of the 2^n Venn regions gets a
non-negative integer size variable; every atom becomes a linear constraint
over region sums.  The conjunction is unsatisfiable if the resulting linear
system is infeasible; we check the rational relaxation (sound for
refutation) with the same Fourier-Motzkin core used by the SMT-lite prover.

Formulas outside the fragment make the prover answer UNKNOWN; the dispatcher
then falls back to the other reasoning systems, mirroring how Jahob applies
specialised provers only to the sequents they are suited for.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction

from ..logic import builder as b
from ..logic.nnf import to_nnf
from ..logic.sorts import INT, SetSort, Sort
from ..logic.subst import substitute
from ..logic.terms import App, BoolLit, Const, IntLit, Term, Var, subterms
from .interface import Prover
from .lia import LinearExpr, LinearSolver, linearize
from .result import Budget, Outcome, ProofTask, ProverResult
from .rewriter import split_conjuncts

__all__ = ["SetCardinalityProver"]

_MAX_DIMENSIONS = 8


class _OutsideFragment(Exception):
    """Raised when a formula cannot be translated to the BAPA fragment."""


@dataclass
class _CaseSplit:
    """Alternative constraints, each of which spawns a separate branch."""

    branches: list[tuple[LinearExpr, bool]]


@dataclass
class _Universe:
    """The dimensions of the Venn-region encoding."""

    elem_sort: Sort | None = None
    set_dims: list[Term] = field(default_factory=list)  # set variables
    elem_dims: list[Term] = field(default_factory=list)  # element terms

    def dim_index(self, term: Term, is_element: bool) -> int:
        dims = self.elem_dims if is_element else self.set_dims
        if term not in dims:
            dims.append(term)
        # Element dimensions are numbered after the set dimensions.
        if is_element:
            return len(self.set_dims) + self.elem_dims.index(term)
        return self.set_dims.index(term)

    @property
    def total_dims(self) -> int:
        return len(self.set_dims) + len(self.elem_dims)


class SetCardinalityProver(Prover):
    """Venn-region / cardinality decision procedure (BAPA-lite)."""

    name = "sets"

    def attempt(self, task: ProofTask, budget: Budget) -> ProverResult:
        # Split the negated goal and the assumptions into conjuncts and
        # inline definitional equalities (``v = nodes Un {n}``) so that the
        # guarded-command assignment chains do not inflate the number of
        # Venn dimensions.
        goal_conjuncts = split_conjuncts(to_nnf(b.Not(task.goal)))
        assumption_conjuncts: list[Term] = []
        for formula in task.assumption_formulas:
            assumption_conjuncts.extend(split_conjuncts(to_nnf(formula)))
        definitions = _collect_definitions(assumption_conjuncts + goal_conjuncts)
        goal_conjuncts = [substitute(c, definitions) for c in goal_conjuncts]
        assumption_conjuncts = [
            substitute(c, definitions)
            for c in assumption_conjuncts
            if not _is_definition(c, definitions)
        ]

        # The negated goal must be translatable, otherwise this specialised
        # prover declines the sequent; assumption conjuncts outside the
        # fragment are simply dropped (sound: fewer assumptions).
        literals: list[tuple[Term, bool]] = []
        universe = _Universe()
        try:
            goal_literals: list[tuple[Term, bool]] = []
            for conjunct in goal_conjuncts:
                goal_literals.extend(_flatten_literal(conjunct))
            for atom, _positive in goal_literals:
                _scan_dimensions(atom, universe)
            literals.extend(goal_literals)
        except _OutsideFragment as exc:
            return ProverResult(Outcome.UNKNOWN, reason=f"outside fragment: {exc}")
        for conjunct in assumption_conjuncts:
            try:
                candidate = _flatten_literal(conjunct)
                probe = _Universe(
                    universe.elem_sort,
                    list(universe.set_dims),
                    list(universe.elem_dims),
                )
                for atom, _positive in candidate:
                    _scan_dimensions(atom, probe)
            except _OutsideFragment:
                continue
            literals.extend(candidate)
            universe = probe
        if universe.total_dims == 0 or universe.total_dims > _MAX_DIMENSIONS:
            return ProverResult(
                Outcome.UNKNOWN,
                reason=f"{universe.total_dims} dimensions (limit {_MAX_DIMENSIONS})",
            )
        budget.check()
        solver = LinearSolver(max_constraints=20000, deadline=budget)
        regions = list(itertools.product([0, 1], repeat=universe.total_dims))
        region_vars = {
            region: Var("region_" + "".join(map(str, region)), INT)
            for region in regions
        }
        # Region sizes are non-negative.
        for var in region_vars.values():
            solver.add_le(linearize(IntLit(0)).sub(linearize(var)))
        # Each element dimension is a singleton.
        for index in range(len(universe.set_dims), universe.total_dims):
            expr = _sum_of(
                [region_vars[r] for r in regions if r[index] == 1]
            ).sub(LinearExpr.of_constant(1))
            solver.add_eq(expr)
        # Integer disequalities produce a case split (a < b or b < a); every
        # branch of the cross product must be infeasible for a refutation.
        branch_groups: list[list[tuple[LinearExpr, bool]]] = []
        try:
            for atom, positive in literals:
                translated = _constraints_for(
                    atom, positive, universe, regions, region_vars
                )
                if isinstance(translated, _CaseSplit):
                    branch_groups.append(translated.branches)
                    continue
                for constraint, is_eq in translated:
                    if is_eq:
                        solver.add_eq(constraint)
                    else:
                        solver.add_le(constraint)
                budget.check()
        except _OutsideFragment as exc:
            return ProverResult(Outcome.UNKNOWN, reason=f"outside fragment: {exc}")
        if len(branch_groups) > 3:
            return ProverResult(
                Outcome.UNKNOWN, reason="too many integer disequalities"
            )
        for combination in itertools.product(*branch_groups):
            branch_solver = solver.copy()
            for constraint, is_eq in combination:
                if is_eq:
                    branch_solver.add_eq(constraint)
                else:
                    branch_solver.add_le(constraint)
            budget.check()
            if not branch_solver.is_infeasible():
                return ProverResult(
                    Outcome.UNKNOWN, reason="Venn-region system feasible"
                )
        return ProverResult(Outcome.PROVED, reason="Venn-region system infeasible")


# ---------------------------------------------------------------------------
# Fragment recognition and translation
# ---------------------------------------------------------------------------


def _collect_definitions(conjuncts: list[Term]) -> dict[Var, Term]:
    """Definitional equalities ``v = t`` among the conjuncts, fully resolved
    (chains like ``nodes_1 = v_1`` and ``v_1 = nodes Un {n}`` collapse)."""
    from ..logic.terms import free_vars

    definitions: dict[Var, Term] = {}
    for conjunct in conjuncts:
        if not (isinstance(conjunct, App) and conjunct.op == "eq"):
            continue
        left, right = conjunct.args
        for var, value in ((left, right), (right, left)):
            if not isinstance(var, Var) or var in definitions:
                continue
            if var in free_vars(value):
                continue
            definitions[var] = value
            break
    # Resolve chains (bounded by the number of definitions).
    for _ in range(len(definitions)):
        changed = False
        for var, value in list(definitions.items()):
            resolved = substitute(
                value, {v: t for v, t in definitions.items() if v != var}
            )
            if resolved != value and var not in free_vars(resolved):
                definitions[var] = resolved
                changed = True
        if not changed:
            break
    # Drop any residual self-referential entries.
    from ..logic.terms import free_vars as _fv

    return {v: t for v, t in definitions.items() if v not in _fv(t)}


def _is_definition(conjunct: Term, definitions: dict[Var, Term]) -> bool:
    if not (isinstance(conjunct, App) and conjunct.op == "eq"):
        return False
    left, right = conjunct.args
    return (isinstance(left, Var) and left in definitions) or (
        isinstance(right, Var) and right in definitions
    )


def _flatten_literal(formula: Term) -> list[tuple[Term, bool]]:
    """Split an NNF conjunct into (atom, polarity) pairs; reject disjunctions."""
    if isinstance(formula, BoolLit):
        if formula.value:
            return []
        raise _OutsideFragment("false conjunct")
    if isinstance(formula, App) and formula.op == "and":
        out: list[tuple[Term, bool]] = []
        for arg in formula.args:
            out.extend(_flatten_literal(arg))
        return out
    if isinstance(formula, App) and formula.op == "not":
        inner = formula.args[0]
        if isinstance(inner, App) and inner.op in (
            "member",
            "subseteq",
            "eq",
            "le",
            "lt",
        ):
            return [(inner, False)]
        raise _OutsideFragment(f"negated {type(inner).__name__}")
    if isinstance(formula, App) and formula.op in (
        "member",
        "subseteq",
        "eq",
        "le",
        "lt",
    ):
        return [(formula, True)]
    raise _OutsideFragment(f"unsupported connective {formula}")


def _is_set_expression(term: Term) -> bool:
    if isinstance(term, (Var, Const)) and isinstance(term.sort, SetSort):
        return True
    if isinstance(term, App) and term.op in ("union", "inter", "setminus", "setenum"):
        return True
    return False


def _scan_dimensions(atom: Term, universe: _Universe) -> None:
    if isinstance(atom, App) and atom.op == "member":
        element, the_set = atom.args
        _register_element(element, universe)
        _register_set_expression(the_set, universe)
        return
    if isinstance(atom, App) and atom.op in ("subseteq",):
        _register_set_expression(atom.args[0], universe)
        _register_set_expression(atom.args[1], universe)
        return
    if isinstance(atom, App) and atom.op == "eq":
        left, right = atom.args
        if isinstance(left.sort, SetSort):
            _register_set_expression(left, universe)
            _register_set_expression(right, universe)
            return
        if left.sort == INT:
            _register_arith(atom, universe)
            return
        # equality between element terms
        _register_element(left, universe)
        _register_element(right, universe)
        return
    if isinstance(atom, App) and atom.op in ("le", "lt"):
        _register_arith(atom, universe)
        return
    raise _OutsideFragment(f"unsupported atom {atom}")


def _register_arith(atom: Term, universe: _Universe) -> None:
    for sub in subterms(atom):
        if isinstance(sub, App) and sub.op == "card":
            _register_set_expression(sub.args[0], universe)
        elif isinstance(sub, App) and sub.op in ("select", "store"):
            raise _OutsideFragment("array term in arithmetic atom")


def _register_set_expression(term: Term, universe: _Universe) -> None:
    if isinstance(term, (Var, Const)) and isinstance(term.sort, SetSort):
        _check_elem_sort(term.sort.elem, universe)
        universe.dim_index(term, is_element=False)
        return
    if isinstance(term, App) and term.op in ("union", "inter", "setminus"):
        _register_set_expression(term.args[0], universe)
        _register_set_expression(term.args[1], universe)
        return
    if isinstance(term, App) and term.op == "setenum":
        assert isinstance(term.sort, SetSort)
        _check_elem_sort(term.sort.elem, universe)
        for element in term.args:
            _register_element(element, universe)
        return
    raise _OutsideFragment(f"unsupported set expression {term}")


def _register_element(term: Term, universe: _Universe) -> None:
    if isinstance(term.sort, SetSort):
        raise _OutsideFragment("set-valued element term")
    _check_elem_sort(term.sort, universe)
    universe.dim_index(term, is_element=True)


def _check_elem_sort(sort: Sort, universe: _Universe) -> None:
    if isinstance(sort, SetSort):
        raise _OutsideFragment("nested set sorts")
    if universe.elem_sort is None:
        universe.elem_sort = sort
    elif universe.elem_sort != sort:
        raise _OutsideFragment(f"mixed element sorts {universe.elem_sort} and {sort}")


# ---------------------------------------------------------------------------
# Constraint generation
# ---------------------------------------------------------------------------


def _region_in(term: Term, region: tuple[int, ...], universe: _Universe) -> bool:
    """Is a Venn region inside the denotation of a set expression?"""
    if isinstance(term, (Var, Const)) and isinstance(term.sort, SetSort):
        return region[universe.set_dims.index(term)] == 1
    if isinstance(term, App):
        if term.op == "union":
            return _region_in(term.args[0], region, universe) or _region_in(
                term.args[1], region, universe
            )
        if term.op == "inter":
            return _region_in(term.args[0], region, universe) and _region_in(
                term.args[1], region, universe
            )
        if term.op == "setminus":
            return _region_in(term.args[0], region, universe) and not _region_in(
                term.args[1], region, universe
            )
        if term.op == "setenum":
            return any(
                _region_in_element(element, region, universe)
                for element in term.args
            )
    raise _OutsideFragment(f"unsupported set expression {term}")


def _region_in_element(
    element: Term, region: tuple[int, ...], universe: _Universe
) -> bool:
    index = len(universe.set_dims) + universe.elem_dims.index(element)
    return region[index] == 1


def _sum_of(variables: list[Var]) -> LinearExpr:
    expr = LinearExpr.of_constant(0)
    for var in variables:
        expr = expr.add(LinearExpr.of_atom(var))
    return expr


def _cardinality_expr(
    set_expr: Term,
    regions: list[tuple[int, ...]],
    region_vars: dict[tuple[int, ...], Var],
    universe: _Universe,
) -> LinearExpr:
    members = [region_vars[r] for r in regions if _region_in(set_expr, r, universe)]
    return _sum_of(members)


def _arith_expr(
    term: Term,
    regions: list[tuple[int, ...]],
    region_vars: dict[tuple[int, ...], Var],
    universe: _Universe,
) -> LinearExpr:
    """Linearise an integer term, replacing ``card`` by region sums."""
    if isinstance(term, IntLit):
        return LinearExpr.of_constant(term.value)
    if isinstance(term, App):
        if term.op == "card":
            return _cardinality_expr(term.args[0], regions, region_vars, universe)
        if term.op == "add":
            expr = LinearExpr.of_constant(0)
            for arg in term.args:
                expr = expr.add(_arith_expr(arg, regions, region_vars, universe))
            return expr
        if term.op == "sub":
            return _arith_expr(term.args[0], regions, region_vars, universe).sub(
                _arith_expr(term.args[1], regions, region_vars, universe)
            )
        if term.op == "neg":
            return _arith_expr(term.args[0], regions, region_vars, universe).scale(-1)
        if term.op == "mul":
            left = _arith_expr(term.args[0], regions, region_vars, universe)
            right = _arith_expr(term.args[1], regions, region_vars, universe)
            if left.is_constant:
                return right.scale(left.constant)
            if right.is_constant:
                return left.scale(right.constant)
            raise _OutsideFragment("non-linear arithmetic")
        if term.op in ("select", "div", "mod"):
            raise _OutsideFragment(f"{term.op} in arithmetic")
    if term.sort == INT:
        return LinearExpr.of_atom(term)
    raise _OutsideFragment(f"non-integer term {term}")


def _constraints_for(
    atom: Term,
    positive: bool,
    universe: _Universe,
    regions: list[tuple[int, ...]],
    region_vars: dict[tuple[int, ...], Var],
) -> list[tuple[LinearExpr, bool]]:
    """Translate one literal into (expr, is_equality) rows (expr <= 0 / = 0)."""
    constraints: list[tuple[LinearExpr, bool]] = []
    if isinstance(atom, App) and atom.op == "member":
        element, the_set = atom.args
        singleton = App("setenum", (element,), SetSort(element.sort))
        if positive:
            # |{e} \ S| = 0
            diff = App("setminus", (singleton, the_set), singleton.sort)
        else:
            # |{e} inter S| = 0
            diff = App("inter", (singleton, the_set), singleton.sort)
        constraints.append(
            (_cardinality_expr(diff, regions, region_vars, universe), True)
        )
        return constraints
    if isinstance(atom, App) and atom.op == "subseteq":
        left, right = atom.args
        difference = App("setminus", (left, right), left.sort)
        size = _cardinality_expr(difference, regions, region_vars, universe)
        if positive:
            constraints.append((size, True))
        else:
            constraints.append((LinearExpr.of_constant(1).sub(size), False))
        return constraints
    if isinstance(atom, App) and atom.op == "eq":
        left, right = atom.args
        if isinstance(left.sort, SetSort):
            left_minus = App("setminus", (left, right), left.sort)
            right_minus = App("setminus", (right, left), left.sort)
            size = _cardinality_expr(
                left_minus, regions, region_vars, universe
            ).add(_cardinality_expr(right_minus, regions, region_vars, universe))
            if positive:
                constraints.append((size, True))
            else:
                constraints.append((LinearExpr.of_constant(1).sub(size), False))
            return constraints
        if left.sort == INT:
            left_expr = _arith_expr(left, regions, region_vars, universe)
            right_expr = _arith_expr(right, regions, region_vars, universe)
            if positive:
                constraints.append((left_expr.sub(right_expr), True))
                return constraints
            # a /= b over the integers: a + 1 <= b  OR  b + 1 <= a.
            return _CaseSplit(
                [
                    (left_expr.sub(right_expr).add(LinearExpr.of_constant(1)), False),
                    (right_expr.sub(left_expr).add(LinearExpr.of_constant(1)), False),
                ]
            )
        # element equality / disequality
        left_single = App("setenum", (left,), SetSort(left.sort))
        right_single = App("setenum", (right,), SetSort(right.sort))
        if positive:
            sym = App(
                "union",
                (
                    App("setminus", (left_single, right_single), left_single.sort),
                    App("setminus", (right_single, left_single), left_single.sort),
                ),
                left_single.sort,
            )
            constraints.append(
                (_cardinality_expr(sym, regions, region_vars, universe), True)
            )
        else:
            overlap = App("inter", (left_single, right_single), left_single.sort)
            constraints.append(
                (_cardinality_expr(overlap, regions, region_vars, universe), True)
            )
        return constraints
    if isinstance(atom, App) and atom.op in ("le", "lt"):
        left = _arith_expr(atom.args[0], regions, region_vars, universe)
        right = _arith_expr(atom.args[1], regions, region_vars, universe)
        if positive:
            gap = Fraction(1) if atom.op == "lt" else Fraction(0)
            constraints.append(
                (left.sub(right).add(LinearExpr.of_constant(gap)), False)
            )
        else:
            # ~(l <= r) == r + 1 <= l ; ~(l < r) == r <= l
            gap = Fraction(0) if atom.op == "lt" else Fraction(1)
            constraints.append(
                (right.sub(left).add(LinearExpr.of_constant(gap)), False)
            )
        return constraints
    raise _OutsideFragment(f"unsupported atom {atom}")
