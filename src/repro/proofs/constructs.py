"""The integrated proof language constructs (Figure 3 of the paper).

Each construct is an extended guarded command, so developers can embed it at
any program point of a method body (the frontend parses them from
``/*: ... */`` comments).  The constructs and their intent:

===================  ========================================================
``note``             prove a lemma and add it to the assumption base, with an
                     optional ``from`` clause restricting the assumption base
                     used for the proof (assumption-base control)
``localize``         prove a lemma inside a local assumption base, exporting
                     only the final formula
``mp``               modus ponens
``assuming``         implication introduction
``cases``            case analysis
``showedCase``       disjunction introduction
``byContradiction``  proof by contradiction
``contradiction``    derive ``false`` from ``F`` and ``~F``
``instantiate``      universal elimination
``witness``          existential introduction (witness identification)
``pickWitness``      existential elimination
``pickAny``          universal introduction
``induct``           mathematical induction over non-negative integers
``fix``              generalisation of pickAny/pickWitness admitting
                     executable code in its body (Appendix B)
===================  ========================================================

The semantics of every construct is given by its translation into simple
guarded commands in :mod:`repro.proofs.translate` (Figure 8 / Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gcl.extended import ExtendedCommand, ProofConstruct, Skip
from ..logic.terms import Term, Var

__all__ = [
    "Note",
    "Localize",
    "Mp",
    "Assuming",
    "Cases",
    "ShowedCase",
    "ByContradiction",
    "Contradiction",
    "Instantiate",
    "Witness",
    "PickWitness",
    "PickAny",
    "Induct",
    "Fix",
    "PROOF_CONSTRUCT_NAMES",
    "construct_name",
]


@dataclass(frozen=True)
class Note(ProofConstruct):
    """``note l:F from h`` -- prove ``F`` (using only the named assumptions
    when ``from_hints`` is non-empty) and add it to the assumption base."""

    label: str
    formula: Term
    from_hints: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "from_hints", tuple(self.from_hints))


@dataclass(frozen=True)
class Localize(ProofConstruct):
    """``localize in (p ; note l:F)`` -- prove ``F`` with the help of the
    intermediate lemmas in ``proof``, but add only ``F`` to the original
    assumption base."""

    proof: ExtendedCommand
    label: str
    formula: Term
    from_hints: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "from_hints", tuple(self.from_hints))

    def children(self) -> tuple[ExtendedCommand, ...]:
        return (self.proof,)


@dataclass(frozen=True)
class Mp(ProofConstruct):
    """``mp l:(F --> G)`` -- modus ponens: prove ``F`` and ``F --> G``, then
    assume ``G``."""

    label: str
    antecedent: Term
    consequent: Term
    from_hints: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "from_hints", tuple(self.from_hints))


@dataclass(frozen=True)
class Assuming(ProofConstruct):
    """``assuming lF:F in (p ; note lG:G)`` -- implication introduction:
    assume ``F`` locally, prove ``G`` under it, export ``F --> G``."""

    hypothesis_label: str
    hypothesis: Term
    proof: ExtendedCommand
    conclusion_label: str
    conclusion: Term
    from_hints: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "from_hints", tuple(self.from_hints))

    def children(self) -> tuple[ExtendedCommand, ...]:
        return (self.proof,)


@dataclass(frozen=True)
class Cases(ProofConstruct):
    """``cases F1, ..., Fn for l:G`` -- case analysis: the cases must cover,
    and each case must imply the goal."""

    cases: tuple[Term, ...]
    label: str
    goal: Term
    from_hints: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "cases", tuple(self.cases))
        object.__setattr__(self, "from_hints", tuple(self.from_hints))


@dataclass(frozen=True)
class ShowedCase(ProofConstruct):
    """``showedCase i of l:F1 | ... | Fn`` -- disjunction introduction."""

    index: int
    label: str
    disjuncts: tuple[Term, ...]
    from_hints: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "disjuncts", tuple(self.disjuncts))
        object.__setattr__(self, "from_hints", tuple(self.from_hints))


@dataclass(frozen=True)
class ByContradiction(ProofConstruct):
    """``byContradiction l:F in p`` -- assume ``~F`` locally, derive false."""

    label: str
    formula: Term
    proof: ExtendedCommand = field(default_factory=Skip)

    def children(self) -> tuple[ExtendedCommand, ...]:
        return (self.proof,)


@dataclass(frozen=True)
class Contradiction(ProofConstruct):
    """``contradiction l:F`` -- prove both ``F`` and ``~F``; conclude false."""

    label: str
    formula: Term
    from_hints: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "from_hints", tuple(self.from_hints))


@dataclass(frozen=True)
class Instantiate(ProofConstruct):
    """``instantiate l:(ALL x. F) with t`` -- universal elimination."""

    label: str
    quantified: Term
    terms: tuple[Term, ...]
    from_hints: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(self.terms))
        object.__setattr__(self, "from_hints", tuple(self.from_hints))


@dataclass(frozen=True)
class Witness(ProofConstruct):
    """``witness t for l:(EX x. F)`` -- existential introduction with an
    explicit witness (the paper's witness identification)."""

    terms: tuple[Term, ...]
    label: str
    existential: Term
    from_hints: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(self.terms))
        object.__setattr__(self, "from_hints", tuple(self.from_hints))


@dataclass(frozen=True)
class PickWitness(ProofConstruct):
    """``pickWitness x for lF:F in (p ; note lG:G)`` -- existential
    elimination: name values satisfying ``F`` in a local assumption base,
    prove ``G`` (in which the picked variables must not occur), export ``G``."""

    variables: tuple[Var, ...]
    hypothesis_label: str
    hypothesis: Term
    proof: ExtendedCommand
    conclusion_label: str
    conclusion: Term

    def __post_init__(self) -> None:
        object.__setattr__(self, "variables", tuple(self.variables))

    def children(self) -> tuple[ExtendedCommand, ...]:
        return (self.proof,)


@dataclass(frozen=True)
class PickAny(ProofConstruct):
    """``pickAny x in (p ; note l:G)`` -- universal introduction: prove ``G``
    for arbitrary ``x``, export ``ALL x. G``."""

    variables: tuple[Var, ...]
    proof: ExtendedCommand
    label: str
    goal: Term

    def __post_init__(self) -> None:
        object.__setattr__(self, "variables", tuple(self.variables))

    def children(self) -> tuple[ExtendedCommand, ...]:
        return (self.proof,)


@dataclass(frozen=True)
class Induct(ProofConstruct):
    """``induct l:F over n in p`` -- mathematical induction over ``n >= 0``."""

    label: str
    formula: Term
    variable: Var
    proof: ExtendedCommand = field(default_factory=Skip)

    def children(self) -> tuple[ExtendedCommand, ...]:
        return (self.proof,)


@dataclass(frozen=True)
class Fix(ProofConstruct):
    """``fix x suchThat F in (c ; note l:G)`` -- Appendix B's generalisation
    of pickAny / pickWitness whose body ``c`` may contain executable code."""

    variables: tuple[Var, ...]
    such_that: Term
    body: ExtendedCommand
    label: str
    goal: Term

    def __post_init__(self) -> None:
        object.__setattr__(self, "variables", tuple(self.variables))

    def children(self) -> tuple[ExtendedCommand, ...]:
        return (self.body,)


#: Construct names in the order Table 1 reports them.
PROOF_CONSTRUCT_NAMES = (
    "note",
    "localize",
    "assuming",
    "mp",
    "pickAny",
    "instantiate",
    "witness",
    "pickWitness",
    "cases",
    "induct",
    "showedCase",
    "byContradiction",
    "contradiction",
    "fix",
)

_NAME_BY_CLASS = {
    Note: "note",
    Localize: "localize",
    Assuming: "assuming",
    Mp: "mp",
    PickAny: "pickAny",
    Instantiate: "instantiate",
    Witness: "witness",
    PickWitness: "pickWitness",
    Cases: "cases",
    Induct: "induct",
    ShowedCase: "showedCase",
    ByContradiction: "byContradiction",
    Contradiction: "contradiction",
    Fix: "fix",
}


def construct_name(construct: ProofConstruct) -> str:
    """The Table-1 name of a proof construct instance."""
    return _NAME_BY_CLASS[type(construct)]
