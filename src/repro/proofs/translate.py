"""Translation of proof language constructs into simple guarded commands.

This module implements Figure 8 of the paper (plus Figure 12 for ``fix``).
Every construct desugars into a combination of ``assert``, ``assume``,
``havoc``, choice and sequencing; the characteristic pattern

    (skip [] (c ; [[p]] ; assert F ; assume false)) ; assume G

creates a *local assumption base*: the second branch generates the proof
obligations needed to establish ``G`` and is then cut off by
``assume false``, so only ``G`` itself is exported to the original
assumption base.  The soundness of each rule (``[[p]]`` is stronger than
``skip``) is established in :mod:`repro.proofs.soundness`, mirroring the
paper's Appendix A.
"""

from __future__ import annotations

from ..gcl.extended import ProofConstruct
from ..gcl.simple import SAssert, SAssume, SHavoc, SimpleCommand, schoice, sseq, sskip
from ..logic import builder as b
from ..logic.subst import substitute
from ..logic.terms import EXISTS, FORALL, Binder, Term, Var, free_vars
from .constructs import (
    Assuming,
    ByContradiction,
    Cases,
    Contradiction,
    Fix,
    Induct,
    Instantiate,
    Localize,
    Mp,
    Note,
    PickAny,
    PickWitness,
    ShowedCase,
    Witness,
)

__all__ = ["translate_proof", "ProofTranslationError"]


class ProofTranslationError(ValueError):
    """Raised when a proof construct is ill-formed (e.g. a pickWitness whose
    conclusion mentions the picked variables)."""


def _local_base(
    setup: SimpleCommand,
    obligation: SimpleCommand,
    exported: SimpleCommand,
) -> SimpleCommand:
    """The ``(skip [] (setup ; obligation ; assume false)) ; exported`` pattern."""
    dead_branch = sseq(setup, obligation, SAssume(b.Bool(False), "ProofCut"))
    return sseq(schoice(sskip(), dead_branch), exported)


def _strip_binder(formula: Term, kind: str, context: str) -> Binder:
    if not isinstance(formula, Binder) or formula.kind != kind:
        raise ProofTranslationError(
            f"{context} expects a "
            f"{'universally' if kind == FORALL else 'existentially'}"
            f" quantified formula, got {formula}"
        )
    return formula


def translate_proof(construct: ProofConstruct, desugarer) -> SimpleCommand:
    """Translate one proof construct (Figure 8 / Figure 12)."""
    if isinstance(construct, Note):
        return sseq(
            SAssert(construct.formula, construct.label, construct.from_hints),
            SAssume(construct.formula, construct.label),
        )

    if isinstance(construct, Localize):
        inner = desugarer.desugar(construct.proof)
        return _local_base(
            inner,
            SAssert(construct.formula, construct.label, construct.from_hints),
            SAssume(construct.formula, construct.label),
        )

    if isinstance(construct, Mp):
        implication = b.Implies(construct.antecedent, construct.consequent)
        return sseq(
            SAssert(construct.antecedent, f"{construct.label}_antecedent",
                    construct.from_hints),
            SAssert(implication, f"{construct.label}_implication",
                    construct.from_hints),
            SAssume(construct.consequent, construct.label),
        )

    if isinstance(construct, Assuming):
        inner = sseq(
            SAssume(construct.hypothesis, construct.hypothesis_label),
            desugarer.desugar(construct.proof),
        )
        exported = b.Implies(construct.hypothesis, construct.conclusion)
        return _local_base(
            inner,
            SAssert(construct.conclusion, construct.conclusion_label,
                    construct.from_hints),
            SAssume(exported, construct.conclusion_label),
        )

    if isinstance(construct, Cases):
        commands: list[SimpleCommand] = [
            SAssert(b.Or(*construct.cases), f"{construct.label}_coverage",
                    construct.from_hints)
        ]
        for index, case in enumerate(construct.cases):
            commands.append(
                SAssert(
                    b.Implies(case, construct.goal),
                    f"{construct.label}_case{index + 1}",
                    construct.from_hints,
                )
            )
        commands.append(SAssume(construct.goal, construct.label))
        return sseq(*commands)

    if isinstance(construct, ShowedCase):
        if not 1 <= construct.index <= len(construct.disjuncts):
            raise ProofTranslationError(
                f"showedCase index {construct.index} out of range"
            )
        shown = construct.disjuncts[construct.index - 1]
        return sseq(
            SAssert(shown, f"{construct.label}_case{construct.index}",
                    construct.from_hints),
            SAssume(b.Or(*construct.disjuncts), construct.label),
        )

    if isinstance(construct, ByContradiction):
        inner = sseq(
            SAssume(b.Not(construct.formula), f"{construct.label}_negated"),
            desugarer.desugar(construct.proof),
        )
        return _local_base(
            inner,
            SAssert(b.Bool(False), f"{construct.label}_absurd"),
            SAssume(construct.formula, construct.label),
        )

    if isinstance(construct, Contradiction):
        return sseq(
            SAssert(construct.formula, f"{construct.label}_pos", construct.from_hints),
            SAssert(b.Not(construct.formula), f"{construct.label}_neg",
                    construct.from_hints),
            SAssume(b.Bool(False), construct.label),
        )

    if isinstance(construct, Instantiate):
        quantified = _strip_binder(construct.quantified, FORALL, "instantiate")
        if len(construct.terms) != len(quantified.params):
            raise ProofTranslationError(
                "instantiate provides "
                f"{len(construct.terms)} terms for {len(quantified.params)} "
                "bound variables"
            )
        mapping = dict(zip(quantified.param_vars, construct.terms))
        instance = substitute(quantified.body, mapping)
        return sseq(
            SAssert(construct.quantified, f"{construct.label}_universal",
                    construct.from_hints),
            SAssume(instance, construct.label),
        )

    if isinstance(construct, Witness):
        existential = _strip_binder(construct.existential, EXISTS, "witness")
        if len(construct.terms) != len(existential.params):
            raise ProofTranslationError(
                f"witness provides {len(construct.terms)} terms for "
                f"{len(existential.params)} bound variables"
            )
        mapping = dict(zip(existential.param_vars, construct.terms))
        instance = substitute(existential.body, mapping)
        return sseq(
            SAssert(instance, f"{construct.label}_witness", construct.from_hints),
            SAssume(construct.existential, construct.label),
        )

    if isinstance(construct, PickWitness):
        picked = set(construct.variables)
        if picked & free_vars(construct.conclusion):
            raise ProofTranslationError(
                "pickWitness conclusion must not mention the picked variables"
            )
        existential = b.Exists(list(construct.variables), construct.hypothesis)
        inner = sseq(
            SAssert(existential, f"{construct.hypothesis_label}_exists"),
            SHavoc(construct.variables),
            SAssume(construct.hypothesis, construct.hypothesis_label),
            desugarer.desugar(construct.proof),
        )
        return _local_base(
            inner,
            SAssert(construct.conclusion, construct.conclusion_label),
            SAssume(construct.conclusion, construct.conclusion_label),
        )

    if isinstance(construct, PickAny):
        inner = sseq(
            SHavoc(construct.variables),
            desugarer.desugar(construct.proof),
        )
        exported = b.ForAll(list(construct.variables), construct.goal)
        return _local_base(
            inner,
            SAssert(construct.goal, construct.label),
            SAssume(exported, construct.label),
        )

    if isinstance(construct, Induct):
        n = construct.variable
        zero_case = substitute(construct.formula, {n: b.Int(0)})
        step_case = b.Implies(
            construct.formula,
            substitute(construct.formula, {n: b.Plus(n, b.Int(1))}),
        )
        inner = sseq(
            SHavoc((n,)),
            SAssume(b.Le(b.Int(0), n), f"{construct.label}_range"),
            desugarer.desugar(construct.proof),
        )
        exported = b.ForAll([n], b.Implies(b.Le(b.Int(0), n), construct.formula))
        dead_branch = sseq(
            inner,
            SAssert(zero_case, f"{construct.label}_base"),
            SAssert(step_case, f"{construct.label}_step"),
            SAssume(b.Bool(False), "ProofCut"),
        )
        return sseq(
            schoice(sskip(), dead_branch),
            SAssume(exported, construct.label),
        )

    if isinstance(construct, Fix):
        return _translate_fix(construct, desugarer)

    raise ProofTranslationError(f"unknown proof construct {type(construct)!r}")


def _translate_fix(construct: Fix, desugarer) -> SimpleCommand:
    """Figure 12: the ``fix`` construct with executable code in its body."""
    from ..gcl.extended import assigned_variables

    modified = assigned_variables(construct.body)
    overlap = set(construct.variables) & set(modified)
    if overlap:
        raise ProofTranslationError(
            f"fix body must not modify the fixed variables "
            f"{sorted(v.name for v in overlap)}"
        )
    # Save the modified variables so the constraint F' refers to their values
    # at the start of the fix block.
    saves: list[SimpleCommand] = []
    renaming: dict[Var, Term] = {}
    for var in modified:
        saved = Var(desugarer.fresh.fresh(f"{var.name}_at_fix"), var.sort)
        renaming[var] = saved
        saves.append(SHavoc((saved,)))
        saves.append(SAssume(b.Eq(saved, var), "FixSnapshot"))
    constraint = substitute(construct.such_that, renaming)
    exported = b.ForAll(
        list(construct.variables), b.Implies(constraint, construct.goal)
    )
    existential = b.Exists(list(construct.variables), constraint)
    return sseq(
        *saves,
        SAssert(existential, f"{construct.label}_exists"),
        SHavoc(construct.variables),
        SAssume(constraint, f"{construct.label}_fixed"),
        desugarer.desugar(construct.body),
        SAssert(construct.goal, construct.label),
        SAssume(exported, construct.label),
    )
