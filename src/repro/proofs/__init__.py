"""The integrated proof language: constructs, translation and soundness."""

from .constructs import (
    PROOF_CONSTRUCT_NAMES,
    Assuming,
    ByContradiction,
    Cases,
    Contradiction,
    Fix,
    Induct,
    Instantiate,
    Localize,
    Mp,
    Note,
    PickAny,
    PickWitness,
    ShowedCase,
    Witness,
    construct_name,
)
from .soundness import SoundnessChecker, SoundnessReport, soundness_obligation
from .translate import ProofTranslationError, translate_proof

__all__ = [name for name in dir() if not name.startswith("_")]
