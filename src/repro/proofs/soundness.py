"""Machine-checked soundness of the proof language translations.

Section 5 / Appendix A of the paper prove that every proof construct ``p``
is *stronger than skip*: ``wlp([[p]], H) --> H`` for every postcondition
``H``.  This guarantees that inserting proof constructs never makes an
incorrect program verify -- anything provable with the annotations also
holds for the unannotated program.

This module reproduces that argument mechanically for concrete construct
instances: :func:`soundness_obligation` builds the formula
``wlp([[p]], H) --> H`` and :class:`SoundnessChecker` discharges it with the
prover portfolio.  The test suite instantiates every construct of Figure 3
(and ``fix`` from Appendix B) with representative formulas and checks the
obligation, and additionally cross-checks the implication with the
finite-model evaluator on random interpretations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gcl.desugar import Desugarer
from ..gcl.extended import ProofConstruct
from ..gcl.wlp import wlp
from ..logic import builder as b
from ..logic.terms import Term, free_var_names
from ..provers.dispatch import ProverPortfolio, default_portfolio
from ..provers.result import ProofTask

__all__ = ["soundness_obligation", "SoundnessChecker", "SoundnessReport"]


def soundness_obligation(construct: ProofConstruct, post: Term) -> Term:
    """The formula ``wlp([[p]], H) --> H`` for a concrete construct and post."""
    used = set(free_var_names(post))
    desugarer = Desugarer(used)
    translated = desugarer.desugar(construct)
    return b.Implies(wlp(translated, post), post)


@dataclass
class SoundnessReport:
    """Outcome of checking one construct instance."""

    construct: str
    obligation: Term
    proved: bool
    prover: str = ""


@dataclass
class SoundnessChecker:
    """Checks ``p`` is stronger than ``skip`` using the prover portfolio."""

    portfolio: ProverPortfolio = field(default_factory=default_portfolio)

    def check(self, construct: ProofConstruct, post: Term) -> SoundnessReport:
        from .constructs import construct_name

        obligation = soundness_obligation(construct, post)
        task = ProofTask((), obligation, label="soundness")
        result = self.portfolio.dispatch(task)
        return SoundnessReport(
            construct=construct_name(construct),
            obligation=obligation,
            proved=result.proved,
            prover=result.winning_prover,
        )
