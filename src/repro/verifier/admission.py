"""Admission control for the daemon's engine ops.

Before this layer the daemon had exactly two behaviours under load: queue
without bound on one engine lock, or -- with ``"nowait": true`` -- answer
``busy`` immediately.  Neither survives hundreds of concurrent clients:
unbounded queueing pins a thread (and a connection) per waiter with no
backpressure signal, and ``nowait`` pushes the retry policy onto every
client.

:class:`AdmissionController` is the front door's traffic cop.  Every
engine-driving request passes through :meth:`~AdmissionController.admit`
before it may touch the engine:

* **rate limiting** -- a per-client :class:`TokenBucket` keyed by the
  authenticated client id (HMAC-verified on TCP/HTTP transports, caller
  supplied on the trusted unix socket).  A client over its budget is
  rejected with ``code="rate_limited"`` without consuming a queue slot.
* **bounded FIFO queue with priority lanes** -- a busy engine queues the
  request in its lane (``interactive`` ahead of ``batch``, FIFO within a
  lane) up to ``queue_limit`` waiters; beyond that the request is
  rejected with ``code="queue_full"``.
* **structured rejections** -- every rejection carries the same shape,
  ``{"ok": false, "busy": true, "code": ..., "retry_after": ...,
  "error": ...}`` (:func:`rejection_response`), used verbatim by the
  socket protocol and mapped to ``429 Too Many Requests`` plus a
  ``Retry-After`` header by the HTTP layer
  (:mod:`repro.verifier.http`).  ``retry_after`` is an estimate from an
  EWMA of recent engine-op service times.

The controller wraps (it does not replace) a plain :class:`threading.Lock`
guarding the engine: the winner of admission holds that lock until
:meth:`~AdmissionController.release`.  Waiters poll the lock rather than
rely exclusively on hand-off, so code that grabs the raw lock directly
(tests, the daemon's own shutdown path) cannot strand the queue.
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import deque
from dataclasses import dataclass

__all__ = [
    "PRIORITY_LANES",
    "REJECTION_CODES",
    "TokenBucket",
    "AdmissionDecision",
    "AdmissionController",
    "rejection_response",
]

#: The priority classes, highest first.  A lower lane's waiters are only
#: served while every higher lane is empty.
PRIORITY_LANES = ("interactive", "batch")

#: Every ``code`` a rejection can carry, for the docs drift check and the
#: HTTP status mapping (all three are answered 429 over HTTP).
REJECTION_CODES = ("busy", "queue_full", "rate_limited")

#: How often a queued waiter re-checks the engine lock.  Hand-off via the
#: condition variable is the fast path; the poll is the safety net against
#: direct lock users.
_QUEUE_POLL = 0.05

#: Fallback service-time estimate (seconds) before any engine op has been
#: measured; only feeds ``retry_after`` hints, never admission itself.
_DEFAULT_SERVICE_TIME = 1.0


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``take`` consumes one token and returns 0.0, or returns the time (in
    seconds) until the next token becomes available without consuming
    anything.  The clock is injectable so refill timing is testable
    without sleeping.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        if rate <= 0:
            raise ValueError("token bucket rate must be positive")
        self.rate = float(rate)
        self.burst = max(1.0, float(burst))
        self._clock = clock
        self.tokens = self.burst
        self._last = clock()

    def take(self) -> float:
        now = self._clock()
        self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
        self._last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one :meth:`AdmissionController.admit` call.

    ``admitted`` means the caller now holds the engine slot and must call
    :meth:`AdmissionController.release` when done.  Otherwise ``code`` is
    one of :data:`REJECTION_CODES` and ``retry_after`` a best-effort hint
    in seconds.
    """

    admitted: bool
    code: str | None = None
    retry_after: float = 0.0
    message: str = ""


def rejection_response(decision: AdmissionDecision) -> dict:
    """The one structured error shape both transports answer with.

    ``busy`` stays ``True`` for every rejection flavour so pre-admission
    clients (which only knew the busy bit) keep working; new clients
    switch on ``code`` and honour ``retry_after``.
    """
    return {
        "ok": False,
        "busy": True,
        "code": decision.code,
        "retry_after": round(decision.retry_after, 3),
        "error": decision.message,
    }


class _Ticket:
    __slots__ = ("lane",)

    def __init__(self, lane: str) -> None:
        self.lane = lane


class AdmissionController:
    """Bounded, prioritized, rate-limited admission to one engine slot.

    ``queue_limit`` bounds the number of *waiting* requests (the running
    one is not counted).  ``rate`` / ``burst`` configure the per-client
    token buckets (``rate=None`` disables rate limiting).  ``clock`` is
    injectable for tests.
    """

    def __init__(
        self,
        queue_limit: int = 16,
        rate: float | None = None,
        burst: float | None = None,
        clock=time.monotonic,
    ) -> None:
        self.queue_limit = max(0, int(queue_limit))
        self.rate = rate
        self.burst = float(burst) if burst is not None else None
        self._clock = clock
        self.lock = threading.Lock()
        self._cond = threading.Condition()
        self._lanes: dict[str, deque[_Ticket]] = {
            lane: deque() for lane in PRIORITY_LANES
        }
        self._buckets: dict[str, TokenBucket] = {}
        self._running_since: float | None = None
        self._service_ewma: float | None = None
        self.admitted_total = 0
        self.rejected: dict[str, int] = {code: 0 for code in REJECTION_CODES}
        self.peak_depth = 0

    # -- admission ---------------------------------------------------------------

    def admit(
        self,
        client: str = "",
        priority: str = "interactive",
        nowait: bool = False,
    ) -> AdmissionDecision:
        """Try to claim the engine slot for ``client`` at ``priority``.

        Blocks while queued (unless ``nowait``); returns an admitted
        decision once the slot is held, or a rejection that never blocked.
        ``priority`` must be one of :data:`PRIORITY_LANES` -- the caller
        validates user input; this method trusts it.
        """
        with self._cond:
            wait = self._take_token(client)
            if wait > 0.0:
                self.rejected["rate_limited"] += 1
                return AdmissionDecision(
                    False,
                    code="rate_limited",
                    retry_after=wait,
                    message=(
                        f"client {client or 'anonymous'!r} exceeded its "
                        f"request rate; retry in {wait:.2f}s"
                    ),
                )
            if not self._waiting() and self.lock.acquire(blocking=False):
                return self._grant()
            if nowait:
                estimate = self._remaining_estimate()
                self.rejected["busy"] += 1
                return AdmissionDecision(
                    False,
                    code="busy",
                    retry_after=estimate,
                    message=(
                        "daemon busy: the engine is serving another request "
                        f"(retry in ~{estimate:.2f}s, or drop 'nowait' to queue)"
                    ),
                )
            depth = self._waiting()
            if depth >= self.queue_limit:
                estimate = (depth + 1) * self._service_estimate()
                self.rejected["queue_full"] += 1
                return AdmissionDecision(
                    False,
                    code="queue_full",
                    retry_after=estimate,
                    message=(
                        f"daemon overloaded: admission queue is full "
                        f"({depth} waiting); retry in ~{estimate:.2f}s"
                    ),
                )
            ticket = _Ticket(priority)
            self._lanes[priority].append(ticket)
            self.peak_depth = max(self.peak_depth, self._waiting())
            try:
                while True:
                    if self._head() is ticket and self.lock.acquire(blocking=False):
                        self._lanes[priority].popleft()
                        return self._grant()
                    self._cond.wait(_QUEUE_POLL)
            except BaseException:
                # A waiter dying (interpreter shutdown, injected test
                # failure) must not leave a ghost ticket at the head of
                # its lane, wedging every later request.
                self._lanes[priority].remove(ticket)
                self._cond.notify_all()
                raise

    def release(self) -> None:
        """Give the engine slot back and wake the next waiter (if any)."""
        with self._cond:
            if self._running_since is not None:
                elapsed = self._clock() - self._running_since
                self._running_since = None
                if self._service_ewma is None:
                    self._service_ewma = elapsed
                else:
                    self._service_ewma += 0.3 * (elapsed - self._service_ewma)
            self.lock.release()
            self._cond.notify_all()

    @contextlib.contextmanager
    def exclusive(self):
        """Internal blocking access to the engine slot (shutdown paths).

        Queues like an interactive request but bypasses the queue bound
        and rate limits -- teardown must never be load-shed.
        """
        with self._cond:
            ticket = _Ticket("interactive")
            self._lanes["interactive"].append(ticket)
            try:
                while True:
                    if self._head() is ticket and self.lock.acquire(blocking=False):
                        self._lanes["interactive"].popleft()
                        self._grant()
                        break
                    self._cond.wait(_QUEUE_POLL)
            except BaseException:
                self._lanes["interactive"].remove(ticket)
                self._cond.notify_all()
                raise
        try:
            yield
        finally:
            self.release()

    # -- observability ------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready admission state for the daemon's ``metrics`` op."""
        with self._cond:
            return {
                "queue_limit": self.queue_limit,
                "queued": {
                    lane: len(queue) for lane, queue in self._lanes.items()
                },
                "busy": self.lock.locked(),
                "admitted": self.admitted_total,
                "rejected": dict(self.rejected),
                "peak_depth": self.peak_depth,
                "service_ewma": round(self._service_estimate(), 6),
                "rate": self.rate,
                "burst": self.burst,
                "clients": {
                    client: round(bucket.tokens, 3)
                    for client, bucket in self._buckets.items()
                },
            }

    # -- internals ---------------------------------------------------------------

    def _take_token(self, client: str) -> float:
        if self.rate is None:
            return 0.0
        bucket = self._buckets.get(client)
        if bucket is None:
            if len(self._buckets) > 4096:
                # A client-id churn attack must not grow the table without
                # bound; refilled-to-burst buckets lose nothing by eviction.
                self._buckets.clear()
            burst = self.burst if self.burst is not None else max(1.0, self.rate)
            bucket = TokenBucket(self.rate, burst, clock=self._clock)
            self._buckets[client] = bucket
        return bucket.take()

    def _waiting(self) -> int:
        return sum(len(queue) for queue in self._lanes.values())

    def _head(self) -> _Ticket | None:
        for lane in PRIORITY_LANES:
            if self._lanes[lane]:
                return self._lanes[lane][0]
        return None

    def _grant(self) -> AdmissionDecision:
        self._running_since = self._clock()
        self.admitted_total += 1
        return AdmissionDecision(True)

    def _service_estimate(self) -> float:
        return (
            self._service_ewma
            if self._service_ewma is not None
            else _DEFAULT_SERVICE_TIME
        )

    def _remaining_estimate(self) -> float:
        estimate = self._service_estimate()
        if self._running_since is not None:
            estimate -= self._clock() - self._running_since
        return max(0.1, estimate)
