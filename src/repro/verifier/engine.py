"""The end-to-end verification engine.

For each method of a class model the engine

1. lowers the method (contracts, invariants, proof annotations) into an
   extended guarded command (:mod:`repro.frontend.lower`),
2. desugars it into simple guarded commands (Figures 6 and 8),
3. generates and splits sequents (Figure 7, :mod:`repro.vcgen`),
4. offers every sequent to the prover portfolio with per-prover timeouts,
   honouring ``from``-clause assumption selection.

The per-method and per-class reports carry everything the paper's Tables 1
and 2 need: sequent counts, proved counts, verification time and the prover
that discharged each sequent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from ..frontend.ast import ClassModel, Method
from ..frontend.lower import lower_method
from ..gcl.desugar import Desugarer
from ..provers.cache import PersistentCacheStore, ProofCache, task_fingerprint
from ..provers.dispatch import (
    DispatchResult,
    PortfolioSpec,
    ProverPortfolio,
    default_portfolio,
)
from ..provers.result import ProofTask
from ..vcgen.assumptions import relevance_filter
from ..vcgen.sequent import Sequent
from ..vcgen.vcgen import VcGenerator
from .costmodel import CostModel
from .incremental import DependencyIndex, record_from_report, record_from_slots
from .strip import strip_proofs_from_class

__all__ = [
    "SequentOutcome",
    "MethodReport",
    "ClassReport",
    "PlanEntry",
    "ClassPlan",
    "VerificationEngine",
]


@dataclass
class SequentOutcome:
    """One sequent together with the dispatcher's verdict."""

    sequent: Sequent
    dispatch: DispatchResult

    @property
    def proved(self) -> bool:
        return self.dispatch.proved

    @property
    def prover(self) -> str:
        return self.dispatch.winning_prover


@dataclass
class MethodReport:
    """Verification results for one method."""

    class_name: str
    method_name: str
    outcomes: list[SequentOutcome] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def sequents_total(self) -> int:
        return len(self.outcomes)

    @property
    def sequents_proved(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.proved)

    @property
    def verified(self) -> bool:
        return self.sequents_proved == self.sequents_total

    @property
    def failed_sequents(self) -> list[SequentOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.proved]

    @property
    def provers_used(self) -> dict[str, int]:
        used: dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.proved:
                used[outcome.prover] = used.get(outcome.prover, 0) + 1
        return used


@dataclass
class ClassReport:
    """Verification results for a whole data structure."""

    class_name: str
    methods: list[MethodReport] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        return sum(report.elapsed for report in self.methods)

    @property
    def methods_total(self) -> int:
        return len(self.methods)

    @property
    def methods_verified(self) -> int:
        return sum(1 for report in self.methods if report.verified)

    @property
    def sequents_total(self) -> int:
        return sum(report.sequents_total for report in self.methods)

    @property
    def sequents_proved(self) -> int:
        return sum(report.sequents_proved for report in self.methods)

    @property
    def verified(self) -> bool:
        return all(report.verified for report in self.methods)

    @property
    def provers_used(self) -> dict[str, int]:
        used: dict[str, int] = {}
        for report in self.methods:
            for name, count in report.provers_used.items():
                used[name] = used.get(name, 0) + count
        return used


@dataclass(frozen=True)
class PlanEntry:
    """One sequent of a verification plan.

    The plan's unit of identity is the (class, method, fingerprint)
    triple: the fingerprint is the alpha-normalized cache identity of the
    sequent's proof task, so two plans can be diffed without comparing
    terms.  ``dispatch`` marks the sequents the cache could not answer --
    the ones execution will actually send to the provers.
    """

    class_name: str
    method_name: str
    fingerprint: tuple
    dispatch: bool


@dataclass
class ClassPlan:
    """The planned (but not yet executed) verification of one class.

    Produced by :meth:`VerificationEngine.plan_class_run`: sequent
    generation, cache consults and fingerprint dedup have happened (in
    deterministic sequential order -- planning *is* the cache-authority
    phase), but nothing has been dispatched.  Feed it to
    :meth:`VerificationEngine.execute_class_plan` to run the provers on
    the surviving shard and assemble the report.
    """

    target: ClassModel
    slots: list = field(default_factory=list)
    shard: list = field(default_factory=list)
    stats: object = None
    entries: list[PlanEntry] = field(default_factory=list)
    #: Whether execution should record the class's dependency record
    #: (False for strip-proofs ablation runs, whose stripped bodies must
    #: not overwrite the real program's record).
    record_index: bool = True

    @property
    def dispatch_count(self) -> int:
        return len(self.shard)


class VerificationEngine:
    """Drives lowering, VC generation and prover dispatch.

    ``jobs`` > 1 shards prover dispatch across that many worker processes
    (:mod:`repro.verifier.parallel`); verdicts stay identical to the
    sequential path.  ``cache_dir`` attaches a persistent
    :class:`~repro.provers.cache.PersistentCacheStore` keyed by the
    portfolio configuration: verdicts are loaded at start-up and -- unless
    ``persist`` is False -- written back atomically after every
    :meth:`verify_class`, so repeated runs of an unchanged suite are
    answered almost entirely from disk.

    ``keep_pool_warm`` keeps the worker pool alive between verification
    calls (the daemon, :mod:`repro.verifier.daemon`, sets it so repeat
    requests skip pool start-up); without it each parallel run tears its
    pool down afterwards, as before.  Engines are context managers:
    leaving the ``with`` block calls :meth:`close`, which flushes the
    persistent cache and shuts any warm pool down.

    ``workers`` switches the dispatch backend from the in-process pool to
    **distributed workers** (:mod:`repro.verifier.remote`): a list (or
    comma-separated string) of ``HOST:PORT`` addresses of listening
    ``jahob-py worker`` processes, authenticated with ``worker_secret``.
    ``worker_registry`` additionally (or instead) supplies workers that
    registered with a coordinator-side
    :class:`~repro.verifier.remote.WorkerRegistry`.  The parent keeps all
    cache authority either way, so verdicts stay bit-identical to
    sequential runs.
    """

    def __init__(
        self,
        portfolio: ProverPortfolio | None = None,
        apply_from_clauses: bool = True,
        use_relevance_filter: bool = True,
        runtime_checks: bool = True,
        use_proof_cache: bool = True,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        persist: bool = True,
        keep_pool_warm: bool = False,
        workers: list[str] | tuple[str, ...] | str | None = None,
        worker_secret: bytes | None = None,
        worker_registry=None,
    ) -> None:
        if portfolio is None:
            portfolio = default_portfolio(with_cache=use_proof_cache)
        elif use_proof_cache and portfolio.proof_cache is None:
            # Wrap instead of mutating: the caller's portfolio object (and
            # its statistics) stays untouched.
            portfolio = ProverPortfolio(portfolio.entries, ProofCache())
        elif not use_proof_cache and portfolio.proof_cache is not None:
            portfolio = ProverPortfolio(portfolio.entries, None)
        self.portfolio = portfolio
        self.use_proof_cache = use_proof_cache
        self.apply_from_clauses = apply_from_clauses
        self.use_relevance_filter = use_relevance_filter
        self.runtime_checks = runtime_checks
        if isinstance(workers, str):
            workers = [piece.strip() for piece in workers.split(",") if piece.strip()]
        self.remote_workers: tuple[str, ...] = tuple(workers) if workers else ()
        self.worker_secret = worker_secret
        self.worker_registry = worker_registry
        jobs = max(1, int(jobs))
        if self.uses_remote_workers:
            # The effective parallelism of a remote engine is its worker
            # count; ``jobs`` survives only as the statistics label.
            jobs = max(
                jobs,
                len(self.remote_workers) + (1 if worker_registry is not None else 0),
            )
        self.jobs = jobs
        self.persist = persist
        self.keep_pool_warm = keep_pool_warm
        self.persistent_store: PersistentCacheStore | None = None
        #: :class:`~repro.verifier.parallel.ParallelRunStats` of the most
        #: recent parallel ``verify_class`` call (None after sequential runs).
        self.last_parallel_stats = None
        #: Aggregate of every parallel run this engine performed.
        self.parallel_stats_total = None
        #: :class:`~repro.verifier.scheduler.SuiteRunStats` of the most
        #: recent :meth:`verify_suite` call.
        self.last_suite_stats = None
        self._pool = None
        self._flushed_mutations = 0
        self._flushed_profile_mutations = 0
        self._flushed_dependency_mutations = 0
        #: :class:`~repro.verifier.incremental.IncrementalRunStats` of the
        #: most recent :meth:`verify_class_incremental` call.
        self.last_incremental_stats = None
        #: Measured cost profiles feeding the suite scheduler's adaptive
        #: planning and the daemon's ``metrics`` op.
        self.cost_model = CostModel()
        #: Per-class dependency records mapping source artifacts to the
        #: sequent fingerprints they produce (incremental verification).
        self.dependency_index = DependencyIndex()
        if cache_dir is not None and self.portfolio.proof_cache is not None:
            spec = PortfolioSpec.from_portfolio(self.portfolio)
            self.persistent_store = PersistentCacheStore(cache_dir, spec.cache_key)
            entries = self.persistent_store.load()
            self.portfolio.proof_cache.preload(entries)
            # The cost model sees *every* persisted timing, including the
            # tail the preload cap keeps out of the verdict cache.
            self.cost_model.ingest_entries(entries)
            self.cost_model.ingest_profiles(self.persistent_store.last_profiles)
            self.dependency_index = DependencyIndex(
                self.persistent_store.last_dependencies
            )

    # -- sequent generation ------------------------------------------------------

    def method_sequents(self, cls: ClassModel, method: Method) -> list[Sequent]:
        """All (non-trivially-discharged) sequents of one method."""
        lowering = lower_method(cls, method, runtime_checks=self.runtime_checks)
        used: set[str] = {sv.name for sv in cls.state}
        used |= {var.name for var in method.params}
        used |= {var.name for var in method.locals}
        if method.return_var is not None:
            used.add(method.return_var.name)
        desugarer = Desugarer(used)
        simple = desugarer.desugar(lowering.command)
        generator = VcGenerator()
        return generator.generate(simple, post=None)

    def task_for(self, sequent: Sequent) -> ProofTask:
        """The proof task the portfolio receives for ``sequent``.

        Applies the engine's ``from``-clause and relevance-filter policy;
        the sequential and parallel paths share this so both dispatch
        byte-identical tasks.
        """
        task = sequent.to_task(apply_from_clause=self.apply_from_clauses)
        if self.use_relevance_filter and not (
            self.apply_from_clauses and sequent.from_hints
        ):
            task = relevance_filter(task)
        return task

    # -- plan / execute ---------------------------------------------------------------

    def plan_class_run(self, cls: ClassModel, strip_proofs: bool = False) -> ClassPlan:
        """Phase 1: plan ``cls``'s verification without dispatching.

        Generates every sequent in deterministic sequential order, answers
        cache hits, folds fingerprint duplicates, and returns a
        :class:`ClassPlan` whose ``entries`` are the run's (class, method,
        fingerprint) triples -- ``dispatch=True`` for the unique misses
        execution will actually prove.  Hand the plan to
        :meth:`execute_class_plan`.
        """
        from .parallel import ParallelRunStats, plan_class

        target = strip_proofs_from_class(cls) if strip_proofs else cls
        stats = ParallelRunStats(jobs=self.jobs)
        shard: list = []
        pending_by_key: dict[tuple, int] = {}
        slots = plan_class(self, target, shard, pending_by_key, stats)
        entries = [
            PlanEntry(
                class_name=target.name,
                method_name=target.methods[slot.method_index].name,
                fingerprint=task_fingerprint(slot.task),
                dispatch=slot.shard_index is not None,
            )
            for slot in slots
        ]
        return ClassPlan(
            target=target,
            slots=slots,
            shard=shard,
            stats=stats,
            entries=entries,
            record_index=not strip_proofs,
        )

    def execute_class_plan(self, plan: ClassPlan, jobs: int | None = None):
        """Phases 2--3: dispatch a plan's shard and assemble the report.

        Returns ``(ClassReport, ParallelRunStats)``.  Dispatch goes
        through the shared :mod:`repro.verifier.parallel` phases (pool or
        in-parent for ``jobs <= 1``), the merge replays verdicts in
        deterministic shard order, and -- unless the plan opted out -- the
        class's dependency record is refreshed for future incremental
        runs.
        """
        from .parallel import (
            build_class_report,
            resolve_duplicates,
            resolve_shard,
            run_shard,
        )

        jobs = self.jobs if jobs is None else max(1, int(jobs))
        stats = plan.stats
        stats.jobs = jobs
        stats.dispatched = len(plan.shard)
        results = run_shard(self, plan.shard, jobs, stats)
        resolve_shard(self.portfolio, plan.shard, results)
        resolve_duplicates(self.portfolio, plan.slots, results)
        for slot in plan.shard:
            self.observe_timing(plan.target.name, slot.key, results[slot.shard_index])
        self.cost_model.reprofile(
            plan.target.name, [slot.key for slot in plan.slots]
        )
        if plan.record_index:
            self.record_dependencies(plan.target, plan.slots)
        return build_class_report(plan.target, plan.slots), stats

    def record_dependencies(self, target: ClassModel, slots) -> None:
        """Refresh ``target``'s dependency record from a full run's slots."""
        if self.portfolio.proof_cache is None:
            return
        self.dependency_index.record(
            target.name, record_from_slots(self, target, slots)
        )

    # -- verification ---------------------------------------------------------------

    def verify_method(self, cls: ClassModel, method: Method) -> MethodReport:
        """Verify one method, dispatching every sequent to the portfolio."""
        start = time.monotonic()
        report = MethodReport(cls.name, method.name)
        cache = self.portfolio.proof_cache
        for sequent in self.method_sequents(cls, method):
            task = self.task_for(sequent)
            dispatch = self.portfolio.dispatch(task)
            report.outcomes.append(SequentOutcome(sequent, dispatch))
            if not dispatch.cached:
                # key() re-fingerprints, but fingerprints are memoized so
                # this is a dict lookup, not a traversal.
                key = cache.key(task) if cache is not None else None
                self.observe_timing(cls.name, key, dispatch)
        report.elapsed = time.monotonic() - start
        return report

    def verify_class(
        self,
        cls: ClassModel,
        strip_proofs: bool = False,
        parallel: int | None = None,
    ) -> ClassReport:
        """Verify every method of ``cls``.

        With ``strip_proofs`` the integrated proof language constructs are
        removed first (the Table 2 ablation).  ``parallel`` overrides the
        engine's ``jobs`` setting for this call; any value > 1 shards
        dispatch across worker processes with verdicts identical to the
        sequential path.

        The portfolio's sequent-level proof cache stays warm across the
        whole run: the near-duplicate split sequents of one method, the
        shared invariant obligations of sibling methods, and (for Table 2)
        the unchanged sequents of the stripped/annotated pair are each
        dispatched to the provers only once.
        """
        jobs = self.jobs if parallel is None else max(1, int(parallel))
        if jobs > 1 or self.uses_remote_workers:
            plan = self.plan_class_run(cls, strip_proofs=strip_proofs)
            report, run_stats = self.execute_class_plan(plan, jobs=jobs)
            self.last_parallel_stats = run_stats
            if self.parallel_stats_total is None:
                from .parallel import ParallelRunStats

                self.parallel_stats_total = ParallelRunStats(jobs=jobs)
            self.parallel_stats_total.merge(run_stats)
        else:
            target = strip_proofs_from_class(cls) if strip_proofs else cls
            report = ClassReport(cls.name)
            for method in target.methods:
                report.methods.append(self.verify_method(target, method))
            self.last_parallel_stats = None
            cache = self.portfolio.proof_cache
            if cache is not None:
                # Same ground-truth profile rebuild the scheduled paths
                # do; the dispatched tasks ride in the report, so no
                # sequent regeneration is needed.
                self.cost_model.reprofile(
                    target.name,
                    [
                        cache.key(outcome.dispatch.task)
                        for method_report in report.methods
                        for outcome in method_report.outcomes
                    ],
                )
                if not strip_proofs:
                    self.dependency_index.record(
                        target.name, record_from_report(self, target, report)
                    )
        self.last_suite_stats = None
        self.flush_persistent_cache()
        return report

    def verify_class_incremental(
        self, cls: ClassModel, jobs: int | None = None
    ):
        """Re-verify ``cls`` against its dependency record.

        Returns ``(ClassReport,
        :class:`~repro.verifier.incremental.IncrementalRunStats`)``.
        Methods whose artifacts are unchanged resolve from the index
        without sequent regeneration; changed methods re-plan, and only
        fingerprints absent from the record (the *dirty* set) can reach
        the provers.  Verdicts are identical to a full
        :meth:`verify_class` of the same class.
        """
        from .incremental import verify_class_incremental as _verify_incremental

        report, stats = _verify_incremental(self, cls, jobs=jobs)
        self.last_incremental_stats = stats
        self.last_parallel_stats = None
        self.last_suite_stats = None
        self.flush_persistent_cache()
        return report, stats

    def verify_suite(
        self,
        classes: list[ClassModel] | None = None,
        jobs: int | None = None,
    ) -> list["ClassReport"]:
        """Verify several classes as one scheduled job graph.

        Plans the whole suite up front and interleaves every class's
        cache-missing sequents across one worker pool, longest class first
        (:mod:`repro.verifier.scheduler`).  ``classes`` defaults to the
        full benchmark catalogue; ``jobs`` overrides the engine setting.
        Returns one :class:`ClassReport` per class, in input order, with
        verdicts, attribution and counters identical to calling
        :meth:`verify_class` on each class in that order.
        """
        from .scheduler import verify_suite as _verify_suite

        if classes is None:
            from ..suite.catalog import all_structures

            classes = all_structures()
        jobs = self.jobs if jobs is None else max(1, int(jobs))
        reports, run_stats = _verify_suite(self, classes, jobs)
        self.last_suite_stats = run_stats
        self.last_parallel_stats = None
        self.flush_persistent_cache()
        return reports

    # -- worker-pool management -----------------------------------------------------

    @property
    def uses_remote_workers(self) -> bool:
        """Whether dispatch goes to distributed workers instead of an
        in-process pool."""
        return bool(self.remote_workers) or self.worker_registry is not None

    def _new_pool(self, spec, jobs: int, shard_size: int | None):
        """Build a fresh :class:`~repro.verifier.parallel.WorkerBackend`
        for ``spec``: remote when workers are configured, the in-process
        pool otherwise."""
        if self.uses_remote_workers:
            from .remote import RemoteWorkerPool

            return RemoteWorkerPool(
                spec,
                self.remote_workers,
                registry=self.worker_registry,
                secret=self.worker_secret,
            )
        from .parallel import ProverPool

        if shard_size is not None:
            jobs = min(jobs, shard_size)
        return ProverPool(spec, jobs)

    def acquire_pool(self, spec, jobs: int, shard_size: int | None = None):
        """A :class:`~repro.verifier.parallel.WorkerBackend` for one run.

        With ``keep_pool_warm`` the engine caches the backend and hands
        the same (possibly already started) instance back for every
        matching run; otherwise a fresh per-run backend is returned --
        in-process pools sized down to ``shard_size`` so small shards
        don't fork idle workers.  Pass the backend to
        :meth:`release_pool` when the run is done.
        """
        if self.keep_pool_warm:
            if self._pool is not None and not self._pool.matches(spec, jobs):
                self._pool.close()
                self._pool = None
            if self._pool is None:
                self._pool = self._new_pool(spec, jobs, None)
            return self._pool
        return self._new_pool(spec, jobs, shard_size)

    @property
    def pool_warm(self) -> bool:
        """Whether a warm worker pool is currently forked."""
        return self._pool is not None and self._pool.started

    def worker_metrics(self) -> list[dict]:
        """Per-worker latency metrics of the current warm pool (empty for
        in-process pools, whose workers answer through a local pipe)."""
        metrics = getattr(self._pool, "worker_metrics", None)
        return metrics() if metrics is not None else []

    def warm_pool(self) -> None:
        """Fork the warm worker pool up front.

        The daemon calls this before it starts accepting connections, so
        no worker is ever forked while a request (whose connection fd the
        fork would inherit) is in flight, and no request pays pool
        start-up.  No-op for sequential engines or without
        ``keep_pool_warm``.
        """
        if self.jobs <= 1 and not self.uses_remote_workers:
            return
        if not self.keep_pool_warm or self.pool_warm:
            return
        spec = PortfolioSpec.from_portfolio(self.portfolio)
        self.acquire_pool(spec, self.jobs).warm_up()

    def release_pool(self, pool, broken: bool = False) -> None:
        """Close ``pool`` unless it is the engine's (healthy) warm pool.

        ``broken`` forces the close even for the warm pool -- a dead
        executor must be discarded so the next run forks a fresh one
        instead of failing forever.
        """
        if pool is self._pool:
            if not broken:
                return
            self._pool = None
        pool.close(cancel_futures=broken)

    def close(self) -> None:
        """Flush the persistent cache and shut down any warm worker pool."""
        self.flush_persistent_cache()
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "VerificationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- multi-tenancy ----------------------------------------------------------------

    def set_cache_namespace(self, tenant: str) -> None:
        """Scope proof-cache keys to ``tenant`` until the next call.

        The daemon brackets every engine op with this (set to the
        authenticated client id, reset to ``""`` afterwards) so tenants of
        one warm daemon cannot read or poison each other's verdicts.  The
        engine serializes engine ops externally (the daemon's admission
        controller), so flipping the namespace between ops is race-free.
        """
        cache = self.portfolio.proof_cache
        if cache is not None:
            cache.namespace = tenant or ""

    # -- cost model ------------------------------------------------------------------

    def observe_timing(self, class_name: str, key, result) -> None:
        """Fold one actually-dispatched sequent's measured cost into the
        cost model (cache hits carry no new timing and are ignored)."""
        if result.cached:
            return
        self.cost_model.observe(class_name, key, result.wall, result.elapsed)

    # -- persistence ---------------------------------------------------------------

    def flush_persistent_cache(self) -> int:
        """Write the in-memory proof cache back to the persistent store.

        No-op (returning 0) without a store, with ``persist`` disabled, or
        when no new verdict was learned since the last flush; otherwise
        returns the number of entries now on disk.  The cost model's
        per-class profiles ride along with every flush.
        """
        cache = self.portfolio.proof_cache
        if self.persistent_store is None or not self.persist or cache is None:
            return 0
        # Profiles mutate *after* the run's last verdict checkpoint, so
        # they need their own dirtiness check: a suite whose dispatch
        # count is an exact multiple of the checkpoint interval would
        # otherwise leave the final flush with nothing-new verdicts and
        # silently drop the run's profiles.
        if (
            cache.mutations == self._flushed_mutations
            and self.cost_model.mutations == self._flushed_profile_mutations
            and self.dependency_index.mutations == self._flushed_dependency_mutations
        ):
            return 0
        self._flushed_mutations = cache.mutations
        self._flushed_profile_mutations = self.cost_model.mutations
        self._flushed_dependency_mutations = self.dependency_index.mutations
        return self.persistent_store.save(
            cache.snapshot(),
            profiles=self.cost_model.profiles_snapshot(),
            dependencies=self.dependency_index.snapshot(),
        )
