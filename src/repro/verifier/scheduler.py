"""Suite-level verification scheduler.

PR 2 parallelized dispatch *within* one class: each ``verify_class`` call
plans its own shard and its stragglers still serialize the end of a
whole-catalogue run (the worker pool drains while the next class has not
even been planned yet).  This module plans the **entire suite as one job
graph**:

1. every class is decomposed into sequent shards up front, in the exact
   catalogue/method/sequent order the per-class sequential path uses --
   cache consults and fingerprint dedup are resolved parent-side in that
   deterministic order (:func:`~repro.verifier.parallel.plan_class` with a
   suite-wide shard and pending map), so verdicts, prover attribution and
   cache counters stay bit-identical to per-class sequential runs;
2. the surviving unique misses of *all* classes are interleaved across the
   existing worker pool in **longest-class-first** order.  Class cost
   comes from the engine's :class:`~repro.verifier.costmodel.CostModel`
   -- measured per-sequent profiles where the warm persistent store (or
   this process) has timings, persisted per-class profiles next, then the
   static :data:`repro.suite.catalog.CLASS_COST_HINTS` table, and only
   then :data:`~repro.suite.catalog.DEFAULT_COST_HINT`; each class's
   :class:`ClassScheduleStats` records which source won.  Within a class,
   sequents with measured timings dispatch longest-first ahead of
   unmeasured ones (which keep their sequential order);
3. the merge replays verdicts in deterministic shard order and assembles
   one :class:`~repro.verifier.engine.ClassReport` per class, in the input
   order.

Dispatch *order* is a pure scheduling choice: results are merged by shard
index, and per-sequent timeouts are per-process CPU budgets
(:class:`~repro.provers.result.Budget`), so reordering cannot flip a
verdict.  The differential harness
(``tests/verifier/test_scheduler_differential.py``) pins this down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend.ast import ClassModel
from ..suite.catalog import cost_hint
from .costmodel import HINT_STATIC, CostModel
from .parallel import (
    ParallelRunStats,
    _Slot,
    build_class_report,
    plan_class,
    resolve_duplicates,
    resolve_shard,
    run_shard,
)

__all__ = [
    "ClassScheduleStats",
    "SuitePlan",
    "SuiteRunStats",
    "plan_dispatch_order",
    "plan_suite",
    "execute_suite",
    "verify_suite",
]

#: Flush newly arrived verdicts to the persistent store every this many
#: results during a suite run (merge-saves are cheap but not free).
_CHECKPOINT_EVERY = 32


@dataclass
class ClassScheduleStats:
    """One class's share of a suite-scheduled run.

    ``hint_source`` names which rung of the cost model's fallback chain
    produced ``cost_hint`` (``measured`` / ``profile`` / ``static`` /
    ``default`` -- see :mod:`repro.verifier.costmodel`), so a warm run's
    plan visibly derives from measured profiles.
    """

    class_name: str
    cost_hint: float
    sequents: int = 0
    dispatched: int = 0
    hits_memory: int = 0
    hits_disk: int = 0
    duplicates_folded: int = 0
    hint_source: str = HINT_STATIC


@dataclass
class SuiteRunStats(ParallelRunStats):
    """Scheduling statistics of one :func:`verify_suite` run.

    Extends the per-run counters of :class:`ParallelRunStats` with the
    per-class breakdown and the longest-class-first dispatch order that
    was actually used.
    """

    classes: list[ClassScheduleStats] = field(default_factory=list)
    schedule_order: list[str] = field(default_factory=list)


def plan_dispatch_order(
    classes: list[ClassModel], costs: list[float] | None = None
) -> list[int]:
    """Class indices in dispatch order: descending cost, ties by input
    (catalogue) order.  Pure and deterministic.

    ``costs`` are the per-class costs to sort by (the suite scheduler
    passes the cost model's measured-first numbers); without them the
    static catalogue hints are used.
    """
    if costs is None:
        costs = [cost_hint(cls.name) for cls in classes]
    return sorted(
        range(len(classes)),
        key=lambda index: (-costs[index], index),
    )


@dataclass
class SuitePlan:
    """The planned (but not yet executed) verification of a whole suite.

    Produced by :func:`plan_suite`: every class's sequents are generated
    and cache-consulted in deterministic catalogue order, with the shard
    and fingerprint-dedup map spanning the whole suite.  Feed it to
    :func:`execute_suite` to dispatch the shard and assemble the reports.
    """

    classes: list[ClassModel] = field(default_factory=list)
    planned: list[tuple[ClassModel, list[_Slot]]] = field(default_factory=list)
    shard: list[_Slot] = field(default_factory=list)
    shard_ranges: list[tuple[int, int]] = field(default_factory=list)
    stats: SuiteRunStats = None


def plan_suite(engine, classes: list[ClassModel], jobs: int = 1) -> SuitePlan:
    """Phase 1: plan every class against the (shared) cache, in catalogue
    order -- this is the deterministic cache-authority order.

    The shard and the pending-duplicate map span the whole suite, so a
    sequent repeated across classes is proved once and its later
    occurrences resolve as the memory cache hits a sequential engine
    would see.
    """
    cost_model: CostModel = getattr(engine, "cost_model", None) or CostModel()
    stats = SuiteRunStats(jobs=jobs)
    shard: list[_Slot] = []
    pending_by_key: dict[tuple, int] = {}
    planned: list[tuple[ClassModel, list[_Slot]]] = []
    shard_ranges: list[tuple[int, int]] = []
    for cls in classes:
        shard_start = len(shard)
        before = (stats.hits_memory, stats.hits_disk, stats.duplicates_folded)
        slots = plan_class(engine, cls, shard, pending_by_key, stats)
        planned.append((cls, slots))
        shard_ranges.append((shard_start, len(shard)))
        cost, source = cost_model.class_cost(cls.name, [slot.key for slot in slots])
        stats.classes.append(
            ClassScheduleStats(
                class_name=cls.name,
                cost_hint=cost,
                sequents=len(slots),
                dispatched=len(shard) - shard_start,
                hits_memory=stats.hits_memory - before[0],
                hits_disk=stats.hits_disk - before[1],
                duplicates_folded=stats.duplicates_folded - before[2],
                hint_source=source,
            )
        )
    stats.dispatched = len(shard)
    return SuitePlan(
        classes=classes,
        planned=planned,
        shard=shard,
        shard_ranges=shard_ranges,
        stats=stats,
    )


def verify_suite(engine, classes: list[ClassModel], jobs: int):
    """Verify ``classes`` as one scheduled job graph.

    Returns ``(reports, SuiteRunStats)`` with one
    :class:`~repro.verifier.engine.ClassReport` per class, in input order.
    Verdicts, attribution and portfolio counters are bit-identical to
    calling ``verify_class`` sequentially on the same engine for each
    class in the same order (the differential tests assert this for
    ``jobs`` in {1, 2, 4}).  Composes :func:`plan_suite` and
    :func:`execute_suite`.
    """
    return execute_suite(engine, plan_suite(engine, classes, jobs), jobs)


def execute_suite(engine, plan: SuitePlan, jobs: int):
    """Phases 2--3: dispatch a suite plan's shard and assemble reports."""
    portfolio = engine.portfolio
    cost_model: CostModel = getattr(engine, "cost_model", None) or CostModel()
    classes = plan.classes
    planned = plan.planned
    shard = plan.shard
    shard_ranges = plan.shard_ranges
    stats = plan.stats
    stats.jobs = jobs

    # Phase 2: interleave the whole suite's misses across the pool,
    # longest class first by measured-first cost.  What gates the run is
    # each class's *remaining* work, not its historical total -- a warm
    # class with one straggler must not lead a cold class's real load --
    # so the ordering cost is the class cost scaled by its dispatched
    # fraction.  Within a class, sequents with measured timings go
    # longest-first ahead of the unmeasured rest (which keep sequential
    # order); reordering dispatch is invisible in the results -- the
    # merge indexes by shard position.
    class_order = plan_dispatch_order(
        classes,
        costs=[
            entry.cost_hint * entry.dispatched / entry.sequents
            if entry.sequents
            else 0.0
            for entry in stats.classes
        ],
    )
    stats.schedule_order = [classes[index].name for index in class_order]

    def slot_rank(position: int):
        measured = cost_model.sequent_cost(shard[position].key)
        if measured is None:
            return (1, 0.0, position)
        return (0, -measured, position)

    order: list[int] = []
    for index in class_order:
        start, end = shard_ranges[index]
        order.extend(sorted(range(start, end), key=slot_rank))

    # Checkpoint verdicts to the persistent store as they arrive so an
    # interrupted multi-minute run keeps what it already proved (the
    # per-class path gets this for free from its per-class flushes).
    # Storing early cannot change any decision: every cache consult
    # already happened in phase 1, and the merge re-stores idempotently.
    arrivals = 0

    def checkpoint(slot, result):
        nonlocal arrivals
        portfolio.store_verdict(slot.key, result)
        arrivals += 1
        if arrivals % _CHECKPOINT_EVERY == 0:
            engine.flush_persistent_cache()

    results = run_shard(engine, shard, jobs, stats, order=order, on_result=checkpoint)

    # Phase 3: deterministic merge -- replay verdicts in shard order, then
    # resolve each class's folded duplicates and build its report in the
    # original input order.  The checkpoint callback already stored every
    # dispatched verdict, so the replay only does the accounting.
    resolve_shard(portfolio, shard, results, store=False)
    reports = []
    observe = getattr(engine, "observe_timing", None)
    record_dependencies = getattr(engine, "record_dependencies", None)
    for cls, slots in planned:
        resolve_duplicates(portfolio, slots, results)
        if observe is not None:
            for slot in slots:
                if slot.shard_index is not None:
                    observe(cls.name, slot.key, results[slot.shard_index])
            # The slots are the class's complete current fingerprint set:
            # rebuild the profile from ground truth instead of letting
            # increments drift across edits/evictions.
            cost_model.reprofile(cls.name, [slot.key for slot in slots])
        if record_dependencies is not None:
            record_dependencies(cls, slots)
        reports.append(build_class_report(cls, slots))
    return reports, stats
