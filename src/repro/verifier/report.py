"""Report generation: the paper's Table 1 and Table 2.

:func:`table1_rows` and :func:`table2_rows` compute the rows of the two
tables of Section 6 for a list of data structures; :func:`format_table`
renders them as aligned text.  The benchmark harness
(``benchmarks/bench_table1.py`` / ``bench_table2.py``) and the CLI both use
these functions, so the printed artifacts are identical in both paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend.ast import ClassModel
from .engine import ClassReport, VerificationEngine
from .stats import (
    TABLE1_CONSTRUCT_ORDER,
    PerformanceCounters,
    class_statistics,
    performance_counters,
)

__all__ = [
    "Table1Row",
    "Table2Row",
    "table1_rows",
    "table2_rows",
    "format_table1",
    "format_table2",
    "format_table",
    "format_performance",
    "format_parallel",
    "format_suite",
    "format_verify",
    "format_verify_file",
    "format_metrics",
    "format_loadgen",
    "format_watch_event",
]


@dataclass
class Table1Row:
    """One data structure's row of Table 1."""

    class_name: str
    methods: int
    statements: int
    verification_time: float
    spec_vars: int
    local_spec_vars: int
    invariants: int
    loop_invariants: int
    notes: int
    notes_with_from: int
    construct_counts: dict[str, int] = field(default_factory=dict)
    verified: bool = True

    def cells(self) -> list[str]:
        row = [
            self.class_name,
            str(self.methods),
            str(self.statements),
            f"{self.verification_time:.1f}",
            str(self.spec_vars),
            str(self.local_spec_vars),
            str(self.invariants),
            str(self.loop_invariants),
            f"{self.notes} ({self.notes_with_from})",
        ]
        for name in TABLE1_CONSTRUCT_ORDER[1:]:
            row.append(str(self.construct_counts.get(name, 0)))
        return row


@dataclass
class Table2Row:
    """One data structure's row of Table 2."""

    class_name: str
    methods_without: int
    methods_total: int
    sequents_without: int
    sequents_total_without: int
    methods_with: int
    sequents_with: int
    sequents_total_with: int

    def cells(self) -> list[str]:
        return [
            self.class_name,
            f"{self.methods_without} of {self.methods_total}",
            f"{self.sequents_without} of {self.sequents_total_without}",
            str(self.methods_with),
            f"{self.sequents_with} of {self.sequents_total_with}",
        ]


TABLE1_HEADER = [
    "Data Structure",
    "Methods",
    "Statements",
    "Time (s)",
    "Spec Vars",
    "Local Spec Vars",
    "Invariants",
    "Loop Invs",
    "note (from)",
    "localize",
    "assuming",
    "mp",
    "pickAny",
    "instantiate",
    "witness",
    "pickWitness",
    "cases",
    "induct",
]

TABLE2_HEADER = [
    "Data Structure",
    "Methods Verified (no proof)",
    "Sequents Verified (no proof)",
    "Methods Verified (with proof)",
    "Sequents Verified (with proof)",
]


def table1_rows(
    classes: list[ClassModel],
    engine: VerificationEngine | None = None,
    reports: list[ClassReport] | None = None,
) -> list[Table1Row]:
    """Compute Table 1: construct counts plus (optionally) verification time.

    When ``engine`` is None the timing column is 0 and the ``verified`` flag
    is left True; passing an engine runs full verification class by class.
    Alternatively, pass precomputed ``reports`` (e.g. from a suite-scheduled
    :meth:`~repro.verifier.engine.VerificationEngine.verify_suite` run) to
    fill the timing/verified columns without re-verifying.
    """
    by_name = (
        {report.class_name: report for report in reports}
        if reports is not None
        else None
    )
    rows: list[Table1Row] = []
    for cls in classes:
        stats = class_statistics(cls)
        elapsed = 0.0
        verified = True
        if by_name is not None:
            report = by_name[cls.name]
            elapsed = report.elapsed
            verified = report.verified
        elif engine is not None:
            report = engine.verify_class(cls)
            elapsed = report.elapsed
            verified = report.verified
        rows.append(
            Table1Row(
                class_name=cls.name,
                methods=stats.methods,
                statements=stats.statements,
                verification_time=elapsed,
                spec_vars=stats.spec_vars,
                local_spec_vars=stats.local_spec_vars,
                invariants=stats.invariants,
                loop_invariants=stats.loop_invariants,
                notes=stats.construct("note"),
                notes_with_from=stats.notes_with_from,
                construct_counts=dict(stats.construct_counts),
                verified=verified,
            )
        )
    return rows


def table2_rows(
    classes: list[ClassModel], engine: VerificationEngine
) -> list[tuple[Table2Row, ClassReport, ClassReport]]:
    """Compute Table 2 by verifying each structure with and without proofs."""
    rows: list[tuple[Table2Row, ClassReport, ClassReport]] = []
    for cls in classes:
        without = engine.verify_class(cls, strip_proofs=True)
        with_proofs = engine.verify_class(cls, strip_proofs=False)
        rows.append(
            (
                Table2Row(
                    class_name=cls.name,
                    methods_without=without.methods_verified,
                    methods_total=without.methods_total,
                    sequents_without=without.sequents_proved,
                    sequents_total_without=without.sequents_total,
                    methods_with=with_proofs.methods_verified,
                    sequents_with=with_proofs.sequents_proved,
                    sequents_total_with=with_proofs.sequents_total,
                ),
                without,
                with_proofs,
            )
        )
    return rows


def format_table(header: list[str], rows: list[list[str]]) -> str:
    """Render a table as aligned plain text."""
    widths = [len(cell) for cell in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(header)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_table1(rows: list[Table1Row]) -> str:
    """Render Table 1."""
    return format_table(TABLE1_HEADER, [row.cells() for row in rows])


def format_performance(
    counters: PerformanceCounters | None = None, portfolio=None
) -> str:
    """Render the cache / allocation counters of a run as aligned text.

    Pass either precollected :class:`PerformanceCounters` or the portfolio
    to collect them from.
    """
    if counters is None:
        counters = performance_counters(portfolio)
    lines = [
        "Performance counters",
        f"  terms allocated     {counters.terms_allocated}",
        f"  terms interned      {counters.terms_interned} "
        f"(hit rate {counters.intern_hit_rate:.1%})",
        f"  proof cache hits    {counters.proof_cache_hits} "
        f"(memory {counters.proof_cache_hits_memory}, "
        f"disk {counters.proof_cache_hits_disk})",
        f"  proof cache misses  {counters.proof_cache_misses} "
        f"(hit rate {counters.proof_cache_hit_rate:.1%})",
        f"  sequents attempted  {counters.sequents_attempted}",
        f"  sequents proved     {counters.sequents_proved}",
    ]
    return "\n".join(lines)


def _dispatch_counter_lines(stats) -> list[str]:
    """The run-counter lines shared by :func:`format_parallel` and
    :func:`format_suite` (``stats`` is a ``ParallelRunStats`` or
    subclass)."""
    return [
        f"  sequents total      {stats.sequents_total}",
        f"  shipped to workers  {stats.dispatched}",
        f"  answered from cache {stats.hits_memory + stats.hits_disk} "
        f"(memory {stats.hits_memory}, disk {stats.hits_disk})",
        f"  duplicates folded   {stats.duplicates_folded}",
        f"  pool wall time      {stats.wall_time:.1f}s "
        f"(prover time {stats.prover_time:.1f}s)",
    ]


def _worker_load_lines(stats) -> list[str]:
    """One line per worker; the identity is an OS pid for the in-process
    pool and a ``host/pid`` label for remote workers, so distributed runs
    carry per-worker provenance in the same report."""
    return [
        f"  worker {str(load.pid):<12} {load.tasks} sequents, "
        f"{load.prover_time:.1f}s"
        for load in stats.workers
    ]


def _backend_suffix(stats) -> str:
    backend = getattr(stats, "backend", "process")
    return "" if backend == "process" else f", {backend} workers"


def format_parallel(stats) -> str:
    """Render the scheduling statistics of a parallel verification run.

    ``stats`` is a :class:`~repro.verifier.parallel.ParallelRunStats`.
    """
    lines = [f"Parallel dispatch ({stats.jobs} jobs{_backend_suffix(stats)})"]
    lines += _dispatch_counter_lines(stats)
    lines += _worker_load_lines(stats)
    return "\n".join(lines)


def format_suite(stats) -> str:
    """Render the scheduling statistics of a suite-level run.

    ``stats`` is a :class:`~repro.verifier.scheduler.SuiteRunStats`: the
    pooled counters of :func:`format_parallel` plus the per-class
    breakdown and the longest-class-first dispatch order.
    """
    lines = [
        f"Suite schedule ({stats.jobs} jobs{_backend_suffix(stats)})",
        f"  dispatch order      {', '.join(stats.schedule_order)}",
    ]
    lines += _dispatch_counter_lines(stats)
    header = [
        "class", "cost hint", "hint src", "sequents", "dispatched", "cache", "dup"
    ]
    rows = [
        [
            cls.class_name,
            f"{cls.cost_hint:.3g}",
            getattr(cls, "hint_source", "static"),
            str(cls.sequents),
            str(cls.dispatched),
            str(cls.hits_memory + cls.hits_disk),
            str(cls.duplicates_folded),
        ]
        for cls in stats.classes
    ]
    lines.extend("  " + line for line in format_table(header, rows).splitlines())
    lines += _worker_load_lines(stats)
    return "\n".join(lines)


def format_metrics(payload: dict) -> str:
    """Render the daemon's ``metrics`` response as aligned text.

    The CLI's ``jahob-py metrics --connect`` prints exactly this; the
    payload is the JSON object
    :meth:`~repro.verifier.daemon.VerifierDaemon._op_metrics` builds, so
    the sections mirror its fields (cache provenance, measured class
    costs, the last suite plan, per-worker latency).
    """
    lines = [f"Daemon metrics (protocol {payload.get('protocol', '?')})"]
    counters = payload.get("counters") or {}
    lines.append("Cache provenance")
    lines.append(
        f"  proof cache hits    {counters.get('proof_cache_hits', 0)} "
        f"(memory {counters.get('proof_cache_hits_memory', 0)}, "
        f"disk {counters.get('proof_cache_hits_disk', 0)})"
    )
    lines.append(f"  proof cache misses  {counters.get('proof_cache_misses', 0)}")
    store = payload.get("persistent_cache")
    if store:
        lines.append(
            f"  persistent store    {store.get('path')} ({store.get('status')})"
        )
    cost_model = payload.get("cost_model") or {}
    classes = cost_model.get("classes") or {}
    lines.append(
        f"Measured class costs "
        f"({cost_model.get('sequent_timings', 0)} sequent timings)"
    )
    if classes:
        header = ["class", "wall (s)", "cpu (s)", "sequents", "mean (s)"]
        rows = [
            [
                name,
                f"{data.get('wall', 0.0):.2f}",
                f"{data.get('cpu', 0.0):.2f}",
                str(data.get("sequents", 0)),
                f"{data.get('mean_wall', 0.0):.3f}",
            ]
            for name, data in sorted(classes.items())
        ]
        lines.extend("  " + line for line in format_table(header, rows).splitlines())
    else:
        lines.append("  (no measured profiles yet)")
    schedule = payload.get("schedule")
    if schedule:
        lines.append(
            f"Last suite plan ({schedule.get('jobs')} jobs, "
            f"{schedule.get('backend')} backend)"
        )
        lines.append(f"  dispatch order      {', '.join(schedule.get('order', []))}")
        header = ["class", "cost", "source", "sequents", "dispatched", "cache", "dup"]
        rows = [
            [
                entry.get("class", "?"),
                f"{entry.get('cost', 0.0):.3g}",
                entry.get("source", "?"),
                str(entry.get("sequents", 0)),
                str(entry.get("dispatched", 0)),
                str(entry.get("cache_hits", 0)),
                str(entry.get("duplicates", 0)),
            ]
            for entry in schedule.get("classes", [])
        ]
        lines.extend("  " + line for line in format_table(header, rows).splitlines())
    admission = payload.get("admission")
    if admission:
        rejected = admission.get("rejected") or {}
        queued = admission.get("queued") or {}
        lines.append(
            f"Admission (queue limit {admission.get('queue_limit', '?')}, "
            f"peak depth {admission.get('peak_depth', 0)})"
        )
        lines.append(
            f"  admitted            {admission.get('admitted', 0)}, rejected "
            + ", ".join(f"{code} {count}" for code, count in sorted(rejected.items()))
        )
        lines.append(
            "  queued now          "
            + ", ".join(f"{lane} {count}" for lane, count in sorted(queued.items()))
            + f"; service ewma {admission.get('service_ewma', 0.0):.3f}s"
        )
    watch = payload.get("watch")
    if watch and watch.get("subscriptions"):
        latency = watch.get("latency") or {}
        lines.append(
            f"Watch subscriptions ({watch.get('active', 0)} active, "
            f"{watch.get('subscriptions', 0)} total)"
        )
        lines.append(
            f"  verify cycles       {watch.get('events', 0)}, "
            f"mean {latency.get('mean', 0.0):.3f}s, "
            f"max {latency.get('max', 0.0):.3f}s"
        )
    workers = payload.get("workers") or []
    lines.append("Remote workers")
    if not workers:
        lines.append("  (none connected)")
    for worker in workers:
        latency = worker.get("latency") or {}
        ewma = worker.get("ewma_task_wall")
        ewma_text = f"{ewma:.3f}s" if isinstance(ewma, (int, float)) else "n/a"
        lines.append(
            f"  {worker.get('worker', '?')} ({worker.get('origin', '?')}): "
            f"task ewma {ewma_text}, {latency.get('count', 0)} answers, "
            f"mean {latency.get('mean', 0.0):.3f}s, "
            f"max {latency.get('max', 0.0):.3f}s"
        )
        bands = [
            (f"<={bound}s" if bound != "inf" else "slower") + f": {count}"
            for bound, count in latency.get("buckets", [])
            if count
        ]
        if bands:
            lines.append("    latency histogram " + ", ".join(bands))
    return "\n".join(lines)


def format_loadgen(record: dict) -> str:
    """Render one :func:`repro.verifier.loadgen.run_loadgen` record.

    ``jahob-py loadgen`` and ``benchmarks/load_harness.py`` both print
    exactly this; the JSON record itself is the CI artifact.
    """
    config = record.get("config") or {}
    requests = record.get("requests") or {}
    latency = record.get("latency") or {}
    verdicts = record.get("verdicts") or {}
    wall = record.get("wall_seconds") or {}
    lines = [
        f"Load run: {config.get('clients', '?')} clients x "
        f"{config.get('requests_per_client', '?')} requests, "
        f"{len(config.get('tenants', []))} tenants, "
        f"queue limit {config.get('queue_limit', '?')}"
        + (
            f", rate limit {config.get('rate_limit')}/s"
            if config.get("rate_limit")
            else ""
        ),
        f"  wall                baseline {wall.get('baseline', 0.0):.2f}s, "
        f"load {wall.get('load', 0.0):.2f}s",
        f"  requests            {requests.get('succeeded', 0)}"
        f"/{requests.get('total', 0)} ok, "
        f"{requests.get('retries', 0)} retries, "
        f"{requests.get('gave_up', 0)} gave up, "
        f"{requests.get('dropped_connections', 0)} dropped connections",
        "  rejections          "
        + (
            ", ".join(
                f"{code} {count}"
                for code, count in (record.get("rejections") or {}).items()
            )
            or "(none)"
        ),
        f"  latency             p50 {latency.get('p50', 0.0):.3f}s, "
        f"p95 {latency.get('p95', 0.0):.3f}s, "
        f"p99 {latency.get('p99', 0.0):.3f}s, "
        f"max {latency.get('max', 0.0):.3f}s "
        f"({latency.get('count', 0)} samples)",
        f"  verdicts            {verdicts.get('checked', 0)} checked vs "
        f"sequential baseline, "
        f"{len(verdicts.get('mismatches', []))} mismatches",
    ]
    for op, hist in (record.get("latency_by_op") or {}).items():
        lines.append(
            f"    {op:<17} p50 {hist.get('p50', 0.0):.3f}s, "
            f"p95 {hist.get('p95', 0.0):.3f}s, "
            f"p99 {hist.get('p99', 0.0):.3f}s "
            f"({hist.get('count', 0)} samples)"
        )
    return "\n".join(lines)


def format_verify(report: ClassReport) -> str:
    """Render one class's verification outcome, method by method.

    The CLI ``verify`` command and the daemon's ``verify`` op both print
    exactly this, so a ``--connect`` run is textually identical to a local
    one.
    """
    lines = []
    for method_report in report.methods:
        status = "ok" if method_report.verified else "FAILED"
        lines.append(
            f"{report.class_name}.{method_report.method_name}: "
            f"{method_report.sequents_proved}/{method_report.sequents_total} "
            f"sequents ({method_report.elapsed:.1f}s) {status}"
        )
        for outcome in method_report.failed_sequents:
            lines.append(f"    failed: {outcome.sequent.label}")
    lines.append(
        f"total: {report.sequents_proved}/{report.sequents_total} sequents, "
        f"{report.methods_verified}/{report.methods_total} methods, "
        f"{report.elapsed:.1f}s"
    )
    return "\n".join(lines)


def format_verify_file(path: str, reports: list[ClassReport]) -> str:
    """Render a ``verify FILE`` run: every loaded class model in turn.

    Shared by the CLI's local path and the daemon's ``verify_file`` op,
    so a ``--connect`` run prints the same text a local one does (the
    CLI forwards the absolute path to the daemon, so even the summary
    line matches).
    """
    blocks = [format_verify(report) for report in reports]
    verified = sum(1 for report in reports if report.verified)
    blocks.append(f"{path}: {verified}/{len(reports)} class models verified")
    return "\n\n".join(blocks)


def format_watch_event(event: dict) -> str:
    """Render one daemon ``watch`` stream event for the terminal.

    One block per event: ``verdicts`` events carry per-class incremental
    accounting (clean / dirty / dispatched), so the user can see that an
    edit re-proved only the sequents it invalidated.
    """
    kind = event.get("event") if isinstance(event, dict) else None
    if kind == "subscribed":
        return (
            f"watching {event.get('path')} "
            f"(poll every {event.get('interval', 0):g}s, ctrl-C to stop)"
        )
    if kind == "verdicts":
        generation = event.get("generation", 0)
        lines = []
        for entry in event.get("classes", []):
            status = "ok" if entry.get("verified") else "FAILED"
            incremental = entry.get("incremental") or {}
            if incremental.get("cold_start"):
                detail = f"cold start, {incremental.get('dispatched', 0)} dispatched"
            else:
                detail = (
                    f"{incremental.get('sequents_clean', 0)} clean, "
                    f"{incremental.get('sequents_dirty', 0)} dirty, "
                    f"{incremental.get('dispatched', 0)} dispatched"
                )
            lines.append(
                f"[{generation}] {entry.get('class')}: "
                f"{entry.get('sequents_proved', 0)}/"
                f"{entry.get('sequents_total', 0)} sequents {status} "
                f"({detail}) {event.get('latency', 0.0):.2f}s"
            )
            for method in entry.get("methods", []):
                for outcome in method.get("outcomes", []):
                    if not outcome.get("proved"):
                        lines.append(
                            f"    failed: {method.get('method')}:"
                            f"{outcome.get('label')}"
                        )
        return "\n".join(lines)
    if kind == "error":
        return f"error: {event.get('error')} (watch continues)"
    if kind == "rejected":
        return f"rejected: {event.get('error')} (watch continues)"
    if kind == "closed":
        return (
            f"watch closed ({event.get('reason')}, "
            f"{event.get('events', 0)} events)"
        )
    if isinstance(event, dict) and not event.get("ok", True):
        return f"watch error: {event.get('error')}"
    return str(event)


def format_table2(rows: list[Table2Row]) -> str:
    """Render Table 2."""
    return format_table(TABLE2_HEADER, [row.cells() for row in rows])
