"""HTTP/1.1 JSON front door for the verification daemon.

The socket protocol (:mod:`repro.verifier.daemon`) is the native
interface, but it asks every caller to speak newline-JSON framing and the
HMAC handshake.  :class:`HttpFrontDoor` serves the same ops as plain
HTTP -- ``POST /v1/verify`` with a JSON body, get a JSON response -- so
anything that can send an HTTP request can drive the verifier.  Built on
the stdlib :class:`~http.server.ThreadingHTTPServer`: no new
dependencies, one thread per in-flight request, same admission control as
the socket path (the HTTP layer is a *front door*, not a second engine).

Routes are data, not code: :data:`ROUTES` is the single table mapping
``(method, path)`` to a daemon op plus whether the op passes admission
control.  ``docs/service-api.md`` documents exactly this table and a
tier-1 test (``tests/test_service_docs.py``) asserts the two never
drift.  ``table1`` and ``shutdown`` are deliberately socket-only: the
first is a batch report with a CLI rendering, the second is an
operator's action that should require the operator's transport.

Authentication mirrors the socket handshake's trust model without its
round trips: every request carries the caller's client id and an
HMAC-SHA256 over ``client\\nmethod\\npath\\nbody`` with the shared secret
(headers ``X-Jahob-Client`` / ``X-Jahob-Signature``).  A missing or wrong
signature is answered ``401`` before the body is parsed as JSON.  The
daemon trusts the authenticated id for rate limiting and tenant cache
namespacing, exactly like a ``client:NAME`` handshake role.  Transport
encryption is deliberately out of scope -- run a TLS-terminating reverse
proxy in front (``docs/operations.md``).

Status mapping: ``200`` for any handled op (including ``"ok": false``
verification failures -- the HTTP layer reports transport success, the
body reports verdicts), ``400`` malformed JSON body, ``401`` failed
authentication, ``404`` unknown path, ``405`` known path with the wrong
method, ``429`` admission rejections (``busy`` / ``queue_full`` /
``rate_limited``) with a ``Retry-After`` header seconds hint.
"""

from __future__ import annotations

import hashlib
import hmac
import http.client
import json
import math
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .wire import WireError, parse_address

__all__ = [
    "ROUTES",
    "Route",
    "HttpFrontDoor",
    "HttpApiClient",
    "HttpApiError",
    "sign_request",
]

#: Hard cap on one request body, matching the socket protocol's line cap.
_MAX_BODY_BYTES = 1 << 20


@dataclass(frozen=True)
class Route:
    """One row of the HTTP surface: a method+path bound to a daemon op.

    ``admission`` marks ops that pass admission control (and can answer
    429); it must agree with the daemon's ``_ENGINE_OPS`` -- the service
    docs drift test checks both directions.
    """

    method: str
    path: str
    op: str
    admission: bool
    description: str


#: The entire HTTP surface.  ``docs/service-api.md`` is generated-by-hand
#: from this table and drift-checked against it; extend the table and the
#: doc together.
ROUTES = (
    Route("GET", "/v1/ping", "ping", False, "liveness, protocol and uptime"),
    Route("GET", "/v1/structures", "list", False, "catalogue class names"),
    Route("POST", "/v1/verify", "verify", True, "verify one catalogue class"),
    Route(
        "POST",
        "/v1/verify-file",
        "verify_file",
        True,
        "verify every class model in an uploaded-by-path Python file",
    ),
    Route("POST", "/v1/suite", "suite", True, "suite-scheduled verification run"),
    Route("GET", "/v1/stats", "stats", False, "engine counters and cache state"),
    Route(
        "GET",
        "/v1/metrics",
        "metrics",
        False,
        "scheduling, admission and worker observability",
    ),
)

_BY_PATH: dict[str, dict[str, Route]] = {}
for _route in ROUTES:
    _BY_PATH.setdefault(_route.path, {})[_route.method] = _route


def sign_request(
    secret: bytes, client: str, method: str, path: str, body: bytes
) -> str:
    """The ``X-Jahob-Signature`` value for one request.

    Covers the client id, the method, the path and the exact body bytes,
    so none of them can be replayed as a different request.  (No nonce:
    an eavesdropper on the plaintext hop could replay, which is the
    reverse-proxy-TLS deployment's job to prevent -- see
    ``docs/operations.md``.)
    """
    message = f"{client}\n{method}\n{path}\n".encode("utf-8") + body
    return hmac.new(secret, message, hashlib.sha256).hexdigest()


class _Handler(BaseHTTPRequestHandler):
    """One request.  The daemon and secret arrive via the server object."""

    protocol_version = "HTTP/1.1"
    server_version = "jahob-py"

    # -- plumbing ---------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the daemon's metrics op is the observability surface

    def _reply(self, status: int, payload: dict, retry_after: float | None = None):
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            # Retry-After is integer seconds; always at least 1 so eager
            # clients cannot busy-spin on a sub-second hint.
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after))))
        self.end_headers()
        self.wfile.write(body)

    # -- the one code path ------------------------------------------------------

    def _serve(self) -> None:
        methods = _BY_PATH.get(self.path)
        if methods is None:
            self._reply(404, {"ok": False, "error": f"no route {self.path!r}"})
            return
        route = methods.get(self.command)
        if route is None:
            allowed = ", ".join(sorted(methods))
            self._reply(
                405,
                {
                    "ok": False,
                    "error": f"{self.path} expects {allowed}, not {self.command}",
                },
            )
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            self._reply(400, {"ok": False, "error": "request body too large"})
            return
        body = self.rfile.read(length) if length else b""
        client = self.headers.get("X-Jahob-Client", "")
        signature = self.headers.get("X-Jahob-Signature", "")
        expected = sign_request(
            self.server.secret, client, self.command, self.path, body
        )
        if not signature or not hmac.compare_digest(signature, expected):
            self._reply(
                401,
                {
                    "ok": False,
                    "error": "missing or invalid request signature "
                    "(X-Jahob-Client / X-Jahob-Signature)",
                },
            )
            return
        if body:
            try:
                request = json.loads(body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                self._reply(400, {"ok": False, "error": f"malformed JSON body: {exc}"})
                return
            if not isinstance(request, dict):
                self._reply(
                    400, {"ok": False, "error": "request body must be a JSON object"}
                )
                return
        else:
            request = {}
        request["op"] = route.op
        response = self.server.daemon.handle(request, client=client)
        if response.get("busy"):
            self._reply(429, response, retry_after=response.get("retry_after", 1.0))
            return
        self._reply(200, response)

    do_GET = _serve
    do_POST = _serve


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # The admission queue is the real concurrency bound; a deeper accept
    # backlog just keeps bursts from seeing connection resets.
    request_queue_size = 128

    def __init__(self, address, daemon, secret: bytes) -> None:
        super().__init__(address, _Handler)
        self.daemon = daemon
        self.secret = secret


class HttpFrontDoor:
    """Lifecycle wrapper tying a :class:`_Server` to a daemon.

    Owned by :class:`~repro.verifier.daemon.VerifierDaemon`: ``bind()``
    inside the daemon's bind, ``start()`` when the accept loop starts,
    ``close()`` on teardown.  The server thread is a daemon thread, so a
    crashed main thread never hangs on it.
    """

    def __init__(self, address: str, daemon, secret: bytes) -> None:
        kind, target = parse_address(address)
        if kind != "tcp":
            raise WireError(
                f"the HTTP front door needs a HOST:PORT address, got {address!r}"
            )
        self._target = target
        self.daemon = daemon
        self.secret = secret
        self.address = address
        self._server: _Server | None = None
        self._thread: threading.Thread | None = None

    def bind(self) -> None:
        """Bind the HTTP listener and resolve ``:0`` (idempotent)."""
        if self._server is not None:
            return
        self._server = _Server(self._target, self.daemon, self.secret)
        self.address = "%s:%d" % self._server.server_address[:2]

    def start(self) -> None:
        self.bind()
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.2},
            name="jahob-http-door",
            daemon=True,
        )
        self._thread.start()

    def close(self) -> None:
        if self._server is None:
            return
        server, self._server = self._server, None
        if self._thread is not None:
            server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        server.server_close()


class HttpApiError(RuntimeError):
    """A transport-level failure talking to the HTTP front door."""


class HttpApiClient:
    """A minimal signed client for the front door (loadgen, tests, CLI).

    One request per call over a fresh connection -- matching the socket
    client's one-shot model keeps the two transports behaviourally
    comparable under load.  ``request`` returns ``(status, response)``
    and only raises :class:`HttpApiError` for transport failures, never
    for HTTP error statuses: 429-handling is the caller's retry policy.
    """

    def __init__(
        self,
        address: str,
        secret: bytes,
        client_id: str = "",
        timeout: float = 60.0,
    ) -> None:
        kind, target = parse_address(address)
        if kind != "tcp":
            raise HttpApiError(f"need a HOST:PORT address, got {address!r}")
        host, port = target
        self.host = host or "127.0.0.1"
        self.port = port
        self.secret = secret
        self.client_id = client_id
        self.timeout = timeout

    def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        payload = (
            json.dumps(body, separators=(",", ":")).encode("utf-8")
            if body is not None
            else b""
        )
        headers = {
            "X-Jahob-Client": self.client_id,
            "X-Jahob-Signature": sign_request(
                self.secret, self.client_id, method, path, payload
            ),
        }
        if payload:
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=payload, headers=headers)
            raw = connection.getresponse()
            status = raw.status
            data = raw.read()
        except (OSError, http.client.HTTPException) as exc:
            raise HttpApiError(
                f"HTTP request to {self.host}:{self.port} failed: {exc}"
            ) from exc
        finally:
            connection.close()
        try:
            response = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpApiError(f"non-JSON response (status {status})") from exc
        return status, response

    def wait_ready(self, deadline: float = 10.0) -> dict:
        """Poll ``/v1/ping`` until the door answers (daemon start-up)."""
        end = time.monotonic() + deadline
        while True:
            try:
                status, response = self.request("GET", "/v1/ping")
            except HttpApiError:
                if time.monotonic() >= end:
                    raise
                time.sleep(0.05)
                continue
            if status == 200:
                return response
            raise HttpApiError(f"ping answered {status}: {response}")
