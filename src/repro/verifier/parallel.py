"""Parallel sharded prover dispatch.

The sequents of a class are independent proof obligations, so the paper's
Tables 1--2 workload is embarrassingly parallel once each sequent is cheap
to fingerprint (PR 1).  This module shards the *cache-missing* sequents of
a class across a ``ProcessPoolExecutor`` worker pool and deterministically
merges the verdicts back into the same :class:`~repro.verifier.engine.MethodReport`
/ :class:`~repro.verifier.engine.ClassReport` shapes the sequential path
produces.

Design: parent-side cache authority
-----------------------------------

All caching decisions happen in the parent process, in the exact sequent
order the sequential engine would use:

1. sequent generation runs in the parent (it is cheap and memoized);
2. for every task, the parent runs the dispatcher's cache phase
   (:meth:`~repro.provers.dispatch.ProverPortfolio.consult_cache`) --
   in-memory hits and persistent-store hits are answered immediately;
3. misses are *deduplicated by fingerprint*: the first occurrence becomes
   the shard representative, later occurrences are resolved as memory
   cache hits once the representative's verdict arrives -- exactly what
   the sequential warm cache would have done;
4. only unique misses are shipped to workers.  Each worker rebuilds the
   prover portfolio from a picklable :class:`~repro.provers.dispatch.PortfolioSpec`
   (prover objects never cross process boundaries) and runs the pure
   prover phase with no cache of its own;
5. the parent replays each verdict into its own statistics and cache
   (:meth:`record_outcome` / :meth:`store_verdict`), so counters, verdicts,
   prover attribution and cache contents are bit-identical to a sequential
   run over the same sequents.

Because the parent owns the cache, there is exactly one writer for the
persistent store and workers stay read-free; a fully warm run dispatches
nothing and never even spawns the pool.

The phases are exposed as free functions (:func:`plan_class`,
:func:`run_shard`, :func:`resolve_shard`, :func:`resolve_duplicates`,
:func:`build_class_report`) so the suite-level scheduler
(:mod:`repro.verifier.scheduler`) can plan *several* classes into one shard
before dispatching anything.  :class:`ProverPool` wraps the executor so the
daemon (:mod:`repro.verifier.daemon`) can keep workers warm across
requests.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

from ..frontend.ast import ClassModel
from ..provers.dispatch import DispatchResult, PortfolioSpec, ProverPortfolio
from ..provers.result import ProofTask
from ..vcgen.sequent import Sequent

__all__ = [
    "ParallelRunStats",
    "WorkerLoad",
    "WorkerBackend",
    "ProverPool",
    "plan_class",
    "plan_method",
    "run_shard",
    "resolve_shard",
    "resolve_duplicates",
    "build_class_report",
    "verify_class_parallel",
]


@dataclass
class WorkerLoad:
    """Per-worker accounting of one parallel run.

    ``pid`` is the worker's identity: the OS pid for in-process pool
    workers, a ``host/pid`` label for remote workers
    (:mod:`repro.verifier.remote`) -- the per-worker provenance in
    ``--perf`` output either way.
    """

    pid: int | str
    tasks: int = 0
    prover_time: float = 0.0


@dataclass
class ParallelRunStats:
    """Scheduling statistics of one :func:`verify_class_parallel` run.

    ``backend`` names the worker backend that ran the shard:
    ``"process"`` for the in-process pool (and the ``jobs <= 1``
    in-parent path), ``"remote"`` for distributed workers.
    """

    jobs: int
    backend: str = "process"
    sequents_total: int = 0
    dispatched: int = 0
    hits_disk: int = 0
    hits_memory: int = 0
    duplicates_folded: int = 0
    wall_time: float = 0.0
    workers: list[WorkerLoad] = field(default_factory=list)

    @property
    def prover_time(self) -> float:
        return sum(load.prover_time for load in self.workers)

    def fold_worker(self, pid: int, tasks: int, prover_time: float) -> None:
        """Accumulate one worker's load (matching by pid)."""
        for load in self.workers:
            if load.pid == pid:
                load.tasks += tasks
                load.prover_time += prover_time
                return
        self.workers.append(WorkerLoad(pid, tasks, prover_time))

    def merge(self, other: "ParallelRunStats") -> None:
        """Fold another run's numbers in (used across classes of a suite)."""
        if other.backend != "process":
            self.backend = other.backend
        self.sequents_total += other.sequents_total
        self.dispatched += other.dispatched
        self.hits_disk += other.hits_disk
        self.hits_memory += other.hits_memory
        self.duplicates_folded += other.duplicates_folded
        self.wall_time += other.wall_time
        for load in other.workers:
            self.fold_worker(load.pid, load.tasks, load.prover_time)


@dataclass
class _Slot:
    """One sequent's position in the deterministic merge order."""

    method_index: int
    sequent: Sequent
    task: ProofTask
    key: tuple | None = None
    result: DispatchResult | None = None
    shard_index: int | None = None
    duplicate_of: int | None = None  # index into the shard list


# Worker-side state: one portfolio per worker process, built from the spec
# at pool start-up.  Workers run the pure prover phase only -- no cache --
# because the parent has already deduplicated and answered every cacheable
# sequent.
_WORKER_PORTFOLIO: ProverPortfolio | None = None


def _init_worker(spec: PortfolioSpec) -> None:
    global _WORKER_PORTFOLIO
    _WORKER_PORTFOLIO = spec.build(proof_cache=None)


def _dispatch_in_worker(item: tuple[int, ProofTask]):
    index, task = item
    start = time.monotonic()
    result = _WORKER_PORTFOLIO.run_provers(task)
    return index, os.getpid(), time.monotonic() - start, result


class WorkerBackend:
    """The surface a shard-dispatch backend exposes to the engine.

    Two implementations exist: :class:`ProverPool` (an in-process
    ``ProcessPoolExecutor``) and
    :class:`~repro.verifier.remote.RemoteWorkerPool` (distributed workers
    over TCP).  :func:`run_shard`, the engine's pool management
    (``acquire_pool`` / ``release_pool`` / ``warm_pool``) and the daemon
    drive both through exactly this interface, so backends differ only in
    where the pure prover phase executes -- never in verdicts, which the
    differential harnesses assert for both.
    """

    #: Human-readable backend name, recorded in ``ParallelRunStats.backend``.
    backend_name = "process"

    def matches(self, spec: PortfolioSpec, jobs: int) -> bool:
        """Whether this (possibly warm) backend can serve a run with
        ``spec`` and ``jobs``."""
        raise NotImplementedError

    @property
    def started(self) -> bool:
        """Whether worker processes/connections exist yet."""
        raise NotImplementedError

    def warm_up(self) -> None:
        """Start every worker now instead of on first dispatch."""
        raise NotImplementedError

    def run(self, items: list[tuple[int, ProofTask]]):
        """Dispatch ``(shard_index, task)`` pairs; yield ``(shard_index,
        worker_identity, prover_wall_seconds, DispatchResult)`` tuples in
        completion order."""
        raise NotImplementedError

    def close(self, cancel_futures: bool = False) -> None:
        """Release every worker; ``cancel_futures`` drops queued work."""
        raise NotImplementedError


class ProverPool(WorkerBackend):
    """A worker pool bound to one portfolio spec, reusable across runs.

    The underlying ``ProcessPoolExecutor`` is created lazily on the first
    :meth:`run` call, so a fully warm verification (everything answered
    from the cache) never forks at all.  The engine hands these out via
    :meth:`~repro.verifier.engine.VerificationEngine.acquire_pool`: per-call
    pools are closed after each run, while the daemon's warm engine keeps
    one pool alive across requests so repeat verifications skip pool
    start-up entirely.
    """

    def __init__(self, spec: PortfolioSpec, jobs: int) -> None:
        self.spec = spec
        self.jobs = max(1, int(jobs))
        self._executor: ProcessPoolExecutor | None = None

    def matches(self, spec: PortfolioSpec, jobs: int) -> bool:
        """Whether this pool can serve a run with ``spec`` and ``jobs``."""
        return self.spec == spec and self.jobs == max(1, int(jobs))

    @property
    def started(self) -> bool:
        return self._executor is not None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(self.spec,),
            )
        return self._executor

    def warm_up(self) -> None:
        """Fork every worker process now instead of on first dispatch.

        The daemon calls this before accepting connections: a worker
        forked while a request is being served inherits the accepted
        connection fd (keeping the client's socket open after the parent
        closes it), and the first request would pay pool start-up.  The
        executor forks on demand, one worker per outstanding task, so each
        sleep parks one worker long enough that all of them spawn.
        """
        executor = self._ensure_executor()
        futures = [executor.submit(time.sleep, 0.2) for _ in range(self.jobs)]
        for future in futures:
            future.result()

    def run(self, items: list[tuple[int, ProofTask]]):
        """Dispatch ``(index, task)`` pairs; yields ``(index, pid, wall, result)``.

        Items are *dispatched* in the order given, which is what lets the
        suite scheduler steer longest-class-first, but yielded in
        completion order: a straggler at the front must not hold back
        verdicts that already finished (the scheduler checkpoints them to
        the persistent store as they arrive).  Callers index by the
        yielded shard position, so consumption order carries no meaning.
        """
        executor = self._ensure_executor()
        futures = [executor.submit(_dispatch_in_worker, item) for item in items]
        for future in as_completed(futures):
            yield future.result()

    def close(self, cancel_futures: bool = False) -> None:
        """Shut the executor down; ``cancel_futures`` drops queued tasks
        (the error path -- a failing run must not wait out the queue)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=cancel_futures)
            self._executor = None


# ---------------------------------------------------------------------------
# The dispatch phases (shared by the per-class path and the suite scheduler)
# ---------------------------------------------------------------------------


def plan_class(
    engine,
    target: ClassModel,
    shard: list[_Slot],
    pending_by_key: dict[tuple, int],
    stats: ParallelRunStats,
) -> list[_Slot]:
    """Phase 1 (parent): plan one class's sequents against the cache.

    Generates ``target``'s sequents in the exact order the sequential
    engine would, answers in-memory / persistent-store hits immediately,
    folds fingerprint duplicates onto their pending representative, and
    appends the unique misses to ``shard``.  ``shard`` and
    ``pending_by_key`` may be shared across several classes (the suite
    scheduler plans the whole catalogue into one shard, so a sequent
    repeated across classes is still proved only once, exactly as a
    sequential engine's warm cache would).

    Returns the class's slots in sequential order; ``stats`` accumulates
    hit/duplicate counts (``stats.dispatched`` is left to the caller, which
    knows when the shard is complete).
    """
    slots: list[_Slot] = []
    for method_index, method in enumerate(target.methods):
        slots.extend(
            plan_method(
                engine, target, method, method_index, shard, pending_by_key, stats
            )
        )
    stats.sequents_total += len(slots)
    return slots


def plan_method(
    engine,
    target: ClassModel,
    method,
    method_index: int,
    shard: list[_Slot],
    pending_by_key: dict[tuple, int],
    stats: ParallelRunStats,
) -> list[_Slot]:
    """The per-method slice of :func:`plan_class`.

    Exposed separately so incremental verification
    (:mod:`repro.verifier.incremental`) can re-plan only a class's dirty
    methods while its clean methods resolve from the dependency index
    without sequent regeneration.  ``stats.sequents_total`` is left to the
    caller, which knows the full planned extent of the run.
    """
    portfolio = engine.portfolio
    slots: list[_Slot] = []
    for sequent in engine.method_sequents(target, method):
        slot = _Slot(method_index, sequent, engine.task_for(sequent))
        slots.append(slot)
        key, hit = portfolio.consult_cache(slot.task)
        slot.key = key
        if hit is not None:
            slot.result = hit
            if hit.cache_origin == "disk":
                stats.hits_disk += 1
            else:
                stats.hits_memory += 1
            continue
        if key is not None and key in pending_by_key:
            # A duplicate of a sequent already queued this run: the
            # sequential path would find its verdict in the warm cache.
            slot.duplicate_of = pending_by_key[key]
            portfolio.statistics.cache_misses -= 1  # counted by consult_cache
            portfolio.statistics.cache_hits += 1
            stats.duplicates_folded += 1
            continue
        slot.shard_index = len(shard)
        shard.append(slot)
        if key is not None:
            pending_by_key[key] = slot.shard_index
    return slots


def run_shard(
    engine,
    shard: list[_Slot],
    jobs: int,
    stats: ParallelRunStats,
    order: list[int] | None = None,
    on_result=None,
) -> list[DispatchResult]:
    """Phase 2: run the provers on the unique misses.

    ``order`` optionally reorders *dispatch* (a permutation of shard
    indices -- the suite scheduler passes longest-class-first); the
    returned list is always indexed by shard position, so the merge stays
    deterministic regardless of dispatch order.  With ``jobs <= 1`` (and
    no remote workers configured on the engine) the provers run
    in-process on the parent's portfolio (no pool), which is what makes a
    suite-scheduled ``--jobs 1`` run behave exactly like the sequential
    engine modulo scheduling bookkeeping.  An engine with remote workers
    always dispatches through its :class:`WorkerBackend`.

    ``on_result(slot, result)`` is called in the parent as each verdict
    arrives (completion order, not merge order); the suite scheduler uses
    it to checkpoint verdicts to the persistent cache so an interrupted
    long run keeps what it already proved.
    """
    results: list[DispatchResult] = [None] * len(shard)  # type: ignore[list-item]
    start = time.monotonic()
    if shard:
        indexed = [(slot.shard_index, slot.task) for slot in shard]
        if order is not None:
            indexed = [indexed[position] for position in order]
        if jobs <= 1 and not getattr(engine, "uses_remote_workers", False):
            pid = os.getpid()
            for index, task in indexed:
                task_start = time.monotonic()
                result = engine.portfolio.run_provers(task)
                result.wall = time.monotonic() - task_start
                results[index] = result
                stats.fold_worker(pid, 1, result.wall)
                if on_result is not None:
                    on_result(shard[index], result)
        else:
            spec = PortfolioSpec.from_portfolio(engine.portfolio)
            pool = engine.acquire_pool(spec, jobs, shard_size=len(shard))
            stats.backend = pool.backend_name
            try:
                for index, pid, wall, result in pool.run(indexed):
                    result.wall = wall
                    results[index] = result
                    stats.fold_worker(pid, 1, wall)
                    if on_result is not None:
                        on_result(shard[index], result)
            except BaseException:
                # A dead executor (e.g. an OOM-killed worker raising
                # BrokenProcessPool) must not survive as a warm pool.
                engine.release_pool(pool, broken=True)
                raise
            engine.release_pool(pool)
        stats.workers.sort(key=lambda load: str(load.pid))
    stats.wall_time += time.monotonic() - start
    return results


def resolve_shard(
    portfolio: ProverPortfolio,
    shard: list[_Slot],
    results: list[DispatchResult],
    store: bool = True,
) -> None:
    """Phase 3a: replay worker verdicts into the parent, in shard order.

    Statistics and cache contents end up bit-identical to a sequential
    dispatch loop over the same tasks.  Pass ``store=False`` when every
    verdict was already stored as it arrived (the suite scheduler's
    checkpoint callback), so each verdict is stored exactly once either
    way.
    """
    for slot in shard:
        result = results[slot.shard_index]
        slot.result = result
        portfolio.record_outcome(result)
        if store:
            portfolio.store_verdict(slot.key, result)


def resolve_duplicates(
    portfolio: ProverPortfolio,
    slots: list[_Slot],
    results: list[DispatchResult],
) -> None:
    """Phase 3b: answer folded duplicates as warm memory cache hits."""
    for slot in slots:
        if slot.duplicate_of is not None:
            rep = results[slot.duplicate_of]
            if rep.proved:
                portfolio.statistics.sequents_proved += 1
            slot.result = DispatchResult(
                task=slot.task,
                proved=rep.proved,
                refuted=rep.refuted,
                winning_prover=rep.winning_prover,
                cached=True,
                cache_origin="memory",
            )


def build_class_report(target: ClassModel, slots: list[_Slot]):
    """Assemble the :class:`~repro.verifier.engine.ClassReport` for ``target``.

    Outcomes appear in sequential method/sequent order.  The sequential
    path measures per-method wall time; in a parallel run the methods
    overlap, so the closest faithful number is the prover time actually
    spent on the method's sequents.
    """
    # Imported here: engine.py imports this module lazily and vice versa.
    from .engine import ClassReport, MethodReport, SequentOutcome

    report = ClassReport(target.name)
    for method_index, method in enumerate(target.methods):
        method_report = MethodReport(target.name, method.name)
        for slot in slots:
            if slot.method_index == method_index:
                method_report.outcomes.append(SequentOutcome(slot.sequent, slot.result))
        method_report.elapsed = sum(
            outcome.dispatch.elapsed for outcome in method_report.outcomes
        )
        report.methods.append(method_report)
    return report


def verify_class_parallel(engine, target: ClassModel, jobs: int):
    """Verify every method of ``target`` with ``jobs`` worker processes.

    Returns ``(ClassReport, ParallelRunStats)``.  Verdicts, prover
    attribution and portfolio statistics are identical to the sequential
    :meth:`~repro.verifier.engine.VerificationEngine.verify_class` path
    (modulo timing jitter on near-timeout sequents, which both paths share).

    Since the plan/execute split this is a thin composition of the
    engine's :meth:`~repro.verifier.engine.VerificationEngine.plan_class_run`
    and :meth:`~repro.verifier.engine.VerificationEngine.execute_class_plan`
    -- kept as the stable entry point the engine and older callers use.
    """
    plan = engine.plan_class_run(target)
    return engine.execute_class_plan(plan, jobs=jobs)
