"""Parallel sharded prover dispatch.

The sequents of a class are independent proof obligations, so the paper's
Tables 1--2 workload is embarrassingly parallel once each sequent is cheap
to fingerprint (PR 1).  This module shards the *cache-missing* sequents of
a class across a ``ProcessPoolExecutor`` worker pool and deterministically
merges the verdicts back into the same :class:`~repro.verifier.engine.MethodReport`
/ :class:`~repro.verifier.engine.ClassReport` shapes the sequential path
produces.

Design: parent-side cache authority
-----------------------------------

All caching decisions happen in the parent process, in the exact sequent
order the sequential engine would use:

1. sequent generation runs in the parent (it is cheap and memoized);
2. for every task, the parent runs the dispatcher's cache phase
   (:meth:`~repro.provers.dispatch.ProverPortfolio.consult_cache`) --
   in-memory hits and persistent-store hits are answered immediately;
3. misses are *deduplicated by fingerprint*: the first occurrence becomes
   the shard representative, later occurrences are resolved as memory
   cache hits once the representative's verdict arrives -- exactly what
   the sequential warm cache would have done;
4. only unique misses are shipped to workers.  Each worker rebuilds the
   prover portfolio from a picklable :class:`~repro.provers.dispatch.PortfolioSpec`
   (prover objects never cross process boundaries) and runs the pure
   prover phase with no cache of its own;
5. the parent replays each verdict into its own statistics and cache
   (:meth:`record_outcome` / :meth:`store_verdict`), so counters, verdicts,
   prover attribution and cache contents are bit-identical to a sequential
   run over the same sequents.

Because the parent owns the cache, there is exactly one writer for the
persistent store and workers stay read-free; a fully warm run dispatches
nothing and never even spawns the pool.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..frontend.ast import ClassModel
from ..provers.dispatch import DispatchResult, PortfolioSpec, ProverPortfolio
from ..provers.result import ProofTask
from ..vcgen.sequent import Sequent

__all__ = ["ParallelRunStats", "WorkerLoad", "verify_class_parallel"]


@dataclass
class WorkerLoad:
    """Per-worker-process accounting of one parallel run."""

    pid: int
    tasks: int = 0
    prover_time: float = 0.0


@dataclass
class ParallelRunStats:
    """Scheduling statistics of one :func:`verify_class_parallel` run."""

    jobs: int
    sequents_total: int = 0
    dispatched: int = 0
    hits_disk: int = 0
    hits_memory: int = 0
    duplicates_folded: int = 0
    wall_time: float = 0.0
    workers: list[WorkerLoad] = field(default_factory=list)

    @property
    def prover_time(self) -> float:
        return sum(load.prover_time for load in self.workers)

    def merge(self, other: "ParallelRunStats") -> None:
        """Fold another run's numbers in (used across classes of a suite)."""
        self.sequents_total += other.sequents_total
        self.dispatched += other.dispatched
        self.hits_disk += other.hits_disk
        self.hits_memory += other.hits_memory
        self.duplicates_folded += other.duplicates_folded
        self.wall_time += other.wall_time
        mine = {load.pid: load for load in self.workers}
        for load in other.workers:
            merged = mine.get(load.pid)
            if merged is None:
                merged = WorkerLoad(load.pid)
                mine[load.pid] = merged
                self.workers.append(merged)
            merged.tasks += load.tasks
            merged.prover_time += load.prover_time


@dataclass
class _Slot:
    """One sequent's position in the deterministic merge order."""

    method_index: int
    sequent: Sequent
    task: ProofTask
    key: tuple | None = None
    result: DispatchResult | None = None
    shard_index: int | None = None
    duplicate_of: int | None = None  # index into the shard list


# Worker-side state: one portfolio per worker process, built from the spec
# at pool start-up.  Workers run the pure prover phase only -- no cache --
# because the parent has already deduplicated and answered every cacheable
# sequent.
_WORKER_PORTFOLIO: ProverPortfolio | None = None


def _init_worker(spec: PortfolioSpec) -> None:
    global _WORKER_PORTFOLIO
    _WORKER_PORTFOLIO = spec.build(proof_cache=None)


def _dispatch_in_worker(item: tuple[int, ProofTask]):
    index, task = item
    start = time.monotonic()
    result = _WORKER_PORTFOLIO.run_provers(task)
    return index, os.getpid(), time.monotonic() - start, result


def verify_class_parallel(engine, target: ClassModel, jobs: int):
    """Verify every method of ``target`` with ``jobs`` worker processes.

    Returns ``(ClassReport, ParallelRunStats)``.  Verdicts, prover
    attribution and portfolio statistics are identical to the sequential
    :meth:`~repro.verifier.engine.VerificationEngine.verify_class` path
    (modulo timing jitter on near-timeout sequents, which both paths share).
    """
    # Imported here: engine.py imports this module lazily and vice versa.
    from .engine import ClassReport, MethodReport, SequentOutcome

    portfolio = engine.portfolio
    spec = PortfolioSpec.from_portfolio(portfolio)
    stats = ParallelRunStats(jobs=jobs)

    # Phase 1 (parent): generate sequents in sequential order and resolve
    # everything the cache already knows.
    slots: list[_Slot] = []
    shard: list[_Slot] = []
    pending_by_key: dict[tuple, int] = {}
    for method_index, method in enumerate(target.methods):
        for sequent in engine.method_sequents(target, method):
            slot = _Slot(method_index, sequent, engine.task_for(sequent))
            slots.append(slot)
            key, hit = portfolio.consult_cache(slot.task)
            slot.key = key
            if hit is not None:
                slot.result = hit
                if hit.cache_origin == "disk":
                    stats.hits_disk += 1
                else:
                    stats.hits_memory += 1
                continue
            if key is not None and key in pending_by_key:
                # A duplicate of a sequent already queued this run: the
                # sequential path would find its verdict in the warm cache.
                slot.duplicate_of = pending_by_key[key]
                portfolio.statistics.cache_misses -= 1  # counted by consult_cache
                portfolio.statistics.cache_hits += 1
                stats.duplicates_folded += 1
                continue
            slot.shard_index = len(shard)
            shard.append(slot)
            if key is not None:
                pending_by_key[key] = slot.shard_index
    stats.sequents_total = len(slots)
    stats.dispatched = len(shard)

    # Phase 2 (workers): run the provers on the unique misses.
    shard_results: list[DispatchResult] = [None] * len(shard)  # type: ignore[list-item]
    start = time.monotonic()
    if shard:
        worker_loads: dict[int, WorkerLoad] = {}
        max_workers = min(jobs, len(shard))
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_worker,
            initargs=(spec,),
        ) as pool:
            items = [(slot.shard_index, slot.task) for slot in shard]
            for index, pid, wall, result in pool.map(
                _dispatch_in_worker, items, chunksize=1
            ):
                shard_results[index] = result
                load = worker_loads.setdefault(pid, WorkerLoad(pid))
                load.tasks += 1
                load.prover_time += wall
        stats.workers = sorted(worker_loads.values(), key=lambda load: load.pid)
    stats.wall_time = time.monotonic() - start

    # Phase 3 (parent): deterministic merge.  Replay verdicts into the
    # parent's statistics and cache in sequential sequent order, then
    # resolve the folded duplicates as memory cache hits.
    for slot in shard:
        result = shard_results[slot.shard_index]
        slot.result = result
        portfolio.record_outcome(result)
        portfolio.store_verdict(slot.key, result)
    for slot in slots:
        if slot.duplicate_of is not None:
            rep = shard_results[slot.duplicate_of]
            if rep.proved:
                portfolio.statistics.sequents_proved += 1
            slot.result = DispatchResult(
                task=slot.task,
                proved=rep.proved,
                refuted=rep.refuted,
                winning_prover=rep.winning_prover,
                cached=True,
                cache_origin="memory",
            )

    report = ClassReport(target.name)
    for method_index, method in enumerate(target.methods):
        method_report = MethodReport(target.name, method.name)
        for slot in slots:
            if slot.method_index == method_index:
                method_report.outcomes.append(
                    SequentOutcome(slot.sequent, slot.result)
                )
        # The sequential path measures per-method wall time; in a parallel
        # run the methods overlap, so the closest faithful number is the
        # prover time actually spent on the method's sequents.
        method_report.elapsed = sum(
            outcome.dispatch.elapsed for outcome in method_report.outcomes
        )
        report.methods.append(method_report)
    return report, stats
