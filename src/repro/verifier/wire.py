"""Shared wire layer for the daemon and the distributed worker protocol.

PR 3's daemon spoke newline-delimited JSON over a unix socket, one request
per connection, with the framing buried in :mod:`repro.verifier.daemon`.
Distributed workers (:mod:`repro.verifier.remote` /
:mod:`repro.verifier.worker`) reuse the same framing but need three things
the one-shot protocol did not:

* **persistent connections** -- many messages per socket, so over-reads
  past a newline must be buffered, not discarded (:class:`LineChannel`);
* **TCP addresses** -- ``HOST:PORT`` next to unix-socket paths, parsed and
  dialed uniformly (:func:`parse_address`, :func:`connect_address`,
  :func:`create_listener`);
* **authentication** -- anyone who can reach a TCP port could otherwise
  feed the coordinator pickled payloads.  TCP peers therefore run a
  mutual HMAC-SHA256 challenge-response handshake over a shared secret
  before any payload crosses the wire (:func:`handshake_accept` /
  :func:`handshake_connect`).  The secret itself never crosses the wire;
  each side proves possession by answering the other's fresh nonce.
  Unix-socket peers skip the handshake -- filesystem permissions are the
  authentication there, exactly as before.

Task and result payloads ride inside JSON messages as base64-encoded
pickles (:func:`encode_payload` / :func:`decode_payload`): the objects are
the same ones the in-process ``ProcessPoolExecutor`` backend already
pickles, which is what keeps remote verdicts bit-identical.  Unpickling is
only ever performed *after* a successful handshake, so the trust boundary
is possession of the shared secret -- see the security note in
``docs/architecture.md``.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import json
import os
import pickle
import socket
from pathlib import Path

__all__ = [
    "WIRE_VERSION",
    "MAX_LINE_BYTES",
    "HANDSHAKE_TIMEOUT",
    "WireError",
    "HandshakeError",
    "parse_address",
    "format_address",
    "is_tcp_address",
    "create_listener",
    "connect_address",
    "load_secret",
    "handshake_accept",
    "handshake_connect",
    "client_role",
    "parse_client_role",
    "LineChannel",
    "encode_payload",
    "decode_payload",
]

#: Bumped on incompatible wire-level changes (framing or handshake).
WIRE_VERSION = 1

#: Hard cap on one protocol line.  Proof-task batches are the largest
#: messages and stay far below this; a corrupt peer must not make either
#: side buffer without bound.
MAX_LINE_BYTES = 64 << 20

#: Bytes of entropy in each handshake nonce.
_NONCE_BYTES = 32

#: Deadline for the handshake phase of an accepted connection.  A peer
#: that connects and then goes silent must not wedge an accept loop (the
#: registry and the listening worker serve one handshake at a time);
#: after the handshake, sockets switch to blocking mode -- prover work
#: has no protocol-level deadline.
HANDSHAKE_TIMEOUT = 10.0


class WireError(RuntimeError):
    """A protocol-level failure: oversized line, closed peer, bad JSON."""


class HandshakeError(WireError):
    """The peer failed (or refused) the shared-secret handshake."""


# ---------------------------------------------------------------------------
# Addresses
# ---------------------------------------------------------------------------


def parse_address(spec: str | Path) -> tuple[str, object]:
    """Classify ``spec`` as ``("tcp", (host, port))`` or ``("unix", path)``.

    ``HOST:PORT`` with an integer port and no path separator in the host is
    TCP; everything else is a unix-socket path.  ``HOST`` may be empty
    (``":8700"``) meaning all interfaces.
    """
    if isinstance(spec, Path):
        return "unix", str(spec)
    text = str(spec)
    host, sep, port = text.rpartition(":")
    if sep and "/" not in host and "\\" not in host:
        try:
            return "tcp", (host or "0.0.0.0", int(port))
        except ValueError:
            pass
    return "unix", text


def is_tcp_address(spec: str | Path) -> bool:
    return parse_address(spec)[0] == "tcp"


def format_address(spec: str | Path) -> str:
    kind, target = parse_address(spec)
    if kind == "tcp":
        host, port = target
        return f"{host}:{port}"
    return str(target)


def create_listener(spec: str | Path, backlog: int = 8) -> socket.socket:
    """Bind and listen on ``spec`` (TCP only -- the daemon keeps its own
    unix-socket bind logic with stale-file takeover)."""
    kind, target = parse_address(spec)
    if kind != "tcp":
        raise WireError(f"create_listener needs a HOST:PORT address, got {spec!r}")
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(target)
        server.listen(backlog)
    except OSError:
        server.close()
        raise
    return server


def connect_address(spec: str | Path, timeout: float = 5.0) -> socket.socket:
    """Connect a stream socket to a TCP or unix-socket address."""
    kind, target = parse_address(spec)
    if kind == "tcp":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        target = str(target)
    try:
        sock.settimeout(timeout)
        sock.connect(target)
    except OSError:
        sock.close()
        raise
    return sock


def load_secret(
    secret_file: str | Path | None, env: str = "JAHOB_SECRET"
) -> bytes | None:
    """The shared secret from ``--secret-file`` or the environment.

    A file wins over the environment variable; surrounding whitespace is
    stripped (editors love trailing newlines).  Returns ``None`` when
    neither source is configured -- TCP endpoints reject that.
    """
    if secret_file is not None:
        return Path(secret_file).read_bytes().strip()
    value = os.environ.get(env)
    if value:
        return value.encode("utf-8").strip()
    return None


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


class LineChannel:
    """Newline-delimited JSON messages over one stream socket.

    Unlike the daemon's one-shot ``_read_line``, the channel keeps the
    bytes that arrive after a newline and serves them as the next message
    -- the worker protocol is many messages per connection.  ``recv``
    returns ``None`` on a clean EOF between messages and raises
    :class:`WireError` on EOF mid-message or an oversized line.
    """

    def __init__(self, sock: socket.socket, limit: int = MAX_LINE_BYTES) -> None:
        self.sock = sock
        self.limit = limit
        self._buffer = b""

    def send(self, message: dict) -> None:
        try:
            self.sock.sendall(
                json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"
            )
        except OSError as exc:
            raise WireError(f"peer went away while sending: {exc}") from exc

    def recv(self) -> dict | None:
        while b"\n" not in self._buffer:
            if len(self._buffer) > self.limit:
                raise WireError("protocol line too large")
            try:
                chunk = self.sock.recv(65536)
            except OSError as exc:
                raise WireError(f"peer went away while receiving: {exc}") from exc
            if not chunk:
                if self._buffer:
                    raise WireError("peer closed the connection mid-message")
                return None
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        if len(line) > self.limit:
            raise WireError("protocol line too large")
        try:
            message = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise WireError(f"malformed protocol line: {exc}") from exc
        if not isinstance(message, dict):
            raise WireError("protocol line is not a JSON object")
        return message

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Handshake
# ---------------------------------------------------------------------------


def _mac(secret: bytes, nonce: str, role: str) -> str:
    return hmac.new(
        secret, f"{nonce}:{role}".encode("utf-8"), hashlib.sha256
    ).hexdigest()


def handshake_accept(
    channel: LineChannel, secret: bytes, expect_role: str | None = None
) -> str:
    """Run the accepting side of the handshake; returns the peer's role.

    The acceptor challenges first: it sends a fresh nonce, the dialer
    answers with ``HMAC(secret, nonce + ":" + role)`` plus its own nonce,
    and the acceptor both verifies that answer and proves itself by
    returning ``HMAC(secret, dialer_nonce + ":acceptor")``.  A wrong
    secret on either side surfaces as :class:`HandshakeError` before any
    payload is exchanged.
    """
    nonce = os.urandom(_NONCE_BYTES).hex()
    channel.send({"jahob": WIRE_VERSION, "nonce": nonce})
    answer = channel.recv()
    if answer is None:
        raise HandshakeError("peer hung up during handshake")
    role = answer.get("role")
    peer_nonce = answer.get("nonce")
    mac = answer.get("mac")
    if not isinstance(role, str) or not isinstance(peer_nonce, str) or not (
        isinstance(mac, str)
    ):
        raise HandshakeError("malformed handshake answer")
    if not hmac.compare_digest(mac, _mac(secret, nonce, role)):
        channel.send({"ok": False, "error": "handshake failed"})
        raise HandshakeError("peer presented a wrong shared secret")
    if expect_role is not None and role != expect_role and not (
        role.startswith(expect_role + ":")
    ):
        # "client:alice" satisfies expect_role="client": the suffix is the
        # peer's self-declared identity, HMAC-bound like the rest of the
        # role string (see client_role / parse_client_role).
        channel.send({"ok": False, "error": f"unexpected role {role!r}"})
        raise HandshakeError(f"expected a {expect_role!r} peer, got {role!r}")
    channel.send({"ok": True, "mac": _mac(secret, peer_nonce, "acceptor")})
    return role


def handshake_connect(channel: LineChannel, secret: bytes, role: str) -> None:
    """Run the dialing side of the handshake, authenticating as ``role``."""
    challenge = channel.recv()
    if challenge is None:
        raise HandshakeError("peer hung up during handshake")
    if challenge.get("jahob") != WIRE_VERSION:
        raise HandshakeError(
            f"peer speaks wire version {challenge.get('jahob')!r}, "
            f"this side speaks {WIRE_VERSION}"
        )
    nonce = challenge.get("nonce")
    if not isinstance(nonce, str):
        raise HandshakeError("malformed handshake challenge")
    own_nonce = os.urandom(_NONCE_BYTES).hex()
    channel.send({"role": role, "nonce": own_nonce, "mac": _mac(secret, nonce, role)})
    verdict = channel.recv()
    if verdict is None:
        raise HandshakeError("peer hung up during handshake")
    if not verdict.get("ok"):
        raise HandshakeError(
            f"peer rejected the handshake: {verdict.get('error', 'no reason')}"
        )
    mac = verdict.get("mac")
    if not isinstance(mac, str) or not hmac.compare_digest(
        mac, _mac(secret, own_nonce, "acceptor")
    ):
        raise HandshakeError("peer failed to prove the shared secret")


def client_role(client_id: str = "") -> str:
    """The handshake role a daemon client authenticates as.

    A bare ``"client"`` is the anonymous default; ``"client:alice"``
    carries the client id the daemon uses for rate limiting and tenant
    cache namespacing.  The whole role string is covered by the handshake
    MAC, so a TCP peer cannot claim an id without the shared secret.
    """
    return f"client:{client_id}" if client_id else "client"


def parse_client_role(role: str) -> str | None:
    """The client id inside a handshake role, or ``None`` for non-clients."""
    if role == "client":
        return ""
    if role.startswith("client:"):
        return role[len("client:"):]
    return None


# ---------------------------------------------------------------------------
# Payloads
# ---------------------------------------------------------------------------


def encode_payload(obj) -> str:
    """Pickle ``obj`` into a JSON-safe base64 string."""
    return base64.b64encode(pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)).decode("ascii")


def decode_payload(text: str):
    """Inverse of :func:`encode_payload`.

    Only ever called on messages from a handshake-authenticated peer (or
    a same-host unix-socket peer): unpickling untrusted bytes would be
    arbitrary code execution.
    """
    return pickle.loads(base64.b64decode(text.encode("ascii")))
