"""Coordinator side of the distributed worker backend.

:mod:`repro.verifier.parallel` runs the pure prover phase of a shard on an
in-process ``ProcessPoolExecutor``.  This module provides the second
:class:`~repro.verifier.parallel.WorkerBackend` implementation:
:class:`RemoteWorkerPool` ships the same ``(shard_index, ProofTask)``
pairs -- batched, base64-pickled inside newline-JSON messages
(:mod:`repro.verifier.wire`) -- to ``jahob-py worker`` processes on the
other end of a TCP connection, and streams verdicts back in completion
order.

Workers reach the coordinator two ways, both ending in the identical
authenticated session protocol:

* the coordinator **dials** workers that are listening
  (``jahob-py worker --listen HOST:PORT`` + coordinator ``--workers
  HOST:PORT,...``);
* workers **register** with a listening coordinator
  (``jahob-py worker --connect HOST:PORT`` + a :class:`WorkerRegistry`,
  which the daemon opens with ``serve --worker-listen``).

Fault model: a worker that disconnects or crashes mid-run loses nothing
but time -- every task it had not answered is requeued onto the surviving
workers (or onto a newly registered one).  The parent keeps all cache
authority, so verdicts, prover attribution and counters stay bit-identical
to a sequential run; ``tests/verifier/test_remote_differential.py`` pins
this down, including the mid-run worker-kill case.

Session protocol (coordinator's view, after the wire handshake)::

    <- {"op": "hello", "pid": ..., "host": ..., "jahob": WIRE_VERSION}
    -> {"op": "init", "spec": [[prover, timeout], ...]}
    -> {"op": "batch", "tasks": [[index, <b64 pickle>], ...]}   (repeated)
    <- {"op": "result", "index": ..., "wall": ..., "payload": <b64>}
    <- {"op": "error", "index": ..., "error": "..."}            (prover crash)
    -> {"op": "bye"}
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque

from ..provers.dispatch import PortfolioSpec
from .parallel import WorkerBackend
from .stats import LatencyHistogram
from .wire import (
    HANDSHAKE_TIMEOUT,
    HandshakeError,
    LineChannel,
    WireError,
    connect_address,
    create_listener,
    format_address,
    handshake_accept,
    handshake_connect,
    decode_payload,
    encode_payload,
)

__all__ = [
    "RemoteWorkerError",
    "WorkerConnection",
    "WorkerRegistry",
    "RemoteWorkerPool",
    "DEFAULT_BATCH_SIZE",
]

#: Upper bound on tasks kept in flight per worker.  A refill is sent
#: whenever a worker's in-flight count drops below its *window* -- the
#: per-worker share of this bound scaled by observed throughput (see
#: :meth:`RemoteWorkerPool._window`) -- so workers never idle between
#: batches while tasks remain, and slow workers stop hoarding.
DEFAULT_BATCH_SIZE = 4

#: How long a pool with a registry waits for a replacement worker when
#: every connection died with tasks still pending.
_REPLACEMENT_WAIT = 30.0

#: How often a dispatching run with a registry interrupts its event wait
#: to adopt newly registered workers.  Without this bound a newcomer
#: would sit idle until some existing worker answered or died.
_ADOPTION_POLL = 0.5

#: Smoothing factor of the per-worker task-wall EWMA (the weight of the
#: newest sample).
_LATENCY_ALPHA = 0.3


class RemoteWorkerError(RuntimeError):
    """The remote backend cannot make progress (no workers reachable /
    left alive, or a worker reported a prover crash)."""


class WorkerConnection:
    """One authenticated session with a remote worker process.

    The connection outlives individual runs (a warm daemon reuses it for
    every request), so it owns exactly one reader thread for its whole
    life; each run points ``events`` at its own queue before dispatching.
    ``dead`` is set by the reader when the peer goes away, so a later run
    never trusts a corpse.
    """

    def __init__(
        self, channel: LineChannel, hello: dict, address: str | None, origin: str
    ) -> None:
        self.channel = channel
        self.pid = hello.get("pid", 0)
        self.host = hello.get("host", "?")
        #: The dialable address (None for registry-registered workers).
        self.address = address
        #: Where the connection came from ("dial host:port" / "registry").
        self.origin = origin
        #: Worker identity as reported in scheduling statistics
        #: (per-worker provenance in ``--perf`` output and reports).
        self.label = f"{self.host}/{self.pid}"
        #: shard_index -> ProofTask for everything sent but not answered.
        self.inflight: dict[int, object] = {}
        #: shard_index -> monotonic send time (answer-latency measurement).
        self.sent_at: dict[int, float] = {}
        self.initialized = False
        #: The current run's event sink; the reader reads it at push time.
        self.events: queue.SimpleQueue | None = None
        self.reader_started = False
        self.dead = False
        #: Exponentially weighted per-task service time, from the
        #: *worker-reported* wall seconds of each answer; ``None`` until
        #: the first answer.  Drives the pool's heterogeneous in-flight
        #: windows.  Deliberately not the coordinator-side sojourn: that
        #: includes queueing behind the worker's own window, which feeds
        #: back into the window computation and makes it oscillate.
        self.ewma_task_wall: float | None = None
        #: Coordinator-side answer-latency distribution (send -> result
        #: receipt, queueing included) for the daemon's ``metrics`` op.
        self.latency = LatencyHistogram()

    def send_init(self, spec: PortfolioSpec) -> None:
        self.channel.send(
            {"op": "init", "spec": [list(entry) for entry in spec.entries]}
        )
        self.initialized = True

    def send_batch(self, tasks: list[tuple[int, object]]) -> None:
        now = time.monotonic()
        for index, task in tasks:
            self.inflight[index] = task
            self.sent_at[index] = now
        self.channel.send(
            {
                "op": "batch",
                "tasks": [
                    [index, encode_payload(task)] for index, task in tasks
                ],
            }
        )

    def observe_answer(self, task_wall: float, sojourn: float | None) -> None:
        """Fold one answer in: the worker-reported per-task wall updates
        the throughput EWMA, the coordinator-side sojourn (when known)
        goes to the latency histogram."""
        if sojourn is not None:
            self.latency.add(sojourn)
        if task_wall <= 0.0:
            return
        if self.ewma_task_wall is None:
            self.ewma_task_wall = task_wall
        else:
            self.ewma_task_wall = (
                _LATENCY_ALPHA * task_wall
                + (1.0 - _LATENCY_ALPHA) * self.ewma_task_wall
            )

    def metrics(self) -> dict:
        """JSON-ready per-worker scheduling metrics (``metrics`` op)."""
        return {
            "worker": self.label,
            "origin": self.origin,
            "ewma_task_wall": (
                round(self.ewma_task_wall, 6)
                if self.ewma_task_wall is not None
                else None
            ),
            "inflight": len(self.inflight),
            "latency": self.latency.as_dict(),
        }

    def close(self) -> None:
        try:
            self.channel.send({"op": "bye"})
        except WireError:
            pass
        self.channel.close()


class WorkerRegistry:
    """Accept ``jahob-py worker --connect`` registrations on a TCP port.

    The registry owns only the listening socket and the handshake; ready
    connections queue up until a :class:`RemoteWorkerPool` adopts them.
    A daemon keeps one registry for its whole lifetime, so workers may
    register before, during, or between verification runs -- a worker
    that arrives mid-run is adopted at the next scheduling step.
    """

    def __init__(self, address: str, secret: bytes) -> None:
        if not secret:
            raise RemoteWorkerError(
                "a worker registry needs a shared secret (--secret-file "
                "or JAHOB_SECRET)"
            )
        self.secret = secret
        self._server = create_listener(address)
        self.address = "%s:%d" % self._server.getsockname()[:2]
        self._ready: queue.SimpleQueue[WorkerConnection] = queue.SimpleQueue()
        self._closing = False
        self._thread = threading.Thread(
            target=self._accept_loop, name="jahob-worker-registry", daemon=True
        )
        self._thread.start()

    @property
    def port(self) -> int:
        return self._server.getsockname()[1]

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                connection, _ = self._server.accept()
            except OSError:
                return  # listener closed
            # A deadline for the handshake only: a silent peer must not
            # wedge the one accept thread.  Afterwards the connection
            # blocks indefinitely -- a registered worker may sit idle for
            # hours between a daemon's requests.
            connection.settimeout(HANDSHAKE_TIMEOUT)
            channel = LineChannel(connection)
            try:
                handshake_accept(channel, self.secret, expect_role="worker")
                hello = channel.recv()
                if not isinstance(hello, dict) or hello.get("op") != "hello":
                    raise WireError("worker did not introduce itself")
            except (WireError, HandshakeError):
                channel.close()
                continue
            connection.settimeout(None)
            self._ready.put(
                WorkerConnection(channel, hello, address=None, origin="registry")
            )

    def adopt(self, timeout: float | None = None) -> WorkerConnection | None:
        """The next registered worker, or ``None`` when none arrives in
        ``timeout`` seconds (``timeout=None``: don't wait at all)."""
        try:
            if timeout is None:
                return self._ready.get_nowait()
            return self._ready.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:
        self._closing = True
        try:
            self._server.close()
        except OSError:
            pass
        while True:
            worker = self.adopt()
            if worker is None:
                break
            worker.close()


class RemoteWorkerPool(WorkerBackend):
    """Load-balance shard dispatch across remote worker processes.

    Implements the same backend surface as
    :class:`~repro.verifier.parallel.ProverPool` (``warm_up`` / ``run`` /
    ``close`` / ``matches``), so the engine, the suite scheduler and the
    daemon drive both backends through one code path.  Connections are
    established lazily on first use, mirroring the lazy executor fork of
    the in-process pool.

    ``addresses`` are listening workers to dial; ``registry`` supplies
    workers that dialed us.  Both may be used together.  ``jobs`` is the
    resulting worker count (used only for statistics labels -- the real
    parallelism is whatever is connected).
    """

    backend_name = "remote"

    def __init__(
        self,
        spec: PortfolioSpec,
        addresses: tuple[str, ...] = (),
        *,
        registry: WorkerRegistry | None = None,
        secret: bytes | None = None,
        connect_timeout: float = 10.0,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if not addresses and registry is None:
            raise RemoteWorkerError(
                "a remote pool needs worker addresses or a registry"
            )
        if addresses and not secret:
            raise RemoteWorkerError(
                "dialing TCP workers needs a shared secret (--secret-file "
                "or JAHOB_SECRET)"
            )
        self.spec = spec
        self.addresses = tuple(addresses)
        self.registry = registry
        self.secret = secret
        self.connect_timeout = connect_timeout
        self.batch_size = max(1, int(batch_size))
        self.jobs = max(1, len(self.addresses) + (1 if registry else 0))
        self._workers: list[WorkerConnection] = []
        self._dialed = False

    # -- backend surface ---------------------------------------------------------

    def matches(self, spec: PortfolioSpec, jobs: int) -> bool:
        """Remote parallelism is fixed by the configured workers, so only
        the portfolio spec decides reusability of a warm pool."""
        return self.spec == spec

    @property
    def started(self) -> bool:
        return bool(self._workers)

    def warm_up(self) -> None:
        """Dial the configured workers and adopt any registered ones now,
        so the first run (or the daemon's first request) pays no connect
        or handshake latency.  Never *waits* for registrations: a daemon
        must start serving clients before its workers show up; the first
        dispatching run blocks for a worker if none has arrived by then."""
        self._ensure_workers(minimum=0)

    def run(self, items: list[tuple[int, object]]):
        """Dispatch ``(index, task)`` pairs; yields ``(index, label, wall,
        result)`` in completion order, exactly like the in-process pool.

        Scheduling: every worker keeps up to its *window* of tasks in
        flight -- ``batch_size`` scaled down (to as little as 1) by the
        worker's observed answer latency relative to the fastest peer
        (:meth:`_window`), so a slow or distant worker stops hoarding
        long sequents while fast workers idle.  Whenever a worker
        answers, it is refilled from the front of the pending queue
        (dispatch order is preserved, which is what the suite scheduler's
        longest-class-first ordering relies on).  A worker that
        disconnects gets its unanswered tasks requeued onto the
        survivors; with none left, the pool waits briefly for a
        replacement registration before giving up.  With a registry, the
        event wait is interrupted every ``_ADOPTION_POLL`` seconds so a
        worker that registers mid-run is put to work immediately --
        not only after some existing worker answers or dies.
        """
        if not items:
            return
        self._ensure_workers(minimum=1)
        events: queue.SimpleQueue = queue.SimpleQueue()
        pending: deque[tuple[int, object]] = deque(items)
        done: set[int] = set()
        live: list[WorkerConnection] = []

        def drop(worker: WorkerConnection) -> None:
            """Forget a dead worker, requeueing its unanswered tasks."""
            if worker in live:
                live.remove(worker)
            if worker in self._workers:
                self._workers.remove(worker)
            worker.dead = True
            worker.channel.close()
            requeued = sorted(worker.inflight.items())
            worker.inflight.clear()
            worker.sent_at.clear()
            if requeued:
                pending.extendleft(reversed(requeued))

        def refill(worker: WorkerConnection) -> None:
            room = self._window(worker, live) - len(worker.inflight)
            if room <= 0 or not pending:
                return
            batch = [pending.popleft() for _ in range(min(room, len(pending)))]
            try:
                worker.send_batch(batch)
            except WireError:
                # Requeue this batch exactly once, here; the reader's
                # "gone" event (if any is still in flight) finds an empty
                # inflight map afterwards.
                for index, task in reversed(batch):
                    worker.inflight.pop(index, None)
                    worker.sent_at.pop(index, None)
                    pending.appendleft((index, task))
                drop(worker)

        def attach(worker: WorkerConnection) -> None:
            """Fold a (possibly brand-new) connection into this run."""
            if worker.dead:
                drop(worker)
                return
            worker.inflight.clear()
            worker.sent_at.clear()
            worker.events = events
            if not worker.reader_started:
                worker.reader_started = True
                self._start_reader(worker)
            if not worker.initialized:
                try:
                    worker.send_init(self.spec)
                except WireError:
                    drop(worker)
                    return
            live.append(worker)
            refill(worker)

        def adopt_newcomers() -> None:
            if self.registry is None:
                return
            newcomer = self.registry.adopt()
            while newcomer is not None:
                self._workers.append(newcomer)
                attach(newcomer)
                newcomer = self.registry.adopt()

        for worker in list(self._workers):
            attach(worker)
        while len(done) < len(items):
            adopt_newcomers()
            if not live:
                replacement = self._wait_for_replacement()
                if replacement is None:
                    raise RemoteWorkerError(
                        f"all remote workers are gone with "
                        f"{len(items) - len(done)} tasks unfinished"
                    )
                self._workers.append(replacement)
                attach(replacement)
                continue
            try:
                # A bounded wait (registry only): newly registered
                # workers must be adopted even while every live worker is
                # deep in a long prover task and no event is coming.
                kind, worker, *rest = events.get(
                    timeout=_ADOPTION_POLL if self.registry is not None else None
                )
            except queue.Empty:
                continue
            if kind == "result":
                index, wall, payload = rest
                worker.inflight.pop(index, None)
                sent = worker.sent_at.pop(index, None)
                worker.observe_answer(
                    wall, time.monotonic() - sent if sent is not None else None
                )
                refill(worker)
                if index in done:
                    continue  # belt: a verdict can only count once
                done.add(index)
                yield index, worker.label, wall, decode_payload(payload)
            elif kind == "error":
                index, message = rest
                label = worker.label
                # Drop every connection before raising: the abandoned
                # generator must not leak sockets and reader threads on
                # the surviving workers.
                self.close()
                raise RemoteWorkerError(
                    f"worker {label} failed on task {index}: {message}"
                )
            else:  # "gone"
                drop(worker)
                for survivor in list(live):
                    refill(survivor)

    def close(self, cancel_futures: bool = False) -> None:
        """Say goodbye to every worker and drop the connections.  (The
        ``cancel_futures`` flag is part of the backend surface; remote
        workers drop queued batches when the connection closes.)"""
        for worker in self._workers:
            worker.close()
        self._workers = []
        self._dialed = False

    def worker_metrics(self) -> list[dict]:
        """Per-connection scheduling metrics (latency EWMA + histogram),
        JSON-ready for the daemon's ``metrics`` op.  Iterates a list()
        snapshot: the op is lock-free and a mid-run drop/adopt mutates
        ``_workers`` concurrently."""
        return [worker.metrics() for worker in list(self._workers)]

    # -- internals ---------------------------------------------------------------

    def _window(self, worker: WorkerConnection, peers: list[WorkerConnection]) -> int:
        """The worker's current in-flight window, between 1 and
        ``batch_size``.

        Throughput is estimated by the EWMA of *worker-reported* per-task
        wall time: a worker ``k`` times slower than the fastest live peer
        gets roughly ``batch_size / k`` tasks in flight.  (Service time,
        not coordinator-side sojourn: sojourn includes queueing behind the
        worker's own window, which would feed the window back into itself
        and oscillate.)  An unmeasured worker (no answer yet) gets the
        full window -- the first answers are what calibrate it.  With
        homogeneous workers every ratio is ~1 and the windows stay at
        ``batch_size``, the pre-PR-5 behaviour.
        """
        ewma = worker.ewma_task_wall
        if ewma is None or ewma <= 0.0:
            return self.batch_size
        fastest = min(
            (
                peer.ewma_task_wall
                for peer in peers
                if peer.ewma_task_wall is not None and peer.ewma_task_wall > 0.0
            ),
            default=ewma,
        )
        scaled = int(self.batch_size * fastest / ewma + 0.5)
        return max(1, min(self.batch_size, scaled))

    def _dial(self, address: str) -> WorkerConnection:
        try:
            sock = connect_address(address, timeout=self.connect_timeout)
        except OSError as exc:
            raise RemoteWorkerError(
                f"cannot reach worker at {format_address(address)}: {exc}"
            ) from exc
        channel = LineChannel(sock)
        try:
            handshake_connect(channel, self.secret, role="coordinator")
            hello = channel.recv()
            if not isinstance(hello, dict) or hello.get("op") != "hello":
                raise WireError("worker did not introduce itself")
        except (WireError, HandshakeError) as exc:
            channel.close()
            raise RemoteWorkerError(
                f"handshake with worker at {format_address(address)} "
                f"failed: {exc}"
            ) from exc
        # The connect timeout bounded dial + handshake; from here on the
        # connection must block indefinitely (prover work and warm-daemon
        # idle periods both legitimately exceed any fixed deadline).
        sock.settimeout(None)
        return WorkerConnection(
            channel,
            hello,
            address=address,
            origin=f"dial {format_address(address)}",
        )

    def _ensure_workers(self, minimum: int) -> None:
        self._workers = [w for w in self._workers if not w.dead]
        if not self._dialed:
            # First use fails fast: an unreachable configured worker is a
            # configuration error, not a mid-run crash.
            self._dialed = True
            for address in self.addresses:
                self._workers.append(self._dial(address))
        else:
            # Between runs, quietly re-dial addresses whose connection
            # died -- a restarted worker process rejoins the next run.
            connected = {worker.address for worker in self._workers}
            for address in self.addresses:
                if address not in connected:
                    try:
                        self._workers.append(self._dial(address))
                    except RemoteWorkerError:
                        pass
        if self.registry is not None:
            while True:
                worker = self.registry.adopt()
                if worker is None:
                    break
                self._workers.append(worker)
            while len(self._workers) < minimum:
                worker = self.registry.adopt(timeout=_REPLACEMENT_WAIT)
                if worker is None:
                    raise RemoteWorkerError(
                        f"no worker registered at {self.registry.address} "
                        f"within {_REPLACEMENT_WAIT:.0f}s"
                    )
                self._workers.append(worker)
        if minimum and not self._workers:
            raise RemoteWorkerError("no remote workers available")
        self.jobs = max(1, len(self._workers))

    @staticmethod
    def _start_reader(worker: WorkerConnection) -> None:
        """The connection's single, life-long reader thread.

        It pushes into ``worker.events`` *read at push time*, so the same
        thread feeds every successive run on a warm connection.  On EOF
        or error it marks the worker dead and exits; a run that attaches
        the corpse later sees the flag.
        """

        def read_loop() -> None:
            while True:
                try:
                    message = worker.channel.recv()
                except WireError as exc:
                    worker.dead = True
                    worker.events.put(("gone", worker, str(exc)))
                    return
                if message is None:
                    worker.dead = True
                    worker.events.put(("gone", worker, "worker hung up"))
                    return
                op = message.get("op")
                if op == "result":
                    worker.events.put(
                        (
                            "result",
                            worker,
                            message.get("index"),
                            float(message.get("wall", 0.0)),
                            message.get("payload"),
                        )
                    )
                elif op == "error":
                    worker.events.put(
                        (
                            "error",
                            worker,
                            message.get("index"),
                            message.get("error", "unknown worker error"),
                        )
                    )
                # Anything else (future extensions) is ignored.

        threading.Thread(
            target=read_loop,
            name=f"jahob-remote-{worker.label}",
            daemon=True,
        ).start()

    def _wait_for_replacement(self) -> WorkerConnection | None:
        if self.registry is None:
            return None
        return self.registry.adopt(timeout=_REPLACEMENT_WAIT)
