"""Warm verification daemon: a unix-socket server that keeps the engine hot.

Every one-shot CLI invocation pays cold start: importing the package,
building the catalogue, parsing the persistent cache, and -- for parallel
runs -- forking a worker pool, all before the first sequent is answered.
:class:`VerifierDaemon` amortizes that across requests: one long-lived
:class:`~repro.verifier.engine.VerificationEngine` (with
``keep_pool_warm=True``) holds the process pool, the in-memory
:class:`~repro.provers.cache.ProofCache` and the persistent store open, so
a repeat verification is answered from warm caches in milliseconds.

Protocol
--------

Newline-delimited JSON, one request per connection: the client sends a
single JSON object terminated by ``"\\n"``, the server replies with a
single JSON object and closes the connection.  The daemon listens on an
``AF_UNIX`` stream socket (authentication: filesystem permissions) or --
``serve --tcp HOST:PORT`` -- a TCP socket, where every connection must
first pass the mutual shared-secret handshake of
:mod:`repro.verifier.wire` before its request line is read.
Every response carries ``"ok"`` (bool) and, on failure, ``"error"``.
Supported ``"op"`` values:

============  =========================================================
``ping``      liveness: pid, uptime, requests served
``list``      catalogue names
``verify``    ``{"name": ..., "strip": bool}`` -- one class; the
              ``output`` field is exactly what a local ``jahob-py
              verify`` prints, plus a structured per-sequent ``report``
``verify_file``  ``{"path": ..., "strip": bool}`` -- load every class
              model exported by the Python file at ``path``
              (:mod:`repro.frontend.loader`) and verify each; ``output``
              is exactly what a local ``jahob-py verify FILE`` prints,
              plus a ``reports`` list
``suite``     ``{"names": [...]?}`` -- suite-scheduled run
              (:mod:`repro.verifier.scheduler`); full catalogue when
              ``names`` is omitted
``table1``    suite-scheduled full catalogue, rendered as Table 1
``stats``     engine counters (:meth:`PerformanceCounters.as_dict`)
``metrics``   scheduling observability: per-worker answer-latency
              histograms, per-class measured cost profiles, cache-hit
              provenance, watch-mode latency and the last suite run's
              schedule plan
``watch``     ``{"path": ..., "interval": ..?, "max_events": ..?}`` --
              subscribe to a program file: the daemon polls its content,
              re-verifies **incrementally** on every change
              (:mod:`repro.verifier.incremental`) and streams one
              ``verdicts`` event per change over the same connection --
              the one op that breaks the one-request/one-response rule,
              which is why it exists on the socket transports only (the
              HTTP front door deliberately does not route it)
``shutdown``  flush the persistent cache and stop the server (open watch
              subscriptions are closed cleanly first)
============  =========================================================

Requests are served **concurrently**: every accepted connection gets its
own thread, so ``ping`` / ``list`` / ``stats`` are answered immediately
even while a multi-minute ``table1`` is in flight.  Ops that drive the
engine (``verify`` / ``verify_file`` / ``suite`` / ``table1`` /
``shutdown``) pass **admission control**
(:mod:`repro.verifier.admission`) before touching the engine -- the
portfolio's caches and counters are deliberately single-writer, so one
request runs at a time while the rest wait in a bounded FIFO queue with
priority lanes (``"priority": "interactive"`` ahead of ``"batch"``).  A
full queue, an over-rate client, or a busy engine under ``"nowait":
true`` are all answered at once with the structured rejection shape
``{"ok": false, "busy": true, "code": ..., "retry_after": ...}``.
Clients carry an identity -- the ``client`` request field on the trusted
unix socket, the HMAC-authenticated handshake role (``client:NAME``, see
:func:`repro.verifier.wire.client_role`) on TCP -- which keys both the
per-client token-bucket rate limit and the **per-tenant proof-cache
namespace**: one tenant's cached verdicts can neither serve nor poison
another's.

The daemon can additionally serve the same ops over an **HTTP/1.1 JSON
API** (``serve --http HOST:PORT``, :mod:`repro.verifier.http`); the route
table and semantics are documented in ``docs/service-api.md``.

Shutdown is graceful in all paths -- the ``shutdown`` op, ``SIGTERM`` /
``SIGINT`` under ``jahob-py serve``, or :meth:`VerifierDaemon.stop` from a
controlling thread: the accept loop drains, in-flight request threads are
joined, the persistent cache is flushed, the engine's warm pool is closed,
and the socket file is removed.

Clients use :class:`DaemonClient` (the CLI's ``--connect`` flag); the
``output`` field of a response is printed verbatim, so daemon-served runs
are textually identical to local ones.
"""

from __future__ import annotations

import hashlib
import os
import select
import socket
import stat
import threading
import time
from pathlib import Path

from ..provers.dispatch import default_portfolio
from ..suite.catalog import all_structures, structure_by_name
from .admission import (
    PRIORITY_LANES,
    AdmissionController,
    rejection_response,
)
from .engine import ClassReport, VerificationEngine
from .report import (
    format_suite,
    format_table1,
    format_verify,
    format_verify_file,
    table1_rows,
)
from .stats import LatencyHistogram, performance_counters
from .wire import (
    HandshakeError,
    LineChannel,
    WireError,
    client_role,
    connect_address,
    create_listener,
    handshake_accept,
    handshake_connect,
    parse_address,
    parse_client_role,
)

__all__ = ["PROTOCOL_VERSION", "DaemonError", "VerifierDaemon", "DaemonClient"]

#: Bumped on incompatible protocol changes; ``ping`` reports it so clients
#: can refuse to talk to a daemon from another era.  Version 3 added the
#: ``metrics`` op; version 4 added ``verify_file``; version 5 replaced the
#: bare busy error with admission control (structured ``code`` /
#: ``retry_after`` rejections, priority lanes, per-client rate limits and
#: tenant cache namespaces) and added the HTTP front door; version 6 added
#: the streaming ``watch`` op (incremental re-verification of a subscribed
#: file, many response events on one connection -- socket transports only).
PROTOCOL_VERSION = 6

#: Hard cap on one request line; a unix-socket peer is trusted, but a
#: corrupt client must not make the daemon buffer without bound.
_MAX_REQUEST_BYTES = 1 << 20

#: Socket-I/O deadline for reading a request line and writing a response.
#: Connections are served on their own threads, but a peer that connects
#: and then goes silent must not pin a thread (and, for TCP, a handshake)
#: forever.  Request *handling* (proving) runs between the two I/O phases
#: with no deadline.
_IO_TIMEOUT = 30.0

#: Ops that drive the verification engine and therefore serialize on the
#: daemon's engine lock; everything else is answered lock-free.
_ENGINE_OPS = frozenset({"verify", "verify_file", "suite", "table1", "shutdown"})


class DaemonError(RuntimeError):
    """Raised by :class:`DaemonClient` when the daemon cannot be reached
    or returns a malformed response, and server-side for protocol
    violations (an oversized request) that still get an error response."""


def _report_payload(report: ClassReport) -> dict:
    """A JSON-ready per-sequent view of one class report (for clients that
    want structure instead of the formatted text)."""
    return {
        "class": report.class_name,
        "verified": report.verified,
        "methods_total": report.methods_total,
        "methods_verified": report.methods_verified,
        "sequents_total": report.sequents_total,
        "sequents_proved": report.sequents_proved,
        "elapsed": report.elapsed,
        "methods": [
            {
                "method": method.method_name,
                "verified": method.verified,
                "outcomes": [
                    {
                        "label": outcome.sequent.label,
                        "proved": outcome.proved,
                        "refuted": outcome.dispatch.refuted,
                        "prover": outcome.prover,
                        "cached": outcome.dispatch.cached,
                        "origin": outcome.dispatch.cache_origin,
                    }
                    for outcome in method.outcomes
                ],
            }
            for method in report.methods
        ],
    }


class VerifierDaemon:
    """Serve verification requests over a unix or TCP socket, warm.

    Either pass a ready :class:`VerificationEngine` or let the daemon build
    one from ``jobs`` / ``cache_dir`` / ``persist`` / ``use_proof_cache`` /
    ``timeout_scale`` / ``workers`` (the same knobs the CLI exposes).  The
    engine is always put into ``keep_pool_warm`` mode: the worker pool --
    in-process or remote -- survives between requests, which is the whole
    point of the daemon.  :meth:`serve_forever` warms that pool before
    accepting the first connection, so no request pays pool start-up or
    leaks its connection fd into a forked worker.

    ``address`` may be a unix-socket path or a ``HOST:PORT`` TCP address;
    TCP requires ``secret`` (every client connection runs the
    :mod:`repro.verifier.wire` handshake first).  ``workers`` dials
    listening ``jahob-py worker`` processes; ``worker_listen`` opens a
    :class:`~repro.verifier.remote.WorkerRegistry` on a second TCP port so
    workers can register themselves (``jahob-py worker --connect``) --
    both make the daemon dispatch its prover phase remotely.
    """

    def __init__(
        self,
        address: str | Path,
        engine: VerificationEngine | None = None,
        *,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        persist: bool = True,
        use_proof_cache: bool = True,
        timeout_scale: float = 1.0,
        secret: bytes | None = None,
        workers: list[str] | str | None = None,
        worker_listen: str | None = None,
        queue_limit: int = 16,
        rate_limit: float | None = None,
        burst: float | None = None,
        http: str | None = None,
    ) -> None:
        self.address_kind, _ = parse_address(address)
        self.socket_path = Path(address) if self.address_kind == "unix" else None
        self.address = str(address)
        self.secret = secret
        if self.address_kind == "tcp" and not secret:
            raise DaemonError(
                "serving on TCP requires a shared secret "
                "(--secret-file or JAHOB_SECRET)"
            )
        if workers and not secret:
            # Same preflight the TCP listener gets: fail at construction,
            # not deep inside the first dispatching request.
            raise DaemonError(
                "--workers requires a shared secret "
                "(--secret-file or JAHOB_SECRET)"
            )
        self.registry = None
        if worker_listen is not None:
            from .remote import WorkerRegistry

            if not secret:
                raise DaemonError(
                    "a worker registry requires a shared secret "
                    "(--secret-file or JAHOB_SECRET)"
                )
            self.registry = WorkerRegistry(worker_listen, secret)
        if engine is None:
            portfolio = default_portfolio(with_cache=use_proof_cache)
            if timeout_scale != 1.0:
                portfolio = portfolio.scaled(timeout_scale)
            engine = VerificationEngine(
                portfolio,
                use_proof_cache=use_proof_cache,
                jobs=jobs,
                cache_dir=cache_dir,
                persist=persist,
                workers=workers,
                worker_secret=secret,
                worker_registry=self.registry,
            )
        engine.keep_pool_warm = True
        self.engine = engine
        self.requests_served = 0
        self.started_at = time.monotonic()
        self._stopping = False
        #: Set on stop()/close(): sleeping watch loops wake immediately so
        #: shutdown never waits out a poll interval per subscription.
        self._wake = threading.Event()
        #: Watch-mode observability, surfaced by the ``metrics`` op:
        #: subscription counts and the edit-to-verdict latency histogram.
        self.watch_subscriptions = 0
        self.watch_active = 0
        self.watch_events = 0
        self.watch_latency = LatencyHistogram()
        self._server: socket.socket | None = None
        self._bound = False  # whether *we* own the socket file
        self.admission = AdmissionController(
            queue_limit=queue_limit, rate=rate_limit, burst=burst
        )
        # The raw engine lock stays reachable under its old name: tests and
        # internal code that serialize against the engine directly keep
        # working, and the admission queue's lock-polling tolerates them.
        self._engine_lock = self.admission.lock
        self._threads: set[threading.Thread] = set()
        self.http_door = None
        if http is not None:
            from .http import HttpFrontDoor

            if not secret:
                raise DaemonError(
                    "serving HTTP requires a shared secret "
                    "(--secret-file or JAHOB_SECRET)"
                )
            self.http_door = HttpFrontDoor(http, self, secret)

    # -- lifecycle ---------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._server is not None

    def bind(self) -> None:
        """Create and bind the listening socket(s) (idempotent)."""
        if self.http_door is not None:
            self.http_door.bind()
        if self._server is not None:
            return
        if self.address_kind == "tcp":
            try:
                server = create_listener(self.address)
            except OSError as exc:
                raise DaemonError(f"cannot bind {self.address}: {exc}") from exc
            server.settimeout(0.2)
            # Resolve ":0" to the actual port for logs and clients.
            self.address = "%s:%d" % server.getsockname()[:2]
            self._server = server
            return
        # A stale socket file from a crashed daemon: refuse to steal a
        # *live* daemon's address, silently replace a dead one's -- and
        # never delete something that is not a socket at all (e.g. a
        # mistyped --socket pointing at a real file).  A FileNotFoundError
        # from stat() means a racing daemon just cleaned the path up.
        try:
            mode = self.socket_path.stat().st_mode
        except FileNotFoundError:
            mode = None
        if mode is not None:
            if not stat.S_ISSOCK(mode):
                raise DaemonError(
                    f"{self.socket_path} exists and is not a socket; "
                    "refusing to replace it"
                )
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.settimeout(1.0)
                probe.connect(str(self.socket_path))
            except ConnectionRefusedError:
                # Nobody behind the file: a crashed daemon's leftovers.
                self.socket_path.unlink(missing_ok=True)
            except OSError as exc:
                # Anything ambiguous (e.g. a timeout because the daemon is
                # busy with a long request and its backlog is full) must
                # not cost a live daemon its address.
                raise DaemonError(
                    f"cannot tell whether a daemon is live on "
                    f"{self.socket_path} ({exc}); not replacing it"
                ) from exc
            else:
                raise DaemonError(
                    f"another daemon is already listening on {self.socket_path}"
                )
            finally:
                probe.close()
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            server.bind(str(self.socket_path))
            server.listen(8)
        except OSError as exc:
            # EADDRINUSE from a concurrent bind race, an unwritable
            # directory, ...: a clean error beats a traceback.
            server.close()
            raise DaemonError(f"cannot bind {self.socket_path}: {exc}") from exc
        # A finite accept timeout keeps the loop responsive to stop();
        # requests themselves are served without a deadline (proving is
        # slow by design).
        server.settimeout(0.2)
        self._server = server
        self._bound = True

    def serve_forever(self) -> None:
        """Bind (if needed) and serve until :meth:`stop` or a ``shutdown`` op.

        Always tears down gracefully: the persistent cache is flushed, the
        warm pool is closed and the socket file is removed, even when the
        loop exits via an exception (e.g. ``KeyboardInterrupt``).
        """
        try:
            # Fork the worker pool before the listening socket even
            # exists: workers forked after bind would inherit the
            # listener's fd (orphans after a crash keep the address alive
            # and block stale-socket takeover), workers forked mid-request
            # would inherit the accepted connection fd, and the first
            # request would pay pool start-up.  (Remote backends merely
            # dial out here; nothing is forked.)
            self.engine.warm_pool()
            self.bind()
            if self.http_door is not None:
                self.http_door.start()
            while not self._stopping:
                # Local alias: a concurrent close() nulls self._server, and
                # the loop must see either the live socket (whose close()
                # surfaces here as OSError) or exit -- never an attribute
                # load on None.
                server = self._server
                if server is None:
                    break
                try:
                    connection, _ = server.accept()
                except socket.timeout:
                    continue
                except OSError:
                    if self._stopping:
                        break
                    raise
                self._threads = {
                    thread for thread in self._threads if thread.is_alive()
                }
                thread = threading.Thread(
                    target=self._serve_connection_thread,
                    args=(connection,),
                    name="jahob-daemon-request",
                    daemon=True,
                )
                self._threads.add(thread)
                thread.start()
        finally:
            # Let in-flight requests finish writing their responses (the
            # shutdown op's own response among them) before tearing the
            # engine down under their feet.
            for thread in tuple(self._threads):
                thread.join(timeout=_IO_TIMEOUT)
            self.close()

    def stop(self) -> None:
        """Ask the accept loop to exit after the in-flight request.

        Waking the watch event first lets every open ``watch``
        subscription send its ``closed`` event and hang up before the
        shutdown join deadline, so no client is ever left blocked on a
        read."""
        self._stopping = True
        self._wake.set()

    def close(self) -> None:
        """Flush caches, close the warm pool, remove the socket file.

        Only unlinks the socket file when this instance actually bound it
        -- closing a daemon whose :meth:`bind` failed must never delete a
        live daemon's address.
        """
        self._stopping = True
        self._wake.set()
        # Unlink before closing the listening socket: the reverse order
        # has a window where a new daemon sees the probe refused, takes
        # over the path, and then loses its fresh socket file to our
        # unlink.
        if self._bound:
            self._bound = False
            try:
                self.socket_path.unlink()
            except OSError:
                pass
        if self._server is not None:
            self._server.close()
            self._server = None
        if self.http_door is not None:
            self.http_door.close()
        if self.registry is not None:
            self.registry.close()
        # Never tear the engine down under a still-running engine op: if
        # a request thread outlived the bounded join in serve_forever,
        # waiting on the slot here is what keeps the flush-on-shutdown
        # guarantee (a flush racing a cache-mutating verify is not a
        # flush).  exclusive() queues behind admitted work but bypasses
        # the queue bound and rate limits -- teardown is never load-shed.
        with self.admission.exclusive():
            self.engine.close()

    # -- one request -------------------------------------------------------------

    def _serve_connection_thread(self, connection: socket.socket) -> None:
        try:
            self._serve_connection(connection)
        finally:
            try:
                connection.close()
            except OSError:
                pass

    def _serve_connection(self, connection: socket.socket) -> None:
        connection.settimeout(_IO_TIMEOUT)
        channel = LineChannel(connection, limit=_MAX_REQUEST_BYTES)
        client: str | None = None
        if self.address_kind == "tcp":
            try:
                role = handshake_accept(channel, self.secret, expect_role="client")
            except (WireError, HandshakeError):
                # An unauthenticated peer gets nothing, not even an op
                # error; handshake_accept already said "handshake failed".
                return
            # The id inside "client:NAME" is MAC-covered by the handshake,
            # so it overrides anything the request body claims; a bare
            # "client" role stays anonymous.
            client = parse_client_role(role) or ""
        try:
            try:
                request = channel.recv()
            except WireError as exc:
                # Protocol violation (oversized request, bad JSON): still
                # answer, so the client can tell it from a daemon crash.
                response = {"ok": False, "error": str(exc)}
            else:
                if request is None:
                    return  # clean hang-up before any request
                if isinstance(request, dict) and request.get("op") == "watch":
                    # The streaming op: many responses on one connection,
                    # served entirely inside the subscription loop.
                    self._serve_watch(channel, connection, request, client)
                    return
                response = self.handle(request, client=client)
            channel.send(response)
        except (OSError, WireError):
            # A client that hung up mid-request costs us nothing; the
            # daemon must outlive its clients.
            pass

    # -- watch mode ---------------------------------------------------------------

    @staticmethod
    def _file_digest(path: str) -> str | None:
        """Content digest of the watched file; ``None`` while unreadable
        (e.g. the editor is mid-save with a temp-file rename)."""
        try:
            with open(path, "rb") as handle:
                return hashlib.sha256(handle.read()).hexdigest()
        except OSError:
            return None

    def _serve_watch(
        self,
        channel: LineChannel,
        connection: socket.socket,
        request: dict,
        client: str | None,
    ) -> None:
        """Serve one ``watch`` subscription until the client hangs up, the
        event budget is exhausted, or the daemon shuts down.

        The first verification fires immediately (the subscriber wants a
        baseline verdict), then the file's content digest is polled every
        ``interval`` seconds and each change streams one incremental
        ``verdicts`` event.  The subscription always ends with a
        ``closed`` event carrying the reason, so clients never block on a
        read that nothing will answer.
        """
        path = request.get("path")
        if not isinstance(path, str):
            channel.send({"ok": False, "error": "watch needs a 'path' string"})
            return
        path = os.path.abspath(path)
        if not os.path.isfile(path):
            channel.send({"ok": False, "error": f"watch: no such file: {path}"})
            return
        try:
            interval = float(request.get("interval", 0.5))
        except (TypeError, ValueError):
            channel.send({"ok": False, "error": "watch: 'interval' must be a number"})
            return
        interval = min(max(interval, 0.05), 10.0)
        max_events = request.get("max_events")
        if max_events is not None:
            try:
                max_events = int(max_events)
            except (TypeError, ValueError):
                max_events = 0
            if max_events <= 0:
                channel.send(
                    {"ok": False, "error": "watch: 'max_events' must be a positive int"}
                )
                return
        priority = request.get("priority", "interactive")
        if priority not in PRIORITY_LANES:
            channel.send(
                {
                    "ok": False,
                    "error": f"unknown priority {priority!r} "
                    f"(expected one of {', '.join(PRIORITY_LANES)})",
                }
            )
            return
        client_id = client if client is not None else str(request.get("client") or "")
        self.requests_served += 1
        self.watch_subscriptions += 1
        self.watch_active += 1
        events = 0
        reason = "client"
        try:
            channel.send(
                {
                    "ok": True,
                    "event": "subscribed",
                    "path": path,
                    "interval": interval,
                    "protocol": PROTOCOL_VERSION,
                }
            )
            last_digest = None
            while True:
                if self._stopping:
                    reason = "shutdown"
                    break
                digest = self._file_digest(path)
                if digest is not None and digest != last_digest:
                    last_digest = digest
                    event = self._watch_verify(path, client_id, priority)
                    events += 1
                    event["generation"] = events
                    channel.send(event)
                    if max_events is not None and events >= max_events:
                        reason = "max_events"
                        break
                # Any inbound byte ends the subscription: a clean client
                # hang-up (EOF) and an explicit unsubscribe line look the
                # same from here, and neither should keep the loop alive.
                if select.select([connection], [], [], 0)[0]:
                    reason = "client"
                    break
                if self._wake.wait(interval):
                    reason = "shutdown"
                    break
        except (OSError, WireError):
            reason = "client"
        finally:
            self.watch_active -= 1
            try:
                channel.send(
                    {"ok": True, "event": "closed", "reason": reason, "events": events}
                )
            except (OSError, WireError):
                pass

    def _watch_verify(self, path: str, client_id: str, priority: str) -> dict:
        """One watch cycle: admit, load, verify incrementally, report.

        Runs under the same admission control as every engine op (each
        cycle takes and releases the engine slot, so a watch subscription
        never starves interactive requests), and folds the edit-to-verdict
        latency into the watch histogram the ``metrics`` op reports.
        """
        from ..frontend.loader import ProgramLoadError, load_class_models

        start = time.monotonic()
        decision = self.admission.admit(client=client_id, priority=priority)
        if not decision.admitted:
            response = rejection_response(decision)
            response["event"] = "rejected"
            return response
        self.engine.set_cache_namespace(client_id)
        try:
            models = load_class_models(path)
            classes = []
            for model in models:
                report, incremental = self.engine.verify_class_incremental(model)
                payload = _report_payload(report)
                payload["incremental"] = incremental.as_dict()
                classes.append(payload)
        except ProgramLoadError as exc:
            # A mid-edit syntax error is normal watch traffic: report it
            # and keep the subscription alive for the next save.
            return {"ok": True, "event": "error", "path": path, "error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - the stream must survive
            return {
                "ok": True,
                "event": "error",
                "path": path,
                "error": f"{type(exc).__name__}: {exc}",
            }
        finally:
            self.engine.set_cache_namespace("")
            self.admission.release()
        latency = time.monotonic() - start
        self.watch_latency.add(latency)
        self.watch_events += 1
        return {
            "ok": True,
            "event": "verdicts",
            "path": path,
            "verified": all(entry["verified"] for entry in classes),
            "classes": classes,
            "latency": latency,
            # The carried PR 5 follow-up: the live view surfaces the full
            # metrics snapshot with every verdict delta.
            "metrics": self._op_metrics({}),
        }

    # -- request handling ---------------------------------------------------------

    def handle(self, request: dict, *, client: str | None = None) -> dict:
        """Execute one request object and return the response object.

        Exposed directly (besides the socket loop) so tests can exercise
        op semantics without a live socket.  Engine-driving ops pass
        admission control first: a busy engine queues the request in its
        priority lane (``"priority"``, default ``interactive``) unless
        ``"nowait": true``, and a full queue or over-rate client is
        rejected immediately with the structured shape of
        :func:`repro.verifier.admission.rejection_response`.

        ``client`` is the transport-authenticated client id (TCP handshake
        role, HTTP signed header); ``None`` means the transport carries no
        identity and the trusted ``"client"`` request field is used
        instead (the unix socket and direct ``handle`` calls).
        """
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            return {"ok": False, "error": f"unknown op {op!r}"}
        client_id = client if client is not None else str(request.get("client") or "")
        priority = request.get("priority", "interactive")
        if priority not in PRIORITY_LANES:
            return {
                "ok": False,
                "error": f"unknown priority {priority!r} "
                f"(expected one of {', '.join(PRIORITY_LANES)})",
            }
        admitted = False
        if op in _ENGINE_OPS:
            decision = self.admission.admit(
                client=client_id,
                priority=priority,
                nowait=bool(request.get("nowait")),
            )
            if not decision.admitted:
                return rejection_response(decision)
            admitted = True
            # The engine slot is exclusive, so retargeting the shared
            # proof cache at this tenant's namespace is race-free.
            self.engine.set_cache_namespace(client_id)
        try:
            self.requests_served += 1
            start = time.monotonic()
            try:
                response = handler(request)
            except Exception as exc:  # noqa: BLE001 - must survive any op
                return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            response.setdefault("ok", True)
            response["elapsed"] = time.monotonic() - start
            return response
        finally:
            if admitted:
                self.engine.set_cache_namespace("")
                self.admission.release()

    def _op_ping(self, request: dict) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime": time.monotonic() - self.started_at,
            "requests": self.requests_served,
        }

    def _op_list(self, request: dict) -> dict:
        return {"structures": [cls.name for cls in all_structures()]}

    def _op_verify(self, request: dict) -> dict:
        name = request.get("name")
        if not isinstance(name, str):
            return {"ok": False, "error": "verify needs a 'name' string"}
        cls = structure_by_name(name)
        report = self.engine.verify_class(
            cls, strip_proofs=bool(request.get("strip", False))
        )
        return {
            "output": format_verify(report),
            "exit": 0 if report.verified else 1,
            "report": _report_payload(report),
        }

    def _op_verify_file(self, request: dict) -> dict:
        path = request.get("path")
        if not isinstance(path, str):
            return {"ok": False, "error": "verify_file needs a 'path' string"}
        from ..frontend.loader import ProgramLoadError, load_class_models

        try:
            models = load_class_models(path)
        except ProgramLoadError as exc:
            return {"ok": False, "error": str(exc)}
        strip = bool(request.get("strip", False))
        reports = [
            self.engine.verify_class(model, strip_proofs=strip)
            for model in models
        ]
        return {
            "output": format_verify_file(path, reports),
            "exit": 0 if all(report.verified for report in reports) else 1,
            "reports": [_report_payload(report) for report in reports],
        }

    def _suite_reports(self, request: dict) -> list[ClassReport]:
        names = request.get("names")
        if names is None:
            classes = all_structures()
        else:
            classes = [structure_by_name(name) for name in names]
        return self.engine.verify_suite(classes)

    def _op_suite(self, request: dict) -> dict:
        reports = self._suite_reports(request)
        stats = self.engine.last_suite_stats
        return {
            "output": format_suite(stats),
            "exit": 0 if all(report.verified for report in reports) else 1,
            "reports": [_report_payload(report) for report in reports],
        }

    def _op_table1(self, request: dict) -> dict:
        # Always the full catalogue ("names" is not honoured: a table with
        # holes is not Table 1).
        reports = self._suite_reports({})
        rows = table1_rows(all_structures(), reports=reports)
        # Like the local CLI, generating the table is the success criterion
        # (unverified classes are visible in the table itself).
        return {"output": format_table1(rows), "exit": 0}

    def _op_stats(self, request: dict) -> dict:
        counters = performance_counters(self.engine.portfolio)
        response = {
            "counters": counters.as_dict(),
            "cache_entries": (
                len(self.engine.portfolio.proof_cache)
                if self.engine.portfolio.proof_cache is not None
                else 0
            ),
            "pool_warm": self.engine.pool_warm,
        }
        if self.engine.persistent_store is not None:
            response["persistent_cache"] = {
                "path": str(self.engine.persistent_store.path),
                "status": self.engine.persistent_store.last_load_status,
            }
        if self.engine.uses_remote_workers:
            pool = self.engine._pool
            response["remote_workers"] = {
                "configured": list(self.engine.remote_workers),
                "registry": (
                    self.registry.address if self.registry is not None else None
                ),
                "connected": [
                    worker.label
                    for worker in getattr(pool, "_workers", ())
                ],
            }
        return response

    def _op_metrics(self, request: dict) -> dict:
        """Scheduling observability, answered lock-free (like ``stats``):
        latency histograms, measured class costs, cache provenance and
        the last suite plan are all readable while the engine proves."""
        engine = self.engine
        counters = performance_counters(engine.portfolio)
        response = {
            "protocol": PROTOCOL_VERSION,
            "counters": counters.as_dict(),
            "cost_model": engine.cost_model.as_dict(),
            "workers": engine.worker_metrics(),
            "admission": self.admission.snapshot(),
            "watch": {
                "subscriptions": self.watch_subscriptions,
                "active": self.watch_active,
                "events": self.watch_events,
                "latency": self.watch_latency.as_dict(),
            },
            "schedule": None,
        }
        stats = engine.last_suite_stats
        if stats is not None:
            response["schedule"] = {
                "jobs": stats.jobs,
                "backend": stats.backend,
                "order": list(stats.schedule_order),
                "classes": [
                    {
                        "class": cls.class_name,
                        "cost": round(cls.cost_hint, 6),
                        "source": cls.hint_source,
                        "sequents": cls.sequents,
                        "dispatched": cls.dispatched,
                        "cache_hits": cls.hits_memory + cls.hits_disk,
                        "duplicates": cls.duplicates_folded,
                    }
                    for cls in stats.classes
                ],
            }
        if engine.persistent_store is not None:
            response["persistent_cache"] = {
                "path": str(engine.persistent_store.path),
                "status": engine.persistent_store.last_load_status,
            }
        return response

    def _op_shutdown(self, request: dict) -> dict:
        # ``flushed`` is the delta written *now* (usually 0: verify ops
        # flush as they go); ``cache_entries`` is the total warm state.
        flushed = self.engine.flush_persistent_cache()
        cache = self.engine.portfolio.proof_cache
        self.stop()
        return {
            "flushed": flushed,
            "cache_entries": len(cache) if cache is not None else 0,
        }


class DaemonClient:
    """Talk to a :class:`VerifierDaemon` over its unix or TCP socket.

    One request per connection, mirroring the server.  ``connect_timeout``
    bounds the connect phase (and, for TCP, the handshake); a verification
    request may legitimately run for minutes, so reads wait indefinitely
    once connected.  TCP addresses require the daemon's shared ``secret``.
    """

    def __init__(
        self,
        address: str | Path,
        connect_timeout: float = 5.0,
        secret: bytes | None = None,
        client_id: str = "",
    ) -> None:
        self.address = str(address)
        self.is_tcp = parse_address(address)[0] == "tcp"
        self.connect_timeout = connect_timeout
        self.secret = secret
        self.client_id = client_id

    def request(self, payload: dict) -> dict:
        """Send one request object and return the parsed response object.

        On TCP the client id (if any) rides in the handshake role, where
        the HMAC covers it; on the unix socket it is added as the trusted
        ``client`` request field unless the payload already carries one.
        """
        if self.is_tcp and not self.secret:
            raise DaemonError(
                f"connecting to the TCP daemon at {self.address} requires "
                "a shared secret (--secret-file or JAHOB_SECRET)"
            )
        try:
            sock = connect_address(self.address, timeout=self.connect_timeout)
        except OSError as exc:
            raise DaemonError(
                f"cannot connect to daemon at {self.address}: {exc}"
            ) from exc
        if not self.is_tcp and self.client_id:
            payload = {"client": self.client_id, **payload}
        channel = LineChannel(sock)
        try:
            if self.is_tcp:
                try:
                    handshake_connect(
                        channel, self.secret, role=client_role(self.client_id)
                    )
                except (WireError, HandshakeError) as exc:
                    raise DaemonError(
                        f"handshake with daemon at {self.address} "
                        f"failed: {exc}"
                    ) from exc
            sock.settimeout(None)
            try:
                channel.send(payload)
                response = channel.recv()
            except WireError as exc:
                # E.g. the daemon shut down between our connect and send.
                raise DaemonError(
                    f"lost connection to daemon at {self.address}: {exc}"
                ) from exc
        finally:
            channel.close()
        if response is None:
            raise DaemonError("daemon closed the connection without a response")
        return response

    def watch(self, payload: dict):
        """Subscribe to a ``watch`` stream; yields event objects.

        The generator holds one connection for the whole subscription (the
        one op that streams) and ends after the daemon's ``closed`` event,
        a validation error response, or a server hang-up.  Closing the
        generator (or just dropping it) hangs the connection up, which the
        daemon takes as an unsubscribe.
        """
        if self.is_tcp and not self.secret:
            raise DaemonError(
                f"connecting to the TCP daemon at {self.address} requires "
                "a shared secret (--secret-file or JAHOB_SECRET)"
            )
        try:
            sock = connect_address(self.address, timeout=self.connect_timeout)
        except OSError as exc:
            raise DaemonError(
                f"cannot connect to daemon at {self.address}: {exc}"
            ) from exc
        payload = {**payload, "op": "watch"}
        if not self.is_tcp and self.client_id and "client" not in payload:
            payload = {"client": self.client_id, **payload}
        channel = LineChannel(sock)
        try:
            if self.is_tcp:
                try:
                    handshake_connect(
                        channel, self.secret, role=client_role(self.client_id)
                    )
                except (WireError, HandshakeError) as exc:
                    raise DaemonError(
                        f"handshake with daemon at {self.address} "
                        f"failed: {exc}"
                    ) from exc
            sock.settimeout(None)
            try:
                channel.send(payload)
            except WireError as exc:
                raise DaemonError(
                    f"lost connection to daemon at {self.address}: {exc}"
                ) from exc
            while True:
                try:
                    event = channel.recv()
                except WireError as exc:
                    raise DaemonError(
                        f"lost watch stream from daemon at {self.address}: {exc}"
                    ) from exc
                if event is None:
                    return
                yield event
                if not isinstance(event, dict):
                    return
                if event.get("event") == "closed" or "event" not in event:
                    # "closed" ends a healthy stream; an event-less object
                    # is a validation error response, which is terminal.
                    return
        finally:
            channel.close()

    # Small conveniences used by the CLI and the tests.

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})
