"""Warm verification daemon: a unix-socket server that keeps the engine hot.

Every one-shot CLI invocation pays cold start: importing the package,
building the catalogue, parsing the persistent cache, and -- for parallel
runs -- forking a worker pool, all before the first sequent is answered.
:class:`VerifierDaemon` amortizes that across requests: one long-lived
:class:`~repro.verifier.engine.VerificationEngine` (with
``keep_pool_warm=True``) holds the process pool, the in-memory
:class:`~repro.provers.cache.ProofCache` and the persistent store open, so
a repeat verification is answered from warm caches in milliseconds.

Protocol
--------

Newline-delimited JSON over an ``AF_UNIX`` stream socket, one request per
connection: the client sends a single JSON object terminated by ``"\\n"``,
the server replies with a single JSON object and closes the connection.
Every response carries ``"ok"`` (bool) and, on failure, ``"error"``.
Supported ``"op"`` values:

============  =========================================================
``ping``      liveness: pid, uptime, requests served
``list``      catalogue names
``verify``    ``{"name": ..., "strip": bool}`` -- one class; the
              ``output`` field is exactly what a local ``jahob-py
              verify`` prints, plus a structured per-sequent ``report``
``suite``     ``{"names": [...]?}`` -- suite-scheduled run
              (:mod:`repro.verifier.scheduler`); full catalogue when
              ``names`` is omitted
``table1``    suite-scheduled full catalogue, rendered as Table 1
``stats``     engine counters (:meth:`PerformanceCounters.as_dict`)
``shutdown``  flush the persistent cache and stop the server
============  =========================================================

Shutdown is graceful in all paths -- the ``shutdown`` op, ``SIGTERM`` /
``SIGINT`` under ``jahob-py serve``, or :meth:`VerifierDaemon.stop` from a
controlling thread: the accept loop drains, the persistent cache is
flushed, the engine's warm pool is closed, and the socket file is removed.

Clients use :class:`DaemonClient` (the CLI's ``--connect`` flag); the
``output`` field of a response is printed verbatim, so daemon-served runs
are textually identical to local ones.
"""

from __future__ import annotations

import json
import os
import socket
import stat
import time
from pathlib import Path

from ..provers.dispatch import default_portfolio
from ..suite.catalog import all_structures, structure_by_name
from .engine import ClassReport, VerificationEngine
from .report import format_suite, format_table1, format_verify, table1_rows
from .stats import performance_counters

__all__ = ["PROTOCOL_VERSION", "DaemonError", "VerifierDaemon", "DaemonClient"]

#: Bumped on incompatible protocol changes; ``ping`` reports it so clients
#: can refuse to talk to a daemon from another era.
PROTOCOL_VERSION = 1

#: Hard cap on one request line; a unix-socket peer is trusted, but a
#: corrupt client must not make the daemon buffer without bound.
_MAX_REQUEST_BYTES = 1 << 20

#: Socket-I/O deadline for reading a request line and writing a response.
#: The daemon serves one connection at a time, so a peer that connects and
#: then goes silent must not park the accept loop forever.  Request
#: *handling* (proving) runs between the two I/O phases with no deadline.
_IO_TIMEOUT = 30.0


class DaemonError(RuntimeError):
    """Raised by :class:`DaemonClient` when the daemon cannot be reached
    or returns a malformed response, and server-side for protocol
    violations (an oversized request) that still get an error response."""


def _read_line(sock: socket.socket, limit: int | None = None) -> bytes:
    """Read one newline-delimited protocol line (the framing both sides
    share).

    Stops at the first ``"\\n"`` -- NOT at EOF, which on the client side
    may only arrive long after the response (worker processes forked
    while a request is in flight inherit the accepted connection fd).
    EOF before the delimiter returns whatever arrived; exceeding
    ``limit`` bytes raises :class:`DaemonError`.
    """
    chunks = []
    total = 0
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        chunks.append(chunk)
        total += len(chunk)
        if limit is not None and total > limit:
            raise DaemonError("request too large")
        if b"\n" in chunk:
            break
    return b"".join(chunks).split(b"\n", 1)[0]


def _report_payload(report: ClassReport) -> dict:
    """A JSON-ready per-sequent view of one class report (for clients that
    want structure instead of the formatted text)."""
    return {
        "class": report.class_name,
        "verified": report.verified,
        "methods_total": report.methods_total,
        "methods_verified": report.methods_verified,
        "sequents_total": report.sequents_total,
        "sequents_proved": report.sequents_proved,
        "elapsed": report.elapsed,
        "methods": [
            {
                "method": method.method_name,
                "verified": method.verified,
                "outcomes": [
                    {
                        "label": outcome.sequent.label,
                        "proved": outcome.proved,
                        "refuted": outcome.dispatch.refuted,
                        "prover": outcome.prover,
                        "cached": outcome.dispatch.cached,
                        "origin": outcome.dispatch.cache_origin,
                    }
                    for outcome in method.outcomes
                ],
            }
            for method in report.methods
        ],
    }


class VerifierDaemon:
    """Serve verification requests over a unix socket with warm state.

    Either pass a ready :class:`VerificationEngine` or let the daemon build
    one from ``jobs`` / ``cache_dir`` / ``persist`` / ``use_proof_cache`` /
    ``timeout_scale`` (the same knobs the CLI exposes).  The engine is
    always put into ``keep_pool_warm`` mode: the worker pool survives
    between requests, which is the whole point of the daemon.
    :meth:`serve_forever` forks that pool before accepting the first
    connection, so no request pays pool start-up or leaks its connection
    fd into a worker.
    """

    def __init__(
        self,
        socket_path: str | Path,
        engine: VerificationEngine | None = None,
        *,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        persist: bool = True,
        use_proof_cache: bool = True,
        timeout_scale: float = 1.0,
    ) -> None:
        self.socket_path = Path(socket_path)
        if engine is None:
            portfolio = default_portfolio(with_cache=use_proof_cache)
            if timeout_scale != 1.0:
                portfolio = portfolio.scaled(timeout_scale)
            engine = VerificationEngine(
                portfolio,
                use_proof_cache=use_proof_cache,
                jobs=jobs,
                cache_dir=cache_dir,
                persist=persist,
            )
        engine.keep_pool_warm = True
        self.engine = engine
        self.requests_served = 0
        self.started_at = time.monotonic()
        self._stopping = False
        self._server: socket.socket | None = None
        self._bound = False  # whether *we* own the socket file

    # -- lifecycle ---------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._server is not None

    def bind(self) -> None:
        """Create and bind the listening socket (idempotent)."""
        if self._server is not None:
            return
        # A stale socket file from a crashed daemon: refuse to steal a
        # *live* daemon's address, silently replace a dead one's -- and
        # never delete something that is not a socket at all (e.g. a
        # mistyped --socket pointing at a real file).  A FileNotFoundError
        # from stat() means a racing daemon just cleaned the path up.
        try:
            mode = self.socket_path.stat().st_mode
        except FileNotFoundError:
            mode = None
        if mode is not None:
            if not stat.S_ISSOCK(mode):
                raise DaemonError(
                    f"{self.socket_path} exists and is not a socket; "
                    "refusing to replace it"
                )
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.settimeout(1.0)
                probe.connect(str(self.socket_path))
            except ConnectionRefusedError:
                # Nobody behind the file: a crashed daemon's leftovers.
                self.socket_path.unlink(missing_ok=True)
            except OSError as exc:
                # Anything ambiguous (e.g. a timeout because the daemon is
                # busy with a long request and its backlog is full) must
                # not cost a live daemon its address.
                raise DaemonError(
                    f"cannot tell whether a daemon is live on "
                    f"{self.socket_path} ({exc}); not replacing it"
                ) from exc
            else:
                raise DaemonError(
                    f"another daemon is already listening on {self.socket_path}"
                )
            finally:
                probe.close()
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            server.bind(str(self.socket_path))
            server.listen(8)
        except OSError as exc:
            # EADDRINUSE from a concurrent bind race, an unwritable
            # directory, ...: a clean error beats a traceback.
            server.close()
            raise DaemonError(
                f"cannot bind {self.socket_path}: {exc}"
            ) from exc
        # A finite accept timeout keeps the loop responsive to stop();
        # requests themselves are served without a deadline (proving is
        # slow by design).
        server.settimeout(0.2)
        self._server = server
        self._bound = True

    def serve_forever(self) -> None:
        """Bind (if needed) and serve until :meth:`stop` or a ``shutdown`` op.

        Always tears down gracefully: the persistent cache is flushed, the
        warm pool is closed and the socket file is removed, even when the
        loop exits via an exception (e.g. ``KeyboardInterrupt``).
        """
        try:
            # Fork the worker pool before the listening socket even
            # exists: workers forked after bind would inherit the
            # listener's fd (orphans after a crash keep the address alive
            # and block stale-socket takeover), workers forked mid-request
            # would inherit the accepted connection fd, and the first
            # request would pay pool start-up.
            self.engine.warm_pool()
            self.bind()
            while not self._stopping:
                # Local alias: a concurrent close() nulls self._server, and
                # the loop must see either the live socket (whose close()
                # surfaces here as OSError) or exit -- never an attribute
                # load on None.
                server = self._server
                if server is None:
                    break
                try:
                    connection, _ = server.accept()
                except socket.timeout:
                    continue
                except OSError:
                    if self._stopping:
                        break
                    raise
                with connection:
                    self._serve_connection(connection)
        finally:
            self.close()

    def stop(self) -> None:
        """Ask the accept loop to exit after the in-flight request."""
        self._stopping = True

    def close(self) -> None:
        """Flush caches, close the warm pool, remove the socket file.

        Only unlinks the socket file when this instance actually bound it
        -- closing a daemon whose :meth:`bind` failed must never delete a
        live daemon's address.
        """
        self._stopping = True
        # Unlink before closing the listening socket: the reverse order
        # has a window where a new daemon sees the probe refused, takes
        # over the path, and then loses its fresh socket file to our
        # unlink.
        if self._bound:
            self._bound = False
            try:
                self.socket_path.unlink()
            except OSError:
                pass
        if self._server is not None:
            self._server.close()
            self._server = None
        self.engine.close()

    # -- one request -------------------------------------------------------------

    def _serve_connection(self, connection: socket.socket) -> None:
        connection.settimeout(_IO_TIMEOUT)
        try:
            try:
                raw = self._recv_line(connection)
                request = json.loads(raw.decode("utf-8"))
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except DaemonError as exc:
                # Protocol violation (oversized request): still answer,
                # so the client can tell it from a daemon crash.
                response = {"ok": False, "error": str(exc)}
            except (ValueError, UnicodeDecodeError) as exc:
                response = {"ok": False, "error": f"bad request: {exc}"}
            else:
                response = self.handle(request)
            connection.sendall(
                json.dumps(response, separators=(",", ":")).encode("utf-8") + b"\n"
            )
        except OSError:
            # A client that hung up mid-request costs us nothing; the
            # daemon must outlive its clients.
            pass

    @staticmethod
    def _recv_line(connection: socket.socket) -> bytes:
        return _read_line(connection, limit=_MAX_REQUEST_BYTES)

    # -- request handling ---------------------------------------------------------

    def handle(self, request: dict) -> dict:
        """Execute one request object and return the response object.

        Exposed directly (besides the socket loop) so tests can exercise
        op semantics without a live socket.
        """
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            return {"ok": False, "error": f"unknown op {op!r}"}
        self.requests_served += 1
        start = time.monotonic()
        try:
            response = handler(request)
        except Exception as exc:  # noqa: BLE001 - the daemon must survive any op
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        response.setdefault("ok", True)
        response["elapsed"] = time.monotonic() - start
        return response

    def _op_ping(self, request: dict) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime": time.monotonic() - self.started_at,
            "requests": self.requests_served,
        }

    def _op_list(self, request: dict) -> dict:
        return {"structures": [cls.name for cls in all_structures()]}

    def _op_verify(self, request: dict) -> dict:
        name = request.get("name")
        if not isinstance(name, str):
            return {"ok": False, "error": "verify needs a 'name' string"}
        cls = structure_by_name(name)
        report = self.engine.verify_class(
            cls, strip_proofs=bool(request.get("strip", False))
        )
        return {
            "output": format_verify(report),
            "exit": 0 if report.verified else 1,
            "report": _report_payload(report),
        }

    def _suite_reports(self, request: dict) -> list[ClassReport]:
        names = request.get("names")
        if names is None:
            classes = all_structures()
        else:
            classes = [structure_by_name(name) for name in names]
        return self.engine.verify_suite(classes)

    def _op_suite(self, request: dict) -> dict:
        reports = self._suite_reports(request)
        stats = self.engine.last_suite_stats
        return {
            "output": format_suite(stats),
            "exit": 0 if all(report.verified for report in reports) else 1,
            "reports": [_report_payload(report) for report in reports],
        }

    def _op_table1(self, request: dict) -> dict:
        # Always the full catalogue ("names" is not honoured: a table with
        # holes is not Table 1).
        reports = self._suite_reports({})
        rows = table1_rows(all_structures(), reports=reports)
        # Like the local CLI, generating the table is the success criterion
        # (unverified classes are visible in the table itself).
        return {"output": format_table1(rows), "exit": 0}

    def _op_stats(self, request: dict) -> dict:
        counters = performance_counters(self.engine.portfolio)
        response = {
            "counters": counters.as_dict(),
            "cache_entries": (
                len(self.engine.portfolio.proof_cache)
                if self.engine.portfolio.proof_cache is not None
                else 0
            ),
            "pool_warm": self.engine.pool_warm,
        }
        if self.engine.persistent_store is not None:
            response["persistent_cache"] = {
                "path": str(self.engine.persistent_store.path),
                "status": self.engine.persistent_store.last_load_status,
            }
        return response

    def _op_shutdown(self, request: dict) -> dict:
        # ``flushed`` is the delta written *now* (usually 0: verify ops
        # flush as they go); ``cache_entries`` is the total warm state.
        flushed = self.engine.flush_persistent_cache()
        cache = self.engine.portfolio.proof_cache
        self.stop()
        return {
            "flushed": flushed,
            "cache_entries": len(cache) if cache is not None else 0,
        }


class DaemonClient:
    """Talk to a :class:`VerifierDaemon` over its unix socket.

    One request per connection, mirroring the server.  ``timeout`` bounds
    the *connect* phase only; a verification request may legitimately run
    for minutes, so reads wait indefinitely once connected.
    """

    def __init__(self, socket_path: str | Path, connect_timeout: float = 5.0) -> None:
        self.socket_path = Path(socket_path)
        self.connect_timeout = connect_timeout

    def request(self, payload: dict) -> dict:
        """Send one request object and return the parsed response object."""
        client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            client.settimeout(self.connect_timeout)
            try:
                client.connect(str(self.socket_path))
            except OSError as exc:
                raise DaemonError(
                    f"cannot connect to daemon at {self.socket_path}: {exc}"
                ) from exc
            client.settimeout(None)
            try:
                client.sendall(
                    json.dumps(payload, separators=(",", ":")).encode("utf-8")
                    + b"\n"
                )
                client.shutdown(socket.SHUT_WR)
                raw = _read_line(client)
            except OSError as exc:
                # E.g. the daemon shut down between our connect and send.
                raise DaemonError(
                    f"lost connection to daemon at {self.socket_path}: {exc}"
                ) from exc
        finally:
            client.close()
        if not raw:
            raise DaemonError("daemon closed the connection without a response")
        try:
            response = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise DaemonError(f"malformed daemon response: {exc}") from exc
        if not isinstance(response, dict):
            raise DaemonError("malformed daemon response: not an object")
        return response

    # Small conveniences used by the CLI and the tests.

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})
