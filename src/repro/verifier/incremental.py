"""Incremental verification: the sequent-level dependency index.

The paper's workflow is developer-interactive -- edit an invariant or a
method body, re-verify, repeat -- yet a plain re-run re-plans the whole
class even though the alpha-normalized fingerprints in the proof cache
(:func:`repro.provers.cache.task_fingerprint`) already identify exactly
which sequents an edit invalidates.  This module closes that loop:

* every full verification records, per class, a **dependency record**
  mapping the source artifacts that produce sequents -- method bodies,
  the invariant set, the state declarations and the engine's translation
  policy -- to the fingerprints they produced (:func:`record_from_slots`);
* the records persist alongside the proof cache (format v3, see
  ``docs/cache-format.md``) in :class:`DependencyIndex`;
* :func:`verify_class_incremental` diffs an edited class against its
  record.  A method whose digest is unchanged (under unchanged class
  artifacts) resolves **without regenerating its sequents**: the recorded
  fingerprints are looked up straight in the proof cache and answered as
  ``cache_origin="index"`` verdicts.  Only changed methods are re-lowered,
  and of their sequents only the fingerprints absent from the record are
  *dirty* -- everything else is answered by the warm cache.  The dirty
  set equals the fingerprint diff (new set minus indexed set) exactly,
  which the differential tests assert.

Digests are structural, not textual: terms digest through their
alpha-normalized fingerprints, so renaming a bound variable or reordering
assumptions does not dirty a method, while any semantic edit does.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from dataclasses import dataclass, field

from ..frontend.ast import ClassModel, Method
from ..logic.terms import Term
from ..provers.cache import (
    fingerprint_from_json,
    fingerprint_to_json,
    task_fingerprint,
    term_fingerprint,
)

__all__ = [
    "DependencyIndex",
    "IncrementalRunStats",
    "ResolvedSequent",
    "artifact_digest",
    "class_artifacts",
    "method_digest",
    "record_from_report",
    "record_from_slots",
    "verify_class_incremental",
]


# ---------------------------------------------------------------------------
# Structural digests of source artifacts
# ---------------------------------------------------------------------------


def _structure(value):
    """A stable, hashable image of a frontend artifact.

    Terms map to their alpha-normalized fingerprints (so bound-variable
    names never matter); dataclasses (AST nodes, sorts, proof constructs)
    map to (type-name, field-structure) pairs; containers recurse.  The
    image contains only primitives and tuples, so ``repr`` of it is stable
    across processes and hash seeds.
    """
    if isinstance(value, Term):
        return ("term", term_fingerprint(value))
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (f.name, _structure(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    if isinstance(value, (list, tuple)):
        return tuple(_structure(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((str(key), _structure(val)) for key, val in value.items()))
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def artifact_digest(value) -> str:
    """A short stable digest of one source artifact's structure."""
    image = repr(_structure(value)).encode("utf-8")
    return hashlib.sha256(image).hexdigest()[:16]


def class_artifacts(engine, cls: ClassModel) -> dict[str, str]:
    """The class-level artifacts every method's sequents depend on.

    State declarations and invariants flow into every method's lowering;
    ``policy`` covers the engine knobs that change which tasks a sequent
    produces (from-clause application, relevance filter, runtime checks).
    A change to any of these dirties the whole class.
    """
    return {
        "state": artifact_digest(cls.state),
        "invariants": artifact_digest(cls.invariants),
        "policy": artifact_digest(
            (
                bool(engine.apply_from_clauses),
                bool(engine.use_relevance_filter),
                bool(engine.runtime_checks),
            )
        ),
    }


def method_digest(method: Method) -> str:
    """Digest of one method's contract, body and signature."""
    return artifact_digest(method)


# ---------------------------------------------------------------------------
# The persisted index
# ---------------------------------------------------------------------------


class DependencyIndex:
    """Per-class dependency records, JSON-ready for the persistent store.

    One record per class name::

        {"artifacts": {"state": d, "invariants": d, "policy": d},
         "methods": [[name, {"digest": d,
                             "sequents": [[label, fingerprint-json], ...]}],
                     ...]}

    Fingerprints are stored raw (tenant-free); resolution goes through
    :meth:`~repro.provers.cache.ProofCache.key_for_fingerprint` so one
    index serves every tenant of a shared daemon.  ``mutations`` lets the
    engine's flush skip writes when nothing changed.
    """

    def __init__(self, records: dict[str, dict] | None = None) -> None:
        self._records: dict[str, dict] = dict(records or {})
        self.mutations = 0

    def __len__(self) -> int:
        return len(self._records)

    def get(self, class_name: str) -> dict | None:
        return self._records.get(class_name)

    def record(self, class_name: str, record: dict) -> None:
        if self._records.get(class_name) != record:
            self._records[class_name] = record
            self.mutations += 1

    def snapshot(self) -> dict[str, dict]:
        """A shallow copy for persistence (records are never mutated in
        place, so sharing the trees is safe)."""
        return dict(self._records)


def record_from_slots(engine, target: ClassModel, slots) -> dict:
    """Build ``target``'s dependency record from its planned slots.

    ``slots`` is the complete, sequentially ordered slot list of a full
    verification (every slot carries its task); the record maps each
    method to the fingerprints its sequents produced.
    """
    by_method: dict[int, list] = {}
    for slot in slots:
        by_method.setdefault(slot.method_index, []).append(
            [slot.sequent.label, fingerprint_to_json(task_fingerprint(slot.task))]
        )
    methods = []
    for method_index, method in enumerate(target.methods):
        methods.append(
            [
                method.name,
                {
                    "digest": method_digest(method),
                    "sequents": by_method.get(method_index, []),
                },
            ]
        )
    return {"artifacts": class_artifacts(engine, target), "methods": methods}


def record_from_report(engine, target: ClassModel, report) -> dict:
    """Build ``target``'s dependency record from a sequential run's report.

    The sequential path has no slot list, but every outcome carries its
    dispatched task, which is all the record needs.
    """
    methods = []
    for method, method_report in zip(target.methods, report.methods):
        sequents = [
            [
                outcome.sequent.label,
                fingerprint_to_json(task_fingerprint(outcome.dispatch.task)),
            ]
            for outcome in method_report.outcomes
        ]
        methods.append(
            [method.name, {"digest": method_digest(method), "sequents": sequents}]
        )
    return {"artifacts": class_artifacts(engine, target), "methods": methods}


# ---------------------------------------------------------------------------
# Incremental verification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResolvedSequent:
    """Stand-in for a sequent answered from the dependency index.

    Clean methods resolve without re-lowering, so there is no
    :class:`~repro.vcgen.sequent.Sequent` object to attach -- only the
    recorded label survives, which is all reports need.
    """

    label: str


@dataclass
class IncrementalRunStats:
    """Accounting of one :func:`verify_class_incremental` run.

    ``sequents_dirty`` counts exactly the fingerprint diff (fingerprints
    produced by the edited class that the index had not recorded);
    ``dispatched`` is the subset of those the warm cache could not answer.
    ``methods_skipped`` methods were resolved purely from the index,
    without sequent regeneration.  ``cold_start`` marks a run that had no
    usable prior record (first sight of the class, or artifacts changed).
    """

    class_name: str
    jobs: int = 1
    cold_start: bool = False
    methods_total: int = 0
    methods_skipped: int = 0
    sequents_total: int = 0
    sequents_clean: int = 0
    sequents_dirty: int = 0
    dispatched: int = 0
    dirty_labels: list[str] = field(default_factory=list)
    wall: float = 0.0

    def as_dict(self) -> dict:
        return {
            "class": self.class_name,
            "jobs": self.jobs,
            "cold_start": self.cold_start,
            "methods_total": self.methods_total,
            "methods_skipped": self.methods_skipped,
            "sequents_total": self.sequents_total,
            "sequents_clean": self.sequents_clean,
            "sequents_dirty": self.sequents_dirty,
            "dispatched": self.dispatched,
            "dirty_labels": list(self.dirty_labels),
            "wall": self.wall,
        }


def _resolve_clean_method(engine, record: dict):
    """Resolve one unchanged method purely from cache + index.

    Returns the synthesized outcome list, or ``None`` if any recorded
    verdict has been evicted (the caller then re-plans the method like a
    dirty one).  Statistics fold exactly like ``consult_cache`` hits, so
    counters stay comparable to a full run.
    """
    # Imported lazily: engine.py imports this module at the top level.
    from ..provers.dispatch import DispatchResult
    from .engine import SequentOutcome

    portfolio = engine.portfolio
    cache = portfolio.proof_cache
    resolved = []
    for label, fp_json in record["sequents"]:
        key = cache.key_for_fingerprint(fingerprint_from_json(fp_json))
        verdict = cache.lookup(key)
        if verdict is None:
            return None
        resolved.append((label, verdict))
    outcomes = []
    for label, verdict in resolved:
        portfolio.statistics.sequents_attempted += 1
        portfolio.statistics.cache_hits += 1
        if verdict.origin == "disk":
            portfolio.statistics.cache_hits_disk += 1
        if verdict.proved:
            portfolio.statistics.sequents_proved += 1
        outcomes.append(
            SequentOutcome(
                ResolvedSequent(label),
                DispatchResult(
                    task=None,
                    proved=verdict.proved,
                    refuted=verdict.refuted,
                    winning_prover=verdict.winning_prover,
                    cached=True,
                    cache_origin="index",
                ),
            )
        )
    return outcomes


def verify_class_incremental(engine, cls: ClassModel, jobs: int | None = None):
    """Re-verify ``cls`` against its dependency record.

    Returns ``(ClassReport, IncrementalRunStats)``.  Verdicts are
    identical to a full (cold) verification of the same class: clean
    sequents resolve from the proof cache under their recorded
    fingerprints, dirty ones run through the normal plan/dispatch/resolve
    phases.  Falls back to a cold plan (everything dirty) when the engine
    has no proof cache or no usable record.
    """
    from .engine import ClassReport, MethodReport, SequentOutcome
    from .parallel import (
        ParallelRunStats,
        _Slot,
        plan_method,
        resolve_duplicates,
        resolve_shard,
        run_shard,
    )

    start = time.monotonic()
    jobs = engine.jobs if jobs is None else max(1, int(jobs))
    cache = engine.portfolio.proof_cache
    index = engine.dependency_index
    stats = IncrementalRunStats(cls.name, jobs=jobs, methods_total=len(cls.methods))

    old = index.get(cls.name) if cache is not None else None
    artifacts = class_artifacts(engine, cls) if cache is not None else {}
    shared_clean = old is not None and old.get("artifacts") == artifacts
    stats.cold_start = not shared_clean
    old_methods: dict[str, dict] = (
        {name: rec for name, rec in old["methods"]} if shared_clean else {}
    )
    indexed_fps = {
        fingerprint_from_json(fp_json)
        for rec in old_methods.values()
        for _, fp_json in rec["sequents"]
    }

    run_stats = ParallelRunStats(jobs=jobs)
    shard: list[_Slot] = []
    pending_by_key: dict[tuple, int] = {}
    clean_outcomes: dict[int, list] = {}
    dirty_slots: dict[int, list[_Slot]] = {}
    new_methods: list = []

    for method_index, method in enumerate(cls.methods):
        record = old_methods.get(method.name)
        digest = method_digest(method) if cache is not None else ""
        if record is not None and record["digest"] == digest:
            outcomes = _resolve_clean_method(engine, record)
            if outcomes is not None:
                clean_outcomes[method_index] = outcomes
                stats.methods_skipped += 1
                stats.sequents_clean += len(outcomes)
                stats.sequents_total += len(outcomes)
                new_methods.append([method.name, record])
                continue
        slots = plan_method(
            engine, cls, method, method_index, shard, pending_by_key, run_stats
        )
        dirty_slots[method_index] = slots
        sequents = []
        for slot in slots:
            fingerprint = task_fingerprint(slot.task)
            sequents.append([slot.sequent.label, fingerprint_to_json(fingerprint)])
            if fingerprint in indexed_fps:
                stats.sequents_clean += 1
            else:
                stats.sequents_dirty += 1
                stats.dirty_labels.append(f"{method.name}:{slot.sequent.label}")
        stats.sequents_total += len(slots)
        new_methods.append([method.name, {"digest": digest, "sequents": sequents}])

    run_stats.sequents_total = stats.sequents_total
    run_stats.dispatched = len(shard)
    stats.dispatched = len(shard)
    results = run_shard(engine, shard, jobs, run_stats)
    resolve_shard(engine.portfolio, shard, results)
    for slots in dirty_slots.values():
        resolve_duplicates(engine.portfolio, slots, results)
    for slot in shard:
        engine.observe_timing(cls.name, slot.key, results[slot.shard_index])
    if cache is not None:
        engine.cost_model.reprofile(
            cls.name,
            [
                cache.key_for_fingerprint(fingerprint_from_json(fp_json))
                for _, rec in new_methods
                for _, fp_json in rec["sequents"]
            ],
        )

    report = ClassReport(cls.name)
    for method_index, method in enumerate(cls.methods):
        method_report = MethodReport(cls.name, method.name)
        if method_index in clean_outcomes:
            method_report.outcomes = clean_outcomes[method_index]
        else:
            for slot in dirty_slots[method_index]:
                method_report.outcomes.append(SequentOutcome(slot.sequent, slot.result))
        method_report.elapsed = sum(
            outcome.dispatch.elapsed for outcome in method_report.outcomes
        )
        report.methods.append(method_report)

    if cache is not None:
        index.record(cls.name, {"artifacts": artifacts, "methods": new_methods})
    stats.wall = time.monotonic() - start
    return report, stats
