"""The end-to-end verification engine, scheduling, serving and reporting."""

from .daemon import DaemonClient, DaemonError, VerifierDaemon
from .engine import ClassReport, MethodReport, SequentOutcome, VerificationEngine
from .parallel import ParallelRunStats, ProverPool, WorkerLoad, verify_class_parallel
from .report import (
    Table1Row,
    Table2Row,
    format_suite,
    format_table1,
    format_table2,
    format_verify,
    table1_rows,
    table2_rows,
)
from .scheduler import ClassScheduleStats, SuiteRunStats, verify_suite
from .stats import ClassStatistics, class_statistics
from .strip import strip_proofs_from_class, strip_proofs_from_method

__all__ = [name for name in dir() if not name.startswith("_")]
