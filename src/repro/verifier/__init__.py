"""The end-to-end verification engine, reporting and statistics."""

from .engine import ClassReport, MethodReport, SequentOutcome, VerificationEngine
from .parallel import ParallelRunStats, WorkerLoad, verify_class_parallel
from .report import (
    Table1Row,
    Table2Row,
    format_table1,
    format_table2,
    table1_rows,
    table2_rows,
)
from .stats import ClassStatistics, class_statistics
from .strip import strip_proofs_from_class, strip_proofs_from_method

__all__ = [name for name in dir() if not name.startswith("_")]
