"""The ``jahob-py worker`` process: run the pure prover phase remotely.

A worker is the distributed counterpart of one ``ProcessPoolExecutor``
worker: it rebuilds a prover portfolio from the coordinator's
:class:`~repro.provers.dispatch.PortfolioSpec` (prover objects never cross
machine boundaries, exactly as they never cross process boundaries), runs
:meth:`~repro.provers.dispatch.ProverPortfolio.run_provers` on each task of
each batch, and streams one result message per task back in the order it
finishes them.  Workers hold **no cache and no statistics** -- all cache
authority stays with the coordinating parent, which is what keeps
distributed verdicts bit-identical to sequential runs.

Two ways to meet a coordinator (see :mod:`repro.verifier.remote`):

* ``jahob-py worker --connect HOST:PORT`` dials a coordinator's worker
  registry and serves one session until the coordinator says ``bye``;
* ``jahob-py worker --listen HOST:PORT`` binds a TCP port (``:0`` picks a
  free one, printed on stdout) and serves dialing coordinators, one
  session at a time, until killed (or after one session with ``--once``).

Either way the TCP connection is authenticated with the shared-secret
handshake before any task payload is accepted.
"""

from __future__ import annotations

import os
import socket
import time

from ..provers.dispatch import PortfolioSpec, ProverPortfolio
from .wire import (
    HANDSHAKE_TIMEOUT,
    WIRE_VERSION,
    HandshakeError,
    LineChannel,
    WireError,
    connect_address,
    create_listener,
    decode_payload,
    encode_payload,
    format_address,
)

__all__ = ["serve_session", "run_worker"]


def _hello() -> dict:
    return {
        "op": "hello",
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "jahob": WIRE_VERSION,
    }


def serve_session(channel: LineChannel) -> int:
    """Serve one coordinator session on an authenticated channel.

    Returns the number of tasks answered.  Exits cleanly on ``bye`` or
    EOF; a prover crash on one task is reported back as an ``error``
    message (the coordinator decides whether to abort the run) and the
    session continues with the next task.
    """
    channel.send(_hello())
    portfolio: ProverPortfolio | None = None
    answered = 0
    while True:
        try:
            message = channel.recv()
        except WireError:
            return answered
        if message is None:
            return answered
        op = message.get("op")
        if op == "bye":
            return answered
        if op == "ping":
            channel.send({"op": "pong", "pid": os.getpid()})
            continue
        if op == "init":
            spec = PortfolioSpec(
                tuple(
                    (str(name), float(timeout))
                    for name, timeout in message.get("spec", [])
                )
            )
            # The pure prover phase only: no cache, no shared statistics.
            portfolio = spec.build(proof_cache=None)
            continue
        if op == "batch":
            if portfolio is None:
                channel.send(
                    {
                        "op": "error",
                        "index": None,
                        "error": "batch before init",
                    }
                )
                continue
            for index, payload in message.get("tasks", []):
                start = time.monotonic()
                try:
                    task = decode_payload(payload)
                    result = portfolio.run_provers(task)
                except Exception as exc:  # noqa: BLE001 - reported upstream
                    channel.send(
                        {
                            "op": "error",
                            "index": index,
                            "error": f"{type(exc).__name__}: {exc}",
                        }
                    )
                    continue
                channel.send(
                    {
                        "op": "result",
                        "index": index,
                        "wall": time.monotonic() - start,
                        "payload": encode_payload(result),
                    }
                )
                answered += 1
            continue
        # Unknown op: ignore, for forward compatibility.


def run_worker(
    connect: str | None = None,
    listen: str | None = None,
    secret: bytes | None = None,
    once: bool = False,
    log=print,
) -> int:
    """Entry point behind ``jahob-py worker``; returns an exit status."""
    from .wire import handshake_accept, handshake_connect

    if (connect is None) == (listen is None):
        log("worker needs exactly one of --connect or --listen")
        return 2
    if not secret:
        log(
            "worker needs a shared secret (--secret-file or JAHOB_SECRET) "
            "to authenticate coordinators"
        )
        return 2

    if connect is not None:
        try:
            sock = connect_address(connect)
        except OSError as exc:
            log(f"cannot reach coordinator at {format_address(connect)}: {exc}")
            return 2
        channel = LineChannel(sock)
        try:
            handshake_connect(channel, secret, role="worker")
        except (WireError, HandshakeError) as exc:
            log(f"handshake with coordinator failed: {exc}")
            channel.close()
            return 2
        # The connect timeout covered dial + handshake; a registered
        # worker then waits for work indefinitely (the coordinating
        # daemon may be idle between requests for hours).
        sock.settimeout(None)
        log(f"registered with coordinator at {format_address(connect)}")
        try:
            answered = serve_session(channel)
        finally:
            channel.close()
        log(f"session over, {answered} tasks answered")
        return 0

    try:
        server = create_listener(listen)
    except (OSError, WireError) as exc:
        log(f"cannot listen on {listen}: {exc}")
        return 2
    host, port = server.getsockname()[:2]
    # The parseable line test harnesses and operators key on; with port 0
    # this is the only way to learn the actual address.
    log(f"jahob-py worker listening on {host}:{port}", flush=True)
    try:
        while True:
            connection, peer = server.accept()
            # Handshake under a deadline (a silent peer must not wedge
            # the accept loop), then block indefinitely for work.
            connection.settimeout(HANDSHAKE_TIMEOUT)
            channel = LineChannel(connection)
            try:
                handshake_accept(channel, secret, expect_role="coordinator")
            except (WireError, HandshakeError) as exc:
                log(f"rejected {peer[0]}:{peer[1]}: {exc}")
                channel.close()
                continue
            connection.settimeout(None)
            log(f"serving coordinator {peer[0]}:{peer[1]}")
            try:
                answered = serve_session(channel)
            finally:
                channel.close()
            log(f"session over, {answered} tasks answered")
            if once:
                return 0
    except KeyboardInterrupt:
        return 0
    finally:
        server.close()
