"""Command-line interface: ``jahob-py``.

Subcommands::

    jahob-py list                 list the benchmark data structures
    jahob-py verify <name>        verify one data structure (add --no-proofs
                                  to strip the proof language constructs)
    jahob-py verify <file.py>     verify every class model exported by a
                                  standalone Python file (MODEL/MODELS,
                                  module-level ClassModels, or zero-arg
                                  build* functions; see repro.frontend.loader)
    jahob-py verify <file.py> --watch
                                  keep verifying the file as it changes:
                                  stream incremental verdicts, re-proving
                                  only the sequents each edit invalidated
                                  (self-hosts a daemon, or --connect)
    jahob-py table1               regenerate Table 1 (suite-scheduled when
                                  --jobs > 1; see --schedule)
    jahob-py table2               regenerate Table 2 (slow: verifies twice)
    jahob-py serve                run the warm verification daemon on a
                                  unix socket (--socket) or TCP (--tcp),
                                  optionally with an HTTP/JSON front door
                                  (--http; see docs/service-api.md) and
                                  admission tuning (--queue-limit,
                                  --rate-limit, --burst)
    jahob-py loadgen              storm a daemon's HTTP front door with
                                  concurrent mixed-priority clients and
                                  report latency percentiles, rejections
                                  and a verdict check (self-hosts a
                                  daemon unless --address is given)
    jahob-py metrics              scheduling metrics of a running daemon:
                                  per-worker latency histograms, measured
                                  per-class costs, cache provenance and
                                  the last suite plan (requires --connect)
    jahob-py shutdown             stop a daemon (requires --connect)
    jahob-py worker               run a remote prover worker (--listen to
                                  await coordinators, --connect to register
                                  with one)

With ``--connect ADDR`` (a unix-socket path or ``HOST:PORT``) the ``list``
/ ``verify`` / ``table1`` commands are served by a running daemon
(``jahob-py serve``) instead of a cold local engine; the printed output is
identical.  ``--client NAME`` attaches the client identity the daemon
uses for rate limiting and tenant cache namespacing, and ``--priority
batch`` yields the admission queue to interactive requests.  ``--workers
HOST:PORT,...`` makes a local run (or a daemon) dispatch its prover phase
to listening ``jahob-py worker`` processes; all TCP endpoints
authenticate with the shared secret from ``--secret-file`` or
``JAHOB_SECRET``.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys

from ..provers.dispatch import default_portfolio
from .engine import VerificationEngine
from .report import (
    format_parallel,
    format_performance,
    format_suite,
    format_table1,
    format_table2,
    format_verify,
    format_verify_file,
    table1_rows,
    table2_rows,
)

__all__ = ["main"]

#: Default unix-socket path for ``serve`` / ``--connect``.
DEFAULT_SOCKET = ".jahob.sock"


def _print_perf(engine: VerificationEngine) -> None:
    print(format_performance(portfolio=engine.portfolio))
    if engine.last_suite_stats is not None:
        print(format_suite(engine.last_suite_stats))
    elif engine.parallel_stats_total is not None:
        print(format_parallel(engine.parallel_stats_total))
    if engine.persistent_store is not None:
        print(
            f"Persistent cache: {engine.persistent_store.path} "
            f"({engine.persistent_store.last_load_status})"
        )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jahob-py",
        description="Jahob-style verifier with an integrated proof language "
        "(PLDI 2009 reproduction)",
    )
    parser.add_argument(
        "--timeout-scale",
        type=float,
        default=1.0,
        help="scale factor applied to every per-prover timeout",
    )
    parser.add_argument(
        "--perf",
        action="store_true",
        help="print term-interning and proof-cache counters after the run",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the sequent-level proof cache",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard prover dispatch across N worker processes "
        "(verdicts are identical to the sequential run)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist proof-cache verdicts under DIR across runs "
        "(invalidated automatically on portfolio or fingerprint changes)",
    )
    parser.add_argument(
        "--no-persist",
        action="store_true",
        help="with --cache-dir: read the persistent cache but do not write it back",
    )
    parser.add_argument(
        "--schedule",
        choices=("suite", "class"),
        default="suite",
        help="with --jobs > 1, how table1 shards work: 'suite' plans the whole "
        "catalogue as one job graph (longest class first), 'class' shards "
        "each class separately; verdicts are identical either way",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="ADDR",
        help="serve list/verify/table1/shutdown through the daemon listening "
        "on this unix socket or HOST:PORT instead of a cold local engine",
    )
    parser.add_argument(
        "--workers",
        default=None,
        metavar="LIST",
        help="comma-separated HOST:PORT addresses of listening 'jahob-py "
        "worker' processes; prover dispatch is distributed across them "
        "(verdicts identical to a local run)",
    )
    parser.add_argument(
        "--secret-file",
        default=None,
        metavar="PATH",
        help="file holding the shared secret that authenticates TCP "
        "daemon/worker connections (JAHOB_SECRET works too)",
    )
    parser.add_argument(
        "--client",
        default="",
        metavar="NAME",
        help="with --connect: the client identity the daemon uses for "
        "rate limiting and its tenant proof-cache namespace (on TCP it "
        "rides in the HMAC handshake and cannot be spoofed)",
    )
    parser.add_argument(
        "--priority",
        choices=("interactive", "batch"),
        default="interactive",
        help="with --connect: admission priority lane; 'batch' requests "
        "yield the queue to 'interactive' ones",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list benchmark data structures")
    verify = subparsers.add_parser(
        "verify",
        help="verify one data structure, or every class model in a Python file",
    )
    verify.add_argument(
        "name",
        help="data structure name (see 'list') or a path to a Python file "
        "exporting class models (anything ending in .py or containing a "
        "path separator is treated as a file)",
    )
    verify.add_argument(
        "--no-proofs",
        action="store_true",
        help="strip the integrated proof language constructs first",
    )
    verify.add_argument(
        "--watch",
        action="store_true",
        help="keep verifying the file as it changes: stream incremental "
        "verdicts, re-proving only the sequents each edit invalidated "
        "(file operand only; works locally or with --connect)",
    )
    verify.add_argument(
        "--watch-max",
        type=int,
        default=None,
        metavar="N",
        help="with --watch: exit after N verification events (the first "
        "fires immediately as the baseline)",
    )
    subparsers.add_parser("table1", help="regenerate Table 1")
    subparsers.add_parser("table2", help="regenerate Table 2")
    serve = subparsers.add_parser(
        "serve",
        help="run the warm verification daemon (keeps worker pool and "
        "caches alive across --connect requests)",
    )
    serve.add_argument(
        "--socket",
        default=DEFAULT_SOCKET,
        metavar="PATH",
        help=f"unix socket to listen on (default: {DEFAULT_SOCKET})",
    )
    serve.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="listen on TCP instead of the unix socket; requires the "
        "shared secret (--secret-file or JAHOB_SECRET)",
    )
    serve.add_argument(
        "--http",
        default=None,
        metavar="HOST:PORT",
        help="also serve the HTTP/JSON API on this address (requires the "
        "shared secret; routes in docs/service-api.md)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        metavar="N",
        help="max engine requests waiting in the admission queue before "
        "new ones are rejected with code 'queue_full' (default 16)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="R",
        help="per-client token-bucket rate limit, requests/second "
        "(default: no rate limiting)",
    )
    serve.add_argument(
        "--burst",
        type=float,
        default=None,
        metavar="B",
        help="token-bucket burst capacity (default: max(1, rate))",
    )
    serve.add_argument(
        "--worker-listen",
        default=None,
        metavar="HOST:PORT",
        help="also accept 'jahob-py worker --connect' registrations on "
        "this TCP address and dispatch proving to them",
    )
    serve.add_argument(
        "--secret-file",
        dest="secret_file",
        # SUPPRESS, not None: argparse copies the sub-namespace over the
        # main one, so a plain default would clobber a global
        # --secret-file given before the subcommand.
        default=argparse.SUPPRESS,
        metavar="PATH",
        help="same as the global --secret-file, accepted after 'serve' too",
    )
    subparsers.add_parser(
        "metrics",
        help="print a running daemon's scheduling metrics: per-worker "
        "latency, measured per-class costs, cache provenance and the "
        "last suite plan (requires --connect)",
    )
    subparsers.add_parser(
        "shutdown",
        help="flush the daemon's caches and stop it (requires --connect)",
    )
    loadgen = subparsers.add_parser(
        "loadgen",
        help="drive a daemon's HTTP front door with concurrent "
        "mixed-priority clients and report latency percentiles, "
        "admission rejections and a sequential-baseline verdict check",
    )
    loadgen.add_argument(
        "--clients",
        type=int,
        default=50,
        metavar="N",
        help="concurrent client threads (default 50)",
    )
    loadgen.add_argument(
        "--requests",
        type=int,
        default=4,
        metavar="N",
        help="requests per client (default 4)",
    )
    loadgen.add_argument(
        "--tenants",
        type=int,
        default=2,
        metavar="N",
        help="distinct client identities / cache namespaces (default 2)",
    )
    loadgen.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        metavar="N",
        help="self-hosted daemon's admission queue bound (default 8, "
        "deliberately small so queue-full rejections are exercised)",
    )
    loadgen.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="R",
        help="self-hosted daemon's per-client rate limit, requests/second",
    )
    loadgen.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="self-hosted daemon's worker processes (default 2)",
    )
    loadgen.add_argument(
        "--address",
        default=None,
        metavar="HOST:PORT",
        help="drive this live HTTP front door instead of self-hosting "
        "(requires its shared secret)",
    )
    loadgen.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the JSON record here (the CI artifact shape)",
    )
    loadgen.add_argument(
        "--secret-file",
        dest="secret_file",
        default=argparse.SUPPRESS,  # see the serve copy
        metavar="PATH",
        help="same as the global --secret-file, accepted after 'loadgen' too",
    )
    worker = subparsers.add_parser(
        "worker",
        help="run a remote prover worker for a coordinator to dispatch to",
    )
    worker.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="listen for coordinators on this TCP address (':0' picks a "
        "free port, printed on stdout)",
    )
    worker.add_argument(
        "--connect",
        dest="worker_connect",
        default=None,
        metavar="HOST:PORT",
        help="register with the coordinator (daemon --worker-listen) at "
        "this TCP address",
    )
    worker.add_argument(
        "--once",
        action="store_true",
        help="with --listen: exit after serving one coordinator session",
    )
    worker.add_argument(
        "--secret-file",
        dest="secret_file",
        default=argparse.SUPPRESS,  # see the serve copy
        metavar="PATH",
        help="same as the global --secret-file, accepted after 'worker' too",
    )
    return parser


#: Flags that configure the local engine, as ``(flag, dest)`` pairs.  The
#: daemon paths warn when one of these is passed but cannot take effect;
#: non-default detection compares against the parser's own defaults so a
#: new flag only needs to be added here, not re-described.
_ENGINE_FLAGS = (
    ("--timeout-scale", "timeout_scale"),
    ("--no-cache", "no_cache"),
    ("--jobs", "jobs"),
    ("--cache-dir", "cache_dir"),
    ("--no-persist", "no_persist"),
    ("--schedule", "schedule"),
    ("--perf", "perf"),
    ("--workers", "workers"),
)


def _non_default_flags(
    parser: argparse.ArgumentParser,
    args: argparse.Namespace,
    flags=_ENGINE_FLAGS,
) -> list[str]:
    return [
        flag
        for flag, dest in flags
        if getattr(args, dest) != parser.get_default(dest)
    ]


def _is_program_path(name: str) -> bool:
    """Whether the ``verify`` operand names a file rather than a
    catalogue class.  No catalogue class ends in ``.py`` or contains a
    path separator, so the two namespaces cannot collide."""
    return name.endswith(".py") or "/" in name or os.sep in name


def _load_secret_arg(args: argparse.Namespace) -> bytes | None:
    """The shared secret from ``--secret-file`` / ``JAHOB_SECRET``; an
    unreadable file surfaces as ``OSError`` for the caller to report."""
    from .wire import load_secret

    return load_secret(args.secret_file)


def _run_connected(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Serve the command through a running daemon (``--connect``)."""
    from .daemon import DaemonClient, DaemonError

    # Engine configuration lives in the daemon: flags that would rebuild
    # the engine locally cannot be forwarded, so say so instead of
    # silently serving with the daemon's configuration.
    dropped = _non_default_flags(parser, args)
    if dropped:
        print(
            f"warning: {', '.join(dropped)} ignored with --connect; "
            "the daemon keeps the engine configuration it was started with",
            file=sys.stderr,
        )
    try:
        secret = _load_secret_arg(args)
    except OSError as exc:
        print(f"cannot read --secret-file: {exc}", file=sys.stderr)
        return 2
    client = DaemonClient(args.connect, secret=secret, client_id=args.client)
    if args.command == "verify" and args.watch:
        if not _is_program_path(args.name):
            print(
                "--watch requires a file operand "
                "(catalogue classes do not change on disk)",
                file=sys.stderr,
            )
            return 2
        return _stream_watch(client, args)
    if args.command == "list":
        request = {"op": "list"}
    elif args.command == "verify" and _is_program_path(args.name):
        # The daemon runs in its own working directory, so forward the
        # absolute path (which also keeps the printed summary identical).
        request = {
            "op": "verify_file",
            "path": os.path.abspath(args.name),
            "strip": args.no_proofs,
        }
    elif args.command == "verify":
        request = {"op": "verify", "name": args.name, "strip": args.no_proofs}
    elif args.command == "table1":
        request = {"op": "table1"}
    elif args.command == "metrics":
        request = {"op": "metrics"}
    elif args.command == "shutdown":
        request = {"op": "shutdown"}
    else:
        print(f"--connect does not support {args.command!r}", file=sys.stderr)
        return 2
    if args.priority != "interactive":
        request["priority"] = args.priority
    try:
        response = client.request(request)
    except DaemonError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not response.get("ok"):
        print(f"daemon error: {response.get('error')}", file=sys.stderr)
        return 2
    if args.command == "list":
        for name in response["structures"]:
            print(name)
        return 0
    if args.command == "metrics":
        from .report import format_metrics

        print(format_metrics(response))
        return 0
    if args.command == "shutdown":
        print(f"daemon stopped ({response.get('cache_entries', 0)} cached verdicts)")
        return 0
    print(response["output"])
    return int(response.get("exit", 0))


def _stream_watch(client, args: argparse.Namespace) -> int:
    """Stream one ``watch`` subscription to the terminal.

    Exit status follows the *latest* verdict event (the file may go red
    and green again over the subscription's lifetime); ctrl-C unsubscribes
    cleanly.
    """
    from .daemon import DaemonError
    from .report import format_watch_event

    payload: dict = {"path": os.path.abspath(args.name)}
    if args.watch_max is not None:
        payload["max_events"] = args.watch_max
    if args.priority != "interactive":
        payload["priority"] = args.priority
    verified = True
    try:
        for event in client.watch(payload):
            print(format_watch_event(event), flush=True)
            if isinstance(event, dict):
                if "event" not in event and not event.get("ok", True):
                    return 2
                if event.get("event") == "verdicts":
                    verified = bool(event.get("verified"))
    except KeyboardInterrupt:
        pass
    except DaemonError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0 if verified else 1


def _run_watch_local(args: argparse.Namespace, engine: VerificationEngine) -> int:
    """``verify FILE --watch`` without ``--connect``.

    Watch mode is daemon-native (the subscription protocol lives on the
    socket -- see docs/service-api.md), so the local spelling self-hosts a
    private daemon around the already-built engine on a temporary unix
    socket for the duration of the subscription.
    """
    import tempfile
    import threading
    import time

    from .daemon import DaemonClient, DaemonError, VerifierDaemon

    if not _is_program_path(args.name):
        print(
            "--watch requires a file operand "
            "(catalogue classes do not change on disk)",
            file=sys.stderr,
        )
        return 2
    if args.no_proofs:
        print(
            "warning: --no-proofs ignored with --watch "
            "(watch always verifies the full proof language)",
            file=sys.stderr,
        )
    with tempfile.TemporaryDirectory(prefix="jahob-watch-") as tmp:
        daemon = VerifierDaemon(os.path.join(tmp, "watch.sock"), engine=engine)
        try:
            daemon.bind()
        except DaemonError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        client = DaemonClient(daemon.socket_path)
        deadline = time.monotonic() + 5.0
        while True:
            try:
                client.ping()
                break
            except DaemonError:
                if time.monotonic() > deadline:
                    print("watch daemon did not come up", file=sys.stderr)
                    return 2
                time.sleep(0.02)
        try:
            return _stream_watch(client, args)
        finally:
            daemon.stop()
            thread.join(timeout=10.0)
            daemon.close()


def _run_serve(args: argparse.Namespace) -> int:
    """Run the warm daemon until SIGINT/SIGTERM or a ``shutdown`` request."""
    from .daemon import DaemonError, VerifierDaemon

    try:
        secret = _load_secret_arg(args)
    except OSError as exc:
        print(f"cannot read --secret-file: {exc}", file=sys.stderr)
        return 2
    try:
        daemon = VerifierDaemon(
            args.tcp if args.tcp is not None else args.socket,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            persist=not args.no_persist,
            use_proof_cache=not args.no_cache,
            timeout_scale=args.timeout_scale,
            secret=secret,
            workers=args.workers,
            worker_listen=args.worker_listen,
            queue_limit=args.queue_limit,
            rate_limit=args.rate_limit,
            burst=args.burst,
            http=args.http,
        )
    except DaemonError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    from .remote import RemoteWorkerError

    try:
        # Pool first, then listener, for the fd-inheritance reasons
        # documented on VerifierDaemon.serve_forever.  warm_pool raises
        # RemoteWorkerError for unreachable --workers addresses.
        daemon.engine.warm_pool()
        daemon.bind()
    except (DaemonError, RemoteWorkerError) as exc:
        print(str(exc), file=sys.stderr)
        daemon.close()
        return 2
    previous = signal.signal(signal.SIGTERM, lambda *_: daemon.stop())
    if daemon.registry is not None:
        print(
            f"jahob-py daemon accepting workers on {daemon.registry.address}",
            flush=True,
        )
    if daemon.http_door is not None:
        print(
            f"jahob-py daemon serving HTTP on {daemon.http_door.address}",
            flush=True,
        )
    print(f"jahob-py daemon listening on {daemon.address}", flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        daemon.close()
        signal.signal(signal.SIGTERM, previous)
    return 0


def _run_loadgen(args: argparse.Namespace) -> int:
    """Run the load harness, print the human report, optionally write JSON."""
    import json

    from .http import HttpApiError
    from .loadgen import run_loadgen
    from .report import format_loadgen

    secret = None
    if args.address is not None:
        try:
            secret = _load_secret_arg(args)
        except OSError as exc:
            print(f"cannot read --secret-file: {exc}", file=sys.stderr)
            return 2
        if not secret:
            print(
                "loadgen --address requires the front door's shared secret "
                "(--secret-file or JAHOB_SECRET)",
                file=sys.stderr,
            )
            return 2
    try:
        record = run_loadgen(
            clients=args.clients,
            requests_per_client=args.requests,
            tenants=args.tenants,
            queue_limit=args.queue_limit,
            rate_limit=args.rate_limit,
            jobs=args.jobs,
            timeout_scale=args.timeout_scale,
            address=args.address,
            secret=secret,
        )
    except HttpApiError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    print(format_loadgen(record))
    requests = record["requests"]
    healthy = (
        requests["dropped_connections"] == 0
        and requests["gave_up"] == 0
        and requests["succeeded"] == requests["total"]
        and not record["verdicts"]["mismatches"]
    )
    return 0 if healthy else 1


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    from ..suite.catalog import all_structures, structure_by_name

    if args.command == "worker":
        from .worker import run_worker

        try:
            secret = _load_secret_arg(args)
        except OSError as exc:
            print(f"cannot read --secret-file: {exc}", file=sys.stderr)
            return 2
        return run_worker(
            connect=args.worker_connect,
            listen=args.listen,
            secret=secret,
            once=args.once,
        )
    if args.command == "loadgen":
        return _run_loadgen(args)
    if args.command == "serve":
        if args.connect is not None:
            print(
                "serve starts a daemon and cannot itself use --connect",
                file=sys.stderr,
            )
            return 2
        dropped = _non_default_flags(
            parser,
            args,
            [pair for pair in _ENGINE_FLAGS if pair[0] in ("--perf", "--schedule")],
        )
        if dropped:
            print(
                f"warning: {', '.join(dropped)} ignored with serve; "
                "use the daemon's stats op for counters",
                file=sys.stderr,
            )
        return _run_serve(args)
    if args.connect is not None:
        return _run_connected(parser, args)
    if args.command in ("shutdown", "metrics"):
        print(f"{args.command} requires --connect SOCKET", file=sys.stderr)
        return 2

    try:
        secret = _load_secret_arg(args)
    except OSError as exc:
        print(f"cannot read --secret-file: {exc}", file=sys.stderr)
        return 2
    if args.workers and not secret:
        # Fail before any proving starts, like serve does, instead of a
        # RemoteWorkerError traceback mid-run.
        print(
            "--workers requires a shared secret "
            "(--secret-file or JAHOB_SECRET)",
            file=sys.stderr,
        )
        return 2
    portfolio = default_portfolio(with_cache=not args.no_cache)
    portfolio = portfolio.scaled(args.timeout_scale)
    engine = VerificationEngine(
        portfolio,
        use_proof_cache=not args.no_cache,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        persist=not args.no_persist,
        workers=args.workers,
        worker_secret=secret,
    )

    if args.command == "list":
        for cls in all_structures():
            print(cls.name)
        return 0

    if args.command == "verify":
        if args.watch:
            return _run_watch_local(args, engine)
        if _is_program_path(args.name):
            from ..frontend.loader import ProgramLoadError, load_class_models

            try:
                models = load_class_models(args.name)
            except ProgramLoadError as exc:
                print(str(exc), file=sys.stderr)
                return 2
            reports = [
                engine.verify_class(model, strip_proofs=args.no_proofs)
                for model in models
            ]
            print(format_verify_file(os.path.abspath(args.name), reports))
            if args.perf:
                _print_perf(engine)
            return 0 if all(report.verified for report in reports) else 1
        cls = structure_by_name(args.name)
        report = engine.verify_class(cls, strip_proofs=args.no_proofs)
        print(format_verify(report))
        if args.perf:
            _print_perf(engine)
        return 0 if report.verified else 1

    if args.command == "table1":
        classes = all_structures()
        # Parallel backends (process pool or remote workers) default to
        # suite scheduling: one job graph, cross-class dedup, one session.
        if (args.jobs > 1 or engine.uses_remote_workers) and args.schedule == "suite":
            reports = engine.verify_suite(classes)
            rows = table1_rows(classes, reports=reports)
        else:
            rows = table1_rows(classes, engine)
        print(format_table1(rows))
        if args.perf:
            print()
            _print_perf(engine)
        return 0

    if args.command == "table2":
        rows = [row for row, _, _ in table2_rows(all_structures(), engine)]
        print(format_table2(rows))
        if args.perf:
            print()
            _print_perf(engine)
        return 0

    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
