"""Command-line interface: ``jahob-py``.

Subcommands::

    jahob-py list                 list the benchmark data structures
    jahob-py verify <name>        verify one data structure (add --no-proofs
                                  to strip the proof language constructs)
    jahob-py table1               regenerate Table 1
    jahob-py table2               regenerate Table 2 (slow: verifies twice)
"""

from __future__ import annotations

import argparse
import sys

from ..provers.dispatch import default_portfolio
from .engine import VerificationEngine
from .report import (
    format_parallel,
    format_performance,
    format_table1,
    format_table2,
    table1_rows,
    table2_rows,
)


def _print_perf(engine: VerificationEngine) -> None:
    print(format_performance(portfolio=engine.portfolio))
    if engine.parallel_stats_total is not None:
        print(format_parallel(engine.parallel_stats_total))
    if engine.persistent_store is not None:
        print(
            f"Persistent cache: {engine.persistent_store.path} "
            f"({engine.persistent_store.last_load_status})"
        )

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jahob-py",
        description="Jahob-style verifier with an integrated proof language "
        "(PLDI 2009 reproduction)",
    )
    parser.add_argument(
        "--timeout-scale",
        type=float,
        default=1.0,
        help="scale factor applied to every per-prover timeout",
    )
    parser.add_argument(
        "--perf",
        action="store_true",
        help="print term-interning and proof-cache counters after the run",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the sequent-level proof cache",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard prover dispatch across N worker processes "
        "(verdicts are identical to the sequential run)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist proof-cache verdicts under DIR across runs "
        "(invalidated automatically on portfolio or fingerprint changes)",
    )
    parser.add_argument(
        "--no-persist",
        action="store_true",
        help="with --cache-dir: read the persistent cache but do not write it back",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list benchmark data structures")
    verify = subparsers.add_parser("verify", help="verify one data structure")
    verify.add_argument("name", help="data structure name (see 'list')")
    verify.add_argument(
        "--no-proofs",
        action="store_true",
        help="strip the integrated proof language constructs first",
    )
    subparsers.add_parser("table1", help="regenerate Table 1")
    subparsers.add_parser("table2", help="regenerate Table 2")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    from ..suite.catalog import all_structures, structure_by_name

    portfolio = default_portfolio(with_cache=not args.no_cache)
    portfolio = portfolio.scaled(args.timeout_scale)
    engine = VerificationEngine(
        portfolio,
        use_proof_cache=not args.no_cache,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        persist=not args.no_persist,
    )

    if args.command == "list":
        for cls in all_structures():
            print(cls.name)
        return 0

    if args.command == "verify":
        cls = structure_by_name(args.name)
        report = engine.verify_class(cls, strip_proofs=args.no_proofs)
        for method_report in report.methods:
            status = "ok" if method_report.verified else "FAILED"
            print(
                f"{cls.name}.{method_report.method_name}: "
                f"{method_report.sequents_proved}/{method_report.sequents_total} "
                f"sequents ({method_report.elapsed:.1f}s) {status}"
            )
            for outcome in method_report.failed_sequents:
                print(f"    failed: {outcome.sequent.label}")
        print(
            f"total: {report.sequents_proved}/{report.sequents_total} sequents, "
            f"{report.methods_verified}/{report.methods_total} methods, "
            f"{report.elapsed:.1f}s"
        )
        if args.perf:
            _print_perf(engine)
        return 0 if report.verified else 1

    if args.command == "table1":
        rows = table1_rows(all_structures(), engine)
        print(format_table1(rows))
        if args.perf:
            print()
            _print_perf(engine)
        return 0

    if args.command == "table2":
        rows = [row for row, _, _ in table2_rows(all_structures(), engine)]
        print(format_table2(rows))
        if args.perf:
            print()
            _print_perf(engine)
        return 0

    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
