"""Load harness for the verification service (``jahob-py loadgen``).

The admission layer's claims -- bounded queueing, structured 429s,
per-tenant cache isolation, zero dropped connections under burst -- are
only claims until something hammers the front door.  This module drives N
concurrent HTTP clients with a mixed, mixed-priority op workload against
a daemon (self-hosted in-process by default, or any reachable front door
via ``address=``) and reports what actually happened: latency
percentiles from :class:`~repro.verifier.stats.LatencyHistogram`, every
rejection by code, retry counts, and a **verdict check** -- every load-phase
``verify`` answer is compared against a sequential per-tenant baseline
taken before the storm, so a concurrency bug that flips a verdict fails
the run loudly instead of averaging away.

The harness retries 429s with the server's own ``Retry-After`` hint
(clamped -- a load generator that sleeps 30s per hint measures nothing),
so a healthy run ends with ``gave_up == 0`` and
``dropped_connections == 0`` no matter how hard the queue was thrashed.

``run_loadgen`` returns a JSON-ready record shaped like the
``bench_table1.py --smoke`` artifact; ``benchmarks/load_harness.py``
writes it for CI, and :func:`repro.verifier.report.format_loadgen`
renders it for humans.
"""

from __future__ import annotations

import threading
import time

from .http import HttpApiClient, HttpApiError
from .stats import LatencyHistogram

__all__ = ["DEFAULT_STRUCTURES", "OP_MIX", "run_loadgen"]

#: Catalogue classes the harness verifies -- the two fastest, so the load
#: phase measures the service layer, not the provers.
DEFAULT_STRUCTURES = ("Array List", "Linked List")

#: One client's request rotation: mostly engine-driving ``verify`` (the
#: contended path) with lock-free reads mixed in, the way a real tenant
#: polls metrics while verifications queue.
OP_MIX = ("verify", "verify", "verify", "metrics", "verify", "stats")

#: Retry-After clamp (seconds).  The server's hint is honoured but capped:
#: a load generator exists to thrash the queue, not to politely drain it.
_RETRY_CLAMP = (0.01, 0.25)

#: Per-request retry budget.  With a deliberately tiny queue every client
#: sees many 429s; giving up is a harness failure (``gave_up`` counts it),
#: so the budget is generous.
_MAX_ATTEMPTS = 500


class _Stats:
    """Shared, locked counters for all client threads."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latency = LatencyHistogram()
        self.by_op: dict[str, LatencyHistogram] = {}
        self.succeeded = 0
        self.retries = 0
        self.rejections: dict[str, int] = {}
        self.dropped = 0
        self.gave_up = 0
        self.mismatches: list[dict] = []
        self.checked = 0

    def record_ok(self, op: str, seconds: float) -> None:
        with self.lock:
            self.succeeded += 1
            self.latency.add(seconds)
            self.by_op.setdefault(op, LatencyHistogram()).add(seconds)

    def record_rejection(self, code: str) -> None:
        with self.lock:
            self.retries += 1
            self.rejections[code] = self.rejections.get(code, 0) + 1


def _request_for(op: str, structure: str) -> tuple[str, str, dict | None]:
    if op == "verify":
        return "POST", "/v1/verify", {"name": structure}
    if op == "metrics":
        return "GET", "/v1/metrics", None
    if op == "stats":
        return "GET", "/v1/stats", None
    raise ValueError(f"loadgen has no request shape for op {op!r}")


def _client_worker(
    index: int,
    address: str,
    secret: bytes,
    tenant: str,
    priority: str,
    requests: int,
    structures: tuple[str, ...],
    baseline: dict,
    stats: _Stats,
    start_gate: threading.Event,
) -> None:
    api = HttpApiClient(address, secret, client_id=tenant)
    start_gate.wait()
    for j in range(requests):
        op = OP_MIX[(index + j) % len(OP_MIX)]
        structure = structures[(index + j) % len(structures)]
        method, path, body = _request_for(op, structure)
        if body is not None:
            body["priority"] = priority
        for attempt in range(_MAX_ATTEMPTS):
            begin = time.monotonic()
            try:
                status, response = api.request(method, path, body)
            except HttpApiError:
                with stats.lock:
                    stats.dropped += 1
                break
            elapsed = time.monotonic() - begin
            if status == 429:
                stats.record_rejection(response.get("code") or "busy")
                hint = float(response.get("retry_after") or 0.0)
                low, high = _RETRY_CLAMP
                # Spread retries out by client index: 50 clients waking
                # on the same hint would re-create the burst they just
                # bounced off.
                time.sleep(min(high, max(low, hint)) * (1.0 + index / 50.0))
                continue
            stats.record_ok(op, elapsed)
            if op == "verify" and status == 200:
                with stats.lock:
                    stats.checked += 1
                    expected = baseline[(tenant, structure)]
                    if response.get("exit") != expected:
                        stats.mismatches.append(
                            {
                                "tenant": tenant,
                                "structure": structure,
                                "expected_exit": expected,
                                "got_exit": response.get("exit"),
                            }
                        )
            break
        else:
            with stats.lock:
                stats.gave_up += 1


def run_loadgen(
    clients: int = 50,
    requests_per_client: int = 4,
    tenants: int = 2,
    structures: tuple[str, ...] = DEFAULT_STRUCTURES,
    queue_limit: int = 8,
    rate_limit: float | None = None,
    jobs: int = 2,
    timeout_scale: float = 1.0,
    address: str | None = None,
    secret: bytes | None = None,
) -> dict:
    """Run one load experiment and return its JSON-ready record.

    Self-hosts a ``jobs``-worker daemon with an HTTP front door on a
    loopback port unless ``address`` (plus ``secret``) points at a live
    one.  ``queue_limit`` is deliberately small relative to ``clients``
    so the queue-full path is actually exercised; ``rate_limit`` (per
    tenant, requests/second) is off by default -- a limiter would shape
    the very burst the harness wants to measure.
    """
    tenant_ids = [f"tenant-{i}" for i in range(max(1, tenants))]
    daemon = None
    server_thread = None
    if address is None:
        from .daemon import VerifierDaemon

        secret = secret or b"loadgen-local-secret"
        daemon = VerifierDaemon(
            "127.0.0.1:0",
            jobs=jobs,
            persist=False,
            timeout_scale=timeout_scale,
            secret=secret,
            http="127.0.0.1:0",
            queue_limit=queue_limit,
            rate_limit=rate_limit,
        )
        daemon.bind()
        address = daemon.http_door.address
        server_thread = threading.Thread(
            target=daemon.serve_forever, name="loadgen-daemon", daemon=True
        )
        server_thread.start()
    elif secret is None:
        raise HttpApiError("driving an external front door requires its secret")
    try:
        HttpApiClient(address, secret).wait_ready()

        # Sequential baseline: one verify per (tenant, structure), no
        # concurrency.  Records the ground-truth exit codes the load
        # phase must reproduce bit-identically, and warms each tenant's
        # cache namespace so the storm measures the service layer.
        baseline: dict[tuple[str, str], int] = {}
        baseline_wall = time.monotonic()
        for tenant in tenant_ids:
            api = HttpApiClient(address, secret, client_id=tenant)
            for structure in structures:
                status, response = api.request(
                    "POST", "/v1/verify", {"name": structure}
                )
                if status != 200 or "exit" not in response:
                    raise HttpApiError(
                        f"baseline verify of {structure!r} for {tenant} "
                        f"answered {status}: {response.get('error')}"
                    )
                baseline[(tenant, structure)] = response["exit"]
        baseline_wall = time.monotonic() - baseline_wall

        stats = _Stats()
        start_gate = threading.Event()
        threads = []
        for index in range(clients):
            thread = threading.Thread(
                target=_client_worker,
                args=(
                    index,
                    address,
                    secret,
                    tenant_ids[index % len(tenant_ids)],
                    "interactive" if index % 2 == 0 else "batch",
                    requests_per_client,
                    tuple(structures),
                    baseline,
                    stats,
                    start_gate,
                ),
                name=f"loadgen-client-{index}",
                daemon=True,
            )
            threads.append(thread)
            thread.start()
        load_wall = time.monotonic()
        start_gate.set()  # all clients burst at once
        for thread in threads:
            thread.join()
        load_wall = time.monotonic() - load_wall

        _, metrics = HttpApiClient(address, secret).request("GET", "/v1/metrics")
        admission = metrics.get("admission", {})
        if daemon is None:
            # Against a remote daemon the local queue_limit argument is
            # meaningless; report the server's actual configuration.
            queue_limit = admission.get("queue_limit", queue_limit)
    finally:
        if daemon is not None:
            daemon.stop()
            if server_thread is not None:
                server_thread.join(timeout=30.0)

    return {
        "benchmark": "loadgen",
        "config": {
            "clients": clients,
            "requests_per_client": requests_per_client,
            "tenants": tenant_ids,
            "structures": list(structures),
            "queue_limit": queue_limit,
            "rate_limit": rate_limit,
            "jobs": jobs,
            "timeout_scale": timeout_scale,
            "self_hosted": daemon is not None,
        },
        "wall_seconds": {
            "baseline": round(baseline_wall, 3),
            "load": round(load_wall, 3),
        },
        "requests": {
            "total": clients * requests_per_client,
            "succeeded": stats.succeeded,
            "retries": stats.retries,
            "gave_up": stats.gave_up,
            "dropped_connections": stats.dropped,
        },
        "rejections": dict(sorted(stats.rejections.items())),
        "latency": stats.latency.as_dict(),
        "latency_by_op": {
            op: hist.as_dict() for op, hist in sorted(stats.by_op.items())
        },
        "verdicts": {
            "checked": stats.checked,
            "mismatches": stats.mismatches,
            "baseline": {
                f"{tenant}/{structure}": exit_code
                for (tenant, structure), exit_code in sorted(baseline.items())
            },
        },
        "admission": admission,
    }
