"""Measured cost profiles for adaptive suite scheduling.

The suite scheduler (:mod:`repro.verifier.scheduler`) interleaves dispatch
longest-class-first so that the expensive classes cannot serialize the
tail of a whole-catalogue run.  Until PR 5 "longest" came from the
hard-coded :data:`repro.suite.catalog.CLASS_COST_HINTS` table -- numbers
measured once by hand, with a blind
:data:`~repro.suite.catalog.DEFAULT_COST_HINT` for any class outside the
catalogue -- even though the persistent proof cache already sees every
sequent, with its measured cost, on every run.

:class:`CostModel` closes that loop.  It aggregates two data sources:

* **per-sequent timings** from the warm persistent store
  (:class:`~repro.provers.cache.CachedVerdict.wall` / ``cpu``, store
  format v2) and from live dispatches during this process;
* **per-class profiles** -- the accumulated prover cost of each class's
  distinct sequents, persisted in the store's ``profiles`` section
  (sequent fingerprints are class-agnostic, so class attribution only
  exists at observation time and must be carried separately).

and answers one scheduling question -- "how expensive is this class?" --
through a fixed fallback chain, most-measured first:

1. ``measured``: the class's planned sequent fingerprints have known
   timings; the cost is their sum, with unmeasured stragglers estimated
   at the measured mean;
2. ``profile``:  no per-sequent coverage, but a persisted per-class
   profile exists from an earlier run;
3. ``static``:   the hand-measured :data:`CLASS_COST_HINTS` table;
4. ``default``:  :data:`DEFAULT_COST_HINT`, for classes never seen in
   any form (e.g. ad-hoc structures verified via ``examples/``).

Cost hints only reorder dispatch -- results are merged by shard index and
prover timeouts are per-process CPU budgets -- so nothing in this module
can influence a verdict; the differential harnesses pin that down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..suite.catalog import CLASS_COST_HINTS, DEFAULT_COST_HINT

__all__ = [
    "HINT_MEASURED",
    "HINT_PROFILE",
    "HINT_STATIC",
    "HINT_DEFAULT",
    "ClassCostProfile",
    "CostModel",
]

#: Hint-source labels, in fallback-chain order (see the module docstring).
HINT_MEASURED = "measured"
HINT_PROFILE = "profile"
HINT_STATIC = "static"
HINT_DEFAULT = "default"


@dataclass
class ClassCostProfile:
    """Accumulated measured prover cost of one class's distinct sequents."""

    wall: float = 0.0
    cpu: float = 0.0
    sequents: int = 0

    @property
    def mean_wall(self) -> float:
        return self.wall / self.sequents if self.sequents else 0.0

    def add(self, wall: float, cpu: float) -> None:
        self.wall += wall
        self.cpu += cpu
        self.sequents += 1

    def as_dict(self) -> dict:
        """JSON-ready form (the persistent store's ``profiles`` values).

        Deliberately *unrounded*: floats round-trip JSON exactly, which is
        what lets :meth:`CostModel.reprofile`'s change detection converge
        -- a rounded copy would differ from the recomputed sum by ULPs on
        every warm run and re-dirty the store forever.
        """
        return {"wall": self.wall, "cpu": self.cpu, "sequents": self.sequents}


@dataclass
class CostModel:
    """Per-sequent and per-class cost knowledge of one engine.

    Timings arrive from two directions: :meth:`ingest_entries` /
    :meth:`ingest_profiles` replay what a warm
    :class:`~repro.provers.cache.PersistentCacheStore` already measured,
    and :meth:`observe` folds in every live dispatch.  Class profiles
    deduplicate by sequent fingerprint so repeated runs never double-count
    a sequent: keys that arrived from disk are assumed to be part of the
    persisted profile already and only refresh the per-sequent map.
    Whenever a caller knows a class's *complete* current fingerprint set
    (the engine does, after every run), :meth:`reprofile` rebuilds the
    profile from the per-sequent map outright -- that keeps profiles from
    drifting when sequents are edited away or their store entries are
    evicted, and makes concurrent engines' profile writes converge (each
    write is a self-contained recomputation, not an increment).
    """

    static_hints: dict[str, float] = field(
        default_factory=lambda: dict(CLASS_COST_HINTS)
    )
    default_hint: float = DEFAULT_COST_HINT
    #: Fingerprint -> measured seconds of the sequent's one prover run.
    sequent_wall: dict[tuple, float] = field(default_factory=dict)
    sequent_cpu: dict[tuple, float] = field(default_factory=dict)
    #: Class name -> accumulated profile over its distinct sequents.
    profiles: dict[str, ClassCostProfile] = field(default_factory=dict)
    #: Keys already counted into some class profile (here or on disk).
    _profiled_keys: set = field(default_factory=set)
    #: Bumped on every accepted :meth:`observe`; persistence layers use it
    #: to notice profile changes the proof cache's own mutation counter
    #: cannot see (observations land *after* the run's last checkpoint).
    mutations: int = 0

    # -- data in ----------------------------------------------------------------

    def ingest_entries(self, entries: dict) -> None:
        """Adopt the per-sequent timings of loaded store entries.

        Entries without a measured cost (``wall == 0``: pre-v2 stores,
        or verdicts that were themselves cache hits) carry no signal and
        are skipped.  Disk keys are marked as already profiled -- their
        cost is part of the persisted class profiles.
        """
        for key, verdict in entries.items():
            if verdict.wall > 0.0:
                self.sequent_wall[key] = verdict.wall
                self.sequent_cpu[key] = verdict.cpu
                self._profiled_keys.add(key)

    def ingest_profiles(self, profiles: dict[str, dict]) -> None:
        """Adopt the per-class profiles a persistent store carried."""
        for name, data in profiles.items():
            self.profiles[name] = ClassCostProfile(
                wall=float(data.get("wall", 0.0)),
                cpu=float(data.get("cpu", 0.0)),
                sequents=int(data.get("sequents", 0)),
            )

    def observe(
        self, class_name: str, key: tuple | None, wall: float, cpu: float
    ) -> None:
        """Record one live prover run of ``class_name``'s sequent ``key``.

        ``key`` is ``None`` for engines without a proof cache; the class
        profile still accumulates (that is all the signal there is), the
        per-sequent map obviously cannot.
        """
        if wall <= 0.0:
            return
        self.mutations += 1
        if key is not None:
            self.sequent_wall[key] = wall
            self.sequent_cpu[key] = cpu
            if key in self._profiled_keys:
                return
            self._profiled_keys.add(key)
        self.profiles.setdefault(class_name, ClassCostProfile()).add(wall, cpu)

    def reprofile(self, class_name: str, keys: list) -> None:
        """Rebuild ``class_name``'s profile from its current ``keys``.

        ``keys`` must be the class's complete planned fingerprint set for
        this run; the profile becomes the sum over those with measured
        timings (no-op when none are measured, e.g. cache-less engines --
        those keep the accumulated profile from :meth:`observe`).
        Replacing instead of accumulating is what keeps the profile equal
        to the class's *current* cost after sequents change or store
        entries are evicted.
        """
        wall = cpu = 0.0
        measured = 0
        for key in keys:
            if key is None or key not in self.sequent_wall:
                continue
            wall += self.sequent_wall[key]
            cpu += self.sequent_cpu.get(key, 0.0)
            measured += 1
            self._profiled_keys.add(key)
        if not measured:
            return
        rebuilt = ClassCostProfile(wall=wall, cpu=cpu, sequents=measured)
        current = self.profiles.get(class_name)
        # Persisted per-sequent timings are rounded (6 decimals), so a
        # load-then-reprofile rebuilds sums that differ from the stored
        # profile by up to the rounding quantum per sequent.  Treating
        # that as a change would mark every fully-warm run dirty and
        # re-save the whole store for nothing.
        tolerance = 1e-6 * measured
        if current is None or current.sequents != rebuilt.sequents or (
            abs(current.wall - rebuilt.wall) > tolerance
            or abs(current.cpu - rebuilt.cpu) > tolerance
        ):
            self.profiles[class_name] = rebuilt
            self.mutations += 1

    # -- data out ---------------------------------------------------------------

    def sequent_cost(self, key: tuple | None) -> float | None:
        """The measured wall cost of one sequent, or ``None``."""
        if key is None:
            return None
        return self.sequent_wall.get(key)

    def class_cost(self, name: str, keys: list | None = None) -> tuple[float, str]:
        """``(cost, source)`` for class ``name`` via the fallback chain.

        ``keys`` are the class's planned sequent fingerprints (when the
        caller has them); any measured coverage among them wins over
        every other source.
        """
        if keys:
            known = [
                self.sequent_wall[key]
                for key in keys
                if key is not None and key in self.sequent_wall
            ]
            if known:
                mean = sum(known) / len(known)
                total = sum(known) + mean * (len(keys) - len(known))
                return total, HINT_MEASURED
        profile = self.profiles.get(name)
        if profile is not None and profile.wall > 0.0:
            return profile.wall, HINT_PROFILE
        if name in self.static_hints:
            return self.static_hints[name], HINT_STATIC
        return self.default_hint, HINT_DEFAULT

    def profiles_snapshot(self) -> dict[str, dict]:
        """JSON-ready per-class profiles (for the persistent store).

        Iterates over a list() snapshot (an atomic read under the GIL):
        the daemon's lock-free ``metrics`` op calls this while an engine
        thread may be inserting new classes, and a comprehension over the
        live dict would intermittently raise ``RuntimeError``.
        """
        return {
            name: profile.as_dict()
            for name, profile in list(self.profiles.items())
        }

    def as_dict(self) -> dict:
        """JSON-ready summary for the daemon's ``metrics`` op."""
        return {
            "sequent_timings": len(self.sequent_wall),
            "classes": {
                name: {**profile.as_dict(), "mean_wall": round(profile.mean_wall, 6)}
                for name, profile in list(self.profiles.items())
            },
        }
