"""Construct counting for Table 1.

Table 1 of the paper reports, per data structure: the number of Java
methods and statements, the verification time, the number of specification
variables, local specification variables, data structure invariants and
loop invariants, and the number of uses of each integrated proof language
construct (with the ``note`` column also reporting how many notes carry a
``from`` clause).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend.ast import (
    ClassModel,
    Method,
    ProofStmt,
    Stmt,
    While,
    count_proof_constructs,
    count_statements,
)
from ..proofs.constructs import PROOF_CONSTRUCT_NAMES

__all__ = ["ClassStatistics", "class_statistics", "TABLE1_CONSTRUCT_ORDER"]

#: Proof construct columns in the order Table 1 lists them.
TABLE1_CONSTRUCT_ORDER = (
    "note",
    "localize",
    "assuming",
    "mp",
    "pickAny",
    "instantiate",
    "witness",
    "pickWitness",
    "cases",
    "induct",
)


@dataclass
class ClassStatistics:
    """The static (non-timing) columns of one Table 1 row."""

    class_name: str
    methods: int = 0
    statements: int = 0
    spec_vars: int = 0
    local_spec_vars: int = 0
    invariants: int = 0
    loop_invariants: int = 0
    construct_counts: dict[str, int] = field(default_factory=dict)
    notes_with_from: int = 0

    def construct(self, name: str) -> int:
        return self.construct_counts.get(name, 0)

    @property
    def total_proof_statements(self) -> int:
        return sum(
            count
            for name, count in self.construct_counts.items()
            if name in PROOF_CONSTRUCT_NAMES
        )


def _count_loops(statements: tuple[Stmt, ...]) -> int:
    count = 0
    for statement in statements:
        if isinstance(statement, While):
            count += 1
        count += _count_loops(statement.substatements())
    return count


def class_statistics(cls: ClassModel) -> ClassStatistics:
    """Compute the static Table 1 columns for one data structure."""
    stats = ClassStatistics(class_name=cls.name)
    stats.methods = len(cls.methods)
    stats.spec_vars = len(cls.spec_vars)
    stats.local_spec_vars = len(cls.ghost_vars)
    stats.invariants = len(cls.invariants)
    for method in cls.methods:
        stats.statements += count_statements(method)
        stats.loop_invariants += _count_loops(method.body)
        for name, count in count_proof_constructs(method).items():
            if name == "note_with_from":
                stats.notes_with_from += count
            else:
                stats.construct_counts[name] = (
                    stats.construct_counts.get(name, 0) + count
                )
    return stats
