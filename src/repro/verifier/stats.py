"""Construct counting for Table 1.

Table 1 of the paper reports, per data structure: the number of Java
methods and statements, the verification time, the number of specification
variables, local specification variables, data structure invariants and
loop invariants, and the number of uses of each integrated proof language
construct (with the ``note`` column also reporting how many notes carry a
``from`` clause).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend.ast import (
    ClassModel,
    Stmt,
    While,
    count_proof_constructs,
    count_statements,
)
from ..logic.terms import term_stats
from ..proofs.constructs import PROOF_CONSTRUCT_NAMES

__all__ = [
    "ClassStatistics",
    "class_statistics",
    "TABLE1_CONSTRUCT_ORDER",
    "PerformanceCounters",
    "performance_counters",
    "LATENCY_BUCKETS",
    "LatencyHistogram",
]

#: Proof construct columns in the order Table 1 lists them.
TABLE1_CONSTRUCT_ORDER = (
    "note",
    "localize",
    "assuming",
    "mp",
    "pickAny",
    "instantiate",
    "witness",
    "pickWitness",
    "cases",
    "induct",
)


@dataclass
class ClassStatistics:
    """The static (non-timing) columns of one Table 1 row."""

    class_name: str
    methods: int = 0
    statements: int = 0
    spec_vars: int = 0
    local_spec_vars: int = 0
    invariants: int = 0
    loop_invariants: int = 0
    construct_counts: dict[str, int] = field(default_factory=dict)
    notes_with_from: int = 0

    def construct(self, name: str) -> int:
        return self.construct_counts.get(name, 0)

    @property
    def total_proof_statements(self) -> int:
        return sum(
            count
            for name, count in self.construct_counts.items()
            if name in PROOF_CONSTRUCT_NAMES
        )


#: Upper bucket bounds (seconds) for worker answer-latency histograms --
#: log-spaced from "local process pool" to "prover near its timeout".
LATENCY_BUCKETS = (0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0)


class LatencyHistogram:
    """A tiny fixed-bucket histogram of observed latencies (seconds).

    The remote worker pool keeps one per connection (answer latency,
    coordinator-side); the daemon's ``metrics`` op ships
    :meth:`as_dict`.  Buckets are cumulative-free counts per band:
    ``counts[i]`` is the number of samples in
    ``(LATENCY_BUCKETS[i-1], LATENCY_BUCKETS[i]]``, with one overflow
    band at the end.
    """

    def __init__(self) -> None:
        self.counts = [0] * (len(LATENCY_BUCKETS) + 1)
        self.count = 0
        self.total = 0.0
        self.peak = 0.0

    def add(self, seconds: float) -> None:
        for index, bound in enumerate(LATENCY_BUCKETS):
            if seconds <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total += seconds
        self.peak = max(self.peak, seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``) from the buckets.

        Linear interpolation inside the winning band, which is as precise
        as a fixed-bucket histogram gets: exact enough for p50/p95/p99
        load reports, and cheap enough to keep per-connection.  The
        overflow band is clamped to the observed ``peak``.
        """
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        lower = 0.0
        for index, bound in enumerate(LATENCY_BUCKETS):
            band = self.counts[index]
            if seen + band >= rank:
                if not band:
                    return min(lower, self.peak)
                fraction = (rank - seen) / band
                # Clamp to the observed peak: interpolation must not
                # report a quantile above the largest sample.
                return min(lower + fraction * (bound - lower), self.peak)
            seen += band
            lower = bound
        return self.peak

    def as_dict(self) -> dict:
        """JSON-ready snapshot: summary numbers plus per-band counts."""
        bands = [[bound, count] for bound, count in zip(LATENCY_BUCKETS, self.counts)]
        bands.append(["inf", self.counts[-1]])
        return {
            "count": self.count,
            "mean": round(self.mean, 6),
            "max": round(self.peak, 6),
            "p50": round(self.percentile(0.50), 6),
            "p95": round(self.percentile(0.95), 6),
            "p99": round(self.percentile(0.99), 6),
            "buckets": bands,
        }


def _count_loops(statements: tuple[Stmt, ...]) -> int:
    count = 0
    for statement in statements:
        if isinstance(statement, While):
            count += 1
        count += _count_loops(statement.substatements())
    return count


@dataclass
class PerformanceCounters:
    """Cache and allocation counters for one verification run.

    * ``terms_allocated`` / ``terms_interned``: fresh term-kernel nodes
      versus hash-consing pool hits (a pool hit means the structurally equal
      node already existed and was shared instead of rebuilt);
    * ``proof_cache_hits`` / ``proof_cache_misses``: sequents answered from
      the portfolio's sequent-level result cache versus dispatched to the
      provers; ``proof_cache_hits_disk`` is the subset answered by verdicts
      loaded from a persistent cross-run store (the rest are "memory" hits
      produced during this process);
    * ``sequents_attempted`` / ``sequents_proved``: dispatcher totals.
    """

    terms_allocated: int = 0
    terms_interned: int = 0
    proof_cache_hits: int = 0
    proof_cache_misses: int = 0
    proof_cache_hits_disk: int = 0
    sequents_attempted: int = 0
    sequents_proved: int = 0

    @property
    def proof_cache_hits_memory(self) -> int:
        return self.proof_cache_hits - self.proof_cache_hits_disk

    @property
    def intern_hit_rate(self) -> float:
        total = self.terms_allocated + self.terms_interned
        return self.terms_interned / total if total else 0.0

    @property
    def proof_cache_hit_rate(self) -> float:
        total = self.proof_cache_hits + self.proof_cache_misses
        return self.proof_cache_hits / total if total else 0.0

    def as_dict(self) -> dict:
        """A JSON-ready snapshot of every counter (plus the derived rates).

        The verification daemon's ``stats`` op ships exactly this over the
        wire (:mod:`repro.verifier.daemon`), so it must stay limited to
        plain ``str``/``int``/``float`` values.
        """
        return {
            "terms_allocated": self.terms_allocated,
            "terms_interned": self.terms_interned,
            "intern_hit_rate": self.intern_hit_rate,
            "proof_cache_hits": self.proof_cache_hits,
            "proof_cache_hits_memory": self.proof_cache_hits_memory,
            "proof_cache_hits_disk": self.proof_cache_hits_disk,
            "proof_cache_misses": self.proof_cache_misses,
            "proof_cache_hit_rate": self.proof_cache_hit_rate,
            "sequents_attempted": self.sequents_attempted,
            "sequents_proved": self.sequents_proved,
        }


def performance_counters(portfolio=None) -> PerformanceCounters:
    """Collect the performance counters of a run.

    ``portfolio`` is a :class:`~repro.provers.dispatch.ProverPortfolio` (or
    anything with a ``statistics`` attribute); term-kernel counters are
    process-global and always included.
    """
    stats = term_stats()
    counters = PerformanceCounters(
        terms_allocated=stats.allocated,
        terms_interned=stats.interned_hits,
    )
    if portfolio is not None:
        portfolio_stats = portfolio.statistics
        counters.proof_cache_hits = portfolio_stats.cache_hits
        counters.proof_cache_misses = portfolio_stats.cache_misses
        counters.proof_cache_hits_disk = portfolio_stats.cache_hits_disk
        counters.sequents_attempted = portfolio_stats.sequents_attempted
        counters.sequents_proved = portfolio_stats.sequents_proved
    return counters


def class_statistics(cls: ClassModel) -> ClassStatistics:
    """Compute the static Table 1 columns for one data structure."""
    stats = ClassStatistics(class_name=cls.name)
    stats.methods = len(cls.methods)
    stats.spec_vars = len(cls.spec_vars)
    stats.local_spec_vars = len(cls.ghost_vars)
    stats.invariants = len(cls.invariants)
    for method in cls.methods:
        stats.statements += count_statements(method)
        stats.loop_invariants += _count_loops(method.body)
        for name, count in count_proof_constructs(method).items():
            if name == "note_with_from":
                stats.notes_with_from += count
            else:
                stats.construct_counts[name] = (
                    stats.construct_counts.get(name, 0) + count
                )
    return stats
