"""Removing integrated proof language constructs from a program.

Table 2 of the paper compares how much of each data structure verifies with
and without the proof language constructs.  The "without" configuration is
obtained by deleting every proof statement (and every ``from`` clause) from
the program while keeping the ordinary specifications -- contracts, class
invariants and loop invariants -- untouched, exactly as the paper describes
("we obtained these numbers by removing all proof statements from the
program, then attempting to verify the data structure").
"""

from __future__ import annotations

from dataclasses import replace

from ..frontend.ast import (
    AssertStmt,
    ClassModel,
    If,
    Method,
    ProofStmt,
    Stmt,
    While,
)

__all__ = ["strip_proofs_from_method", "strip_proofs_from_class"]


def _strip_block(statements: tuple[Stmt, ...]) -> tuple[Stmt, ...]:
    out: list[Stmt] = []
    for statement in statements:
        if isinstance(statement, ProofStmt):
            continue
        if isinstance(statement, AssertStmt) and statement.from_hints:
            out.append(replace(statement, from_hints=()))
            continue
        if isinstance(statement, If):
            out.append(
                replace(
                    statement,
                    then_branch=_strip_block(statement.then_branch),
                    else_branch=_strip_block(statement.else_branch),
                )
            )
            continue
        if isinstance(statement, While):
            out.append(replace(statement, body=_strip_block(statement.body)))
            continue
        out.append(statement)
    return tuple(out)


def strip_proofs_from_method(method: Method) -> Method:
    """A copy of ``method`` with all proof constructs removed."""
    return replace(method, body=_strip_block(method.body))


def strip_proofs_from_class(cls: ClassModel) -> ClassModel:
    """A copy of ``cls`` with all proof constructs removed from every method."""
    return replace(cls, methods=tuple(strip_proofs_from_method(m) for m in cls.methods))
