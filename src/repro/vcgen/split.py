"""Goal splitting (Figure 7 of the paper).

A proof obligation with a structured goal is split into an implication list
whose conjunction is equivalent to the original formula:

* ``A --> G1 /\\ G2``     becomes two obligations (one per conjunct),
* ``A --> (B --> G)``     folds ``B`` into the assumption base,
* ``A --> ALL x. G``      introduces a fresh constant for ``x``.

Annotations (assumption names) are preserved, which is what makes the
``from``-clause assumption selection work after splitting.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.subst import FreshNameGenerator, substitute
from ..logic.terms import FORALL, App, Binder, Term, Var, free_var_names

__all__ = ["SplitGoal", "split_goal"]


@dataclass(frozen=True)
class SplitGoal:
    """One piece of a split goal: extra hypotheses plus an atomic-ish goal."""

    hypotheses: tuple[tuple[str, Term], ...]
    goal: Term
    suffix: str


def split_goal(
    formula: Term,
    label: str,
    fresh: FreshNameGenerator | None = None,
    max_pieces: int = 256,
) -> list[SplitGoal]:
    """Split ``formula`` into implications per Figure 7."""
    if fresh is None:
        fresh = FreshNameGenerator(set(free_var_names(formula)))
    pieces: list[SplitGoal] = []
    _split(formula, (), "", label, fresh, pieces, max_pieces)
    # Give the pieces stable, human-readable suffixes.
    if len(pieces) == 1:
        only = pieces[0]
        return [SplitGoal(only.hypotheses, only.goal, "")]
    return pieces


def _split(
    formula: Term,
    hypotheses: tuple[tuple[str, Term], ...],
    suffix: str,
    label: str,
    fresh: FreshNameGenerator,
    out: list[SplitGoal],
    max_pieces: int,
) -> None:
    if len(out) >= max_pieces:
        out.append(SplitGoal(hypotheses, formula, suffix))
        return
    if isinstance(formula, App) and formula.op == "and":
        for index, conjunct in enumerate(formula.args):
            _split(
                conjunct,
                hypotheses,
                f"{suffix}.{index + 1}",
                label,
                fresh,
                out,
                max_pieces,
            )
        return
    if isinstance(formula, App) and formula.op == "implies":
        antecedent, consequent = formula.args
        name = f"{label}{suffix}.hyp" if suffix else f"{label}.hyp"
        _split(
            consequent,
            hypotheses + ((name, antecedent),),
            suffix,
            label,
            fresh,
            out,
            max_pieces,
        )
        return
    if isinstance(formula, Binder) and formula.kind == FORALL:
        renaming: dict[Var, Term] = {}
        for name, sort in formula.params:
            renaming[Var(name, sort)] = Var(fresh.fresh(name), sort)
        body = substitute(formula.body, renaming)
        _split(body, hypotheses, suffix, label, fresh, out, max_pieces)
        return
    out.append(SplitGoal(hypotheses, formula, suffix))
