"""Sequents: the unit of work handed to the prover portfolio.

A sequent is one implication produced by splitting a verification condition
(Figure 7): a list of *named* assumptions (the assumption base), a goal, a
label identifying which proof obligation it came from, and an optional
``from`` clause restricting the assumption base (the paper's
assumption-base control).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic import builder as b
from ..logic.simplify import simplify
from ..logic.terms import FALSE, TRUE, Term
from ..provers.result import ProofTask

__all__ = ["Sequent"]


@dataclass(frozen=True)
class Sequent:
    """One proof obligation: ``assumptions |- goal``."""

    assumptions: tuple[tuple[str, Term], ...]
    goal: Term
    label: str
    from_hints: tuple[str, ...] = ()
    local_assumptions: tuple[tuple[str, Term], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "assumptions", tuple(self.assumptions))
        object.__setattr__(self, "from_hints", tuple(self.from_hints))
        object.__setattr__(self, "local_assumptions", tuple(self.local_assumptions))

    # -- inspection ---------------------------------------------------------------

    @property
    def assumption_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.assumptions)

    def with_assumption(self, name: str, formula: Term) -> "Sequent":
        """A copy with one more assumption prepended (earlier program point)."""
        return Sequent(
            ((name, formula),) + self.assumptions,
            self.goal,
            self.label,
            self.from_hints,
            self.local_assumptions,
        )

    def map_formulas(self, transform) -> "Sequent":
        """A copy with ``transform`` applied to every formula."""
        return Sequent(
            tuple((name, transform(f)) for name, f in self.assumptions),
            transform(self.goal),
            self.label,
            self.from_hints,
            tuple((name, transform(f)) for name, f in self.local_assumptions),
        )

    # -- trivial discharge -----------------------------------------------------------

    def is_trivial(self) -> bool:
        """Syntactic discharge: goal is true, goal occurs among the
        assumptions, or the assumptions contain false (the eliminations the
        paper applies during splitting)."""
        goal = simplify(self.goal)
        if goal == TRUE:
            return True
        formulas = [f for _, f in self.assumptions + self.local_assumptions]
        if goal in formulas:
            return True
        if any(simplify(f) == FALSE for f in formulas):
            return True
        return False

    # -- conversion -------------------------------------------------------------------

    def to_task(self, apply_from_clause: bool = True) -> ProofTask:
        """Build the :class:`ProofTask` given to the provers.

        When ``apply_from_clause`` is set and the sequent carries ``from``
        hints, the assumption base is restricted to the assumptions whose
        name appears in the hints (local assumptions introduced by goal
        splitting are always kept).
        """
        assumptions = self.assumptions
        if apply_from_clause and self.from_hints:
            wanted = set(self.from_hints)
            assumptions = tuple(
                (name, formula)
                for name, formula in assumptions
                if name in wanted
            )
        return ProofTask(
            self.local_assumptions + assumptions, self.goal, label=self.label
        )

    def formula(self) -> Term:
        """The sequent as a single implication (used for cross-checks)."""
        antecedent = [f for _, f in self.assumptions + self.local_assumptions]
        return b.Implies(b.And(*antecedent), self.goal)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"sequent {self.label}:"]
        for name, formula in self.assumptions + self.local_assumptions:
            lines.append(f"  [{name}] {formula}")
        if self.from_hints:
            lines.append(f"  from {', '.join(self.from_hints)}")
        lines.append(f"  |- {self.goal}")
        return "\n".join(lines)
