"""Verification condition generation: sequents, splitting, assumption control."""

from .assumptions import apply_from_clause, ignore_from_clause, relevance_filter
from .sequent import Sequent
from .split import SplitGoal, split_goal
from .vcgen import VcGenerator, generate_sequents

__all__ = [
    "Sequent",
    "SplitGoal",
    "VcGenerator",
    "apply_from_clause",
    "generate_sequents",
    "ignore_from_clause",
    "relevance_filter",
    "split_goal",
]
