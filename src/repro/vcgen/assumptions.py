"""Assumption-base control utilities.

The paper stresses (Sections 1.1, 4.2, 6.3) that an assumption base with
irrelevant facts can make otherwise-provable sequents intractable, and that
the ``from`` clause of ``note``/``assert`` is the developer's tool for
focusing the provers.  The mechanism itself lives in
:meth:`repro.vcgen.sequent.Sequent.to_task`; this module adds helpers used by
the verification engine, the ablation benchmarks and the tests:

* :func:`apply_from_clause` / :func:`ignore_from_clause` convert sequents to
  prover tasks with selection respectively enabled and disabled (the ablation
  of experiment E5 measures the difference);
* :func:`relevance_filter` implements a simple automatic fallback selection
  (keep assumptions sharing symbols with the goal), which is what a developer
  would approximate manually when no ``from`` clause is given.
"""

from __future__ import annotations

from ..logic.terms import Term, free_var_names, function_symbols
from ..provers.result import ProofTask
from .sequent import Sequent

__all__ = ["apply_from_clause", "ignore_from_clause", "relevance_filter"]


def apply_from_clause(sequent: Sequent) -> ProofTask:
    """The proof task with ``from``-clause assumption selection applied."""
    return sequent.to_task(apply_from_clause=True)


def ignore_from_clause(sequent: Sequent) -> ProofTask:
    """The proof task with the full assumption base (selection disabled)."""
    return sequent.to_task(apply_from_clause=False)


def _symbols(formula: Term) -> frozenset[str]:
    return free_var_names(formula) | function_symbols(formula)


def relevance_filter(
    task: ProofTask, max_assumptions: int = 60, rounds: int = 2
) -> ProofTask:
    """Heuristic assumption selection by symbol reachability from the goal.

    Starting from the symbols of the goal, keep assumptions that share a
    symbol with the current relevant-symbol set, expanding the set for a few
    rounds (a simplified version of the relevance filtering used by
    Sledgehammer-style tools).  If everything fits within
    ``max_assumptions`` the task is returned unchanged.
    """
    if len(task.assumptions) <= max_assumptions:
        return task
    relevant = _symbols(task.goal)
    kept: list[tuple[str, Term]] = []
    kept_set: set[int] = set()
    for _ in range(rounds):
        for index, (name, formula) in enumerate(task.assumptions):
            if index in kept_set:
                continue
            if _symbols(formula) & relevant:
                kept.append((name, formula))
                kept_set.add(index)
                relevant = relevant | _symbols(formula)
            if len(kept) >= max_assumptions:
                break
        if len(kept) >= max_assumptions:
            break
    return ProofTask(tuple(kept), task.goal, task.label)
