"""Verification-condition generation over simple guarded commands.

The generator walks a simple guarded command backwards, maintaining the list
of pending sequents (proof obligations of later program points):

* ``assume l:F``     adds the named assumption ``(l, F)`` to every pending
  sequent -- this is how the assumption base of the paper is built;
* ``assert l:F from h`` emits new sequents for ``F`` (split per Figure 7) and
  records the ``from`` clause for assumption-base control;
* ``havoc x``        renames ``x`` to a fresh constant in all pending
  sequents (the sequent-level counterpart of ``wlp(havoc x, G) = ALL x. G``
  followed by Figure 7's fresh-variable rule);
* choice             duplicates the pending sequents down both branches;
* ``assume false``   discharges all pending sequents of the branch, which is
  what makes the proof constructs' dead branches contribute only their own
  obligations.

The result is equivalent to generating ``wlp(c, post)`` and splitting it with
the Figure 7 rules (the test suite cross-checks both against the finite-model
evaluator); producing sequents directly keeps the assumption names attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gcl.simple import (
    SAssert,
    SAssume,
    SChoice,
    SHavoc,
    SimpleCommand,
    SSeq,
    SSkip,
)
from ..logic.simplify import simplify
from ..logic.subst import FreshNameGenerator, substitute
from ..logic.terms import FALSE, Term, Var, free_var_names
from .sequent import Sequent
from .split import split_goal

__all__ = ["generate_sequents", "VcGenerator"]


@dataclass
class VcGenerator:
    """Backward sequent generator for simple guarded commands.

    ``simplify_formulas`` is off by default so that sequents keep their
    algebraic shape: the SMT-lite prover performs comprehension elimination
    itself, while the BAPA-style set reasoner prefers the un-expanded set
    equalities and cardinalities.
    """

    simplify_formulas: bool = False
    max_sequents: int = 20000
    _fresh: FreshNameGenerator = field(default_factory=FreshNameGenerator)

    # -- public API ----------------------------------------------------------------

    def generate(
        self,
        command: SimpleCommand,
        post: Term | None = None,
        post_label: str = "Post",
        post_hints: tuple[str, ...] = (),
    ) -> list[Sequent]:
        """Sequents whose validity establishes ``{true} command {post}``."""
        self._reserve_names(command, post)
        pending: list[Sequent] = []
        if post is not None:
            pending = self._obligations_for(post, post_label, post_hints)
        result = self._process(command, pending)
        if self.simplify_formulas:
            result = [sequent.map_formulas(simplify) for sequent in result]
        return [sequent for sequent in result if not sequent.is_trivial()]

    # -- helpers ---------------------------------------------------------------------

    def _reserve_names(self, command: SimpleCommand, post: Term | None) -> None:
        names: set[str] = set()
        stack: list[SimpleCommand] = [command]
        while stack:
            current = stack.pop()
            if isinstance(current, (SAssume, SAssert)):
                names |= free_var_names(current.formula)
            elif isinstance(current, SHavoc):
                names |= {var.name for var in current.variables}
            stack.extend(current.children())
        if post is not None:
            names |= free_var_names(post)
        for name in names:
            self._fresh.reserve(name)

    def _obligations_for(
        self, formula: Term, label: str, hints: tuple[str, ...]
    ) -> list[Sequent]:
        pieces = split_goal(formula, label, self._fresh)
        return [
            Sequent(
                assumptions=(),
                goal=piece.goal,
                label=f"{label}{piece.suffix}",
                from_hints=hints,
                local_assumptions=piece.hypotheses,
            )
            for piece in pieces
        ]

    # -- the backward pass -----------------------------------------------------------

    def _process(self, command: SimpleCommand, pending: list[Sequent]) -> list[Sequent]:
        if isinstance(command, SSkip):
            return pending
        if isinstance(command, SAssume):
            if command.formula == FALSE or simplify(command.formula) == FALSE:
                # The dead-branch cut of the proof constructs: nothing after
                # this point contributes obligations to this branch.
                return []
            label = command.label or "Assume"
            return [
                sequent.with_assumption(label, command.formula)
                for sequent in pending
            ]
        if isinstance(command, SAssert):
            new_obligations = self._obligations_for(
                command.formula, command.label or "Assert", command.from_hints
            )
            return new_obligations + pending
        if isinstance(command, SHavoc):
            if not command.variables or not pending:
                return pending
            renaming: dict[Var, Term] = {
                var: Var(self._fresh.fresh(var.name), var.sort)
                for var in command.variables
            }

            def rename(formula: Term) -> Term:
                return substitute(formula, renaming)

            return [sequent.map_formulas(rename) for sequent in pending]
        if isinstance(command, SChoice):
            left = self._process(command.left, list(pending))
            right = self._process(command.right, list(pending))
            combined = left + right
            if len(combined) > self.max_sequents:
                raise RuntimeError(
                    f"verification produced more than {self.max_sequents} sequents"
                )
            return combined
        if isinstance(command, SSeq):
            current = pending
            for sub in reversed(command.commands):
                current = self._process(sub, current)
            return current
        raise TypeError(f"unknown simple command {type(command)!r}")


def generate_sequents(
    command: SimpleCommand,
    post: Term | None = None,
    post_label: str = "Post",
    post_hints: tuple[str, ...] = (),
) -> list[Sequent]:
    """Convenience wrapper around :class:`VcGenerator`."""
    return VcGenerator().generate(command, post, post_label, post_hints)
