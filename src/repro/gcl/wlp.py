"""Weakest liberal preconditions for simple guarded commands (Figure 5).

    wlp(assume l:F, G)        = F --> G
    wlp(assert l:F from h, G) = F /\\ G
    wlp(havoc x, G)           = ALL x. G
    wlp(skip, G)              = G
    wlp(c1 [] c2, G)          = wlp(c1, G) /\\ wlp(c2, G)
    wlp(c1 ; c2, G)           = wlp(c1, wlp(c2, G))

This module is the semantic reference for the whole verification pipeline:
the sequent-producing verification-condition generator in
:mod:`repro.vcgen.vcgen` is checked against it in the test suite, and the
soundness checker for the proof language (:mod:`repro.proofs.soundness`)
uses it to verify ``wlp([[p]], H) --> H`` for every construct, reproducing
the proofs of Appendix A.
"""

from __future__ import annotations

from ..logic import builder as b
from ..logic.terms import Term
from .simple import (
    SAssert,
    SAssume,
    SChoice,
    SHavoc,
    SimpleCommand,
    SSeq,
    SSkip,
)

__all__ = ["wlp"]


def wlp(command: SimpleCommand, post: Term) -> Term:
    """The weakest liberal precondition of ``command`` for ``post``.

    The recursion is memoized by ``(command identity, postcondition)``:
    desugared proof constructs share subcommands, and choices duplicate the
    postcondition into both branches, so identical subproblems recur.  With
    hash-consed terms the memo key costs O(1) and the result of a repeated
    subproblem is the identical formula object.
    """
    return _wlp(command, post, {})


def _wlp(
    command: SimpleCommand,
    post: Term,
    memo: dict[tuple[int, Term], Term],
) -> Term:
    key = (id(command), post)
    cached = memo.get(key)
    if cached is not None:
        return cached
    result = _wlp_uncached(command, post, memo)
    memo[key] = result
    return result


def _wlp_uncached(
    command: SimpleCommand,
    post: Term,
    memo: dict[tuple[int, Term], Term],
) -> Term:
    if isinstance(command, SSkip):
        return post
    if isinstance(command, SAssume):
        return b.Implies(command.formula, post)
    if isinstance(command, SAssert):
        return b.And(command.formula, post)
    if isinstance(command, SHavoc):
        if not command.variables:
            return post
        return b.ForAll(list(command.variables), post)
    if isinstance(command, SChoice):
        return b.And(_wlp(command.left, post, memo), _wlp(command.right, post, memo))
    if isinstance(command, SSeq):
        current = post
        for sub in reversed(command.commands):
            current = _wlp(sub, current, memo)
        return current
    raise TypeError(f"unknown simple command {type(command)!r}")
