"""Translating extended guarded commands into simple commands (Figure 6).

    [[x := F]]                      = havoc v ; assume v = F ;
                                      havoc x ; assume x = v          (v fresh)
    [[if (F) c1 else c2]]           = (assume F ; [[c1]]) [] (assume ~F ; [[c2]])
    [[loop inv(I) c1 while(F) c2]]  = assert I ; havoc mod(c1;c2) ; assume I ;
                                      [[c1]] ;
                                      (assume ~F []
                                       (assume F ; [[c2]] ; assert I ;
                                        assume false))
    [[havoc x suchThat F]]          = assert EX x. F ; havoc x ; assume F

Integrated proof language constructs are translated by
:mod:`repro.proofs.translate` (Figure 8); this module dispatches to it so a
whole method body, code and proofs interleaved, desugars in one pass.
"""

from __future__ import annotations

from ..logic import builder as b
from ..logic.subst import FreshNameGenerator
from ..logic.terms import Var, free_var_names
from .extended import (
    Assert,
    Assign,
    Assume,
    Choice,
    ExtendedCommand,
    Havoc,
    If,
    Loop,
    ProofConstruct,
    Seq,
    Skip,
    assigned_variables,
)
from .simple import SAssert, SAssume, SHavoc, SimpleCommand, schoice, sseq, sskip

__all__ = ["desugar", "Desugarer"]


class Desugarer:
    """Stateful desugaring context carrying the fresh-name generator."""

    def __init__(self, used_names: set[str] | frozenset[str] | None = None) -> None:
        self.fresh = FreshNameGenerator(set(used_names or ()))

    # -- public API --------------------------------------------------------------

    def desugar(self, command: ExtendedCommand) -> SimpleCommand:
        """Translate an extended command into simple guarded commands."""
        if isinstance(command, Skip):
            return sskip()
        if isinstance(command, Assume):
            return SAssume(command.formula, command.label)
        if isinstance(command, Assert):
            return SAssert(command.formula, command.label, command.from_hints)
        if isinstance(command, Assign):
            return self._desugar_assign(command)
        if isinstance(command, Seq):
            return sseq(*(self.desugar(sub) for sub in command.commands))
        if isinstance(command, Choice):
            return schoice(self.desugar(command.left), self.desugar(command.right))
        if isinstance(command, If):
            return self._desugar_if(command)
        if isinstance(command, Loop):
            return self._desugar_loop(command)
        if isinstance(command, Havoc):
            return self._desugar_havoc(command)
        if isinstance(command, ProofConstruct):
            from ..proofs.translate import translate_proof

            return translate_proof(command, self)
        raise TypeError(f"unknown extended command {type(command)!r}")

    # -- individual constructs ------------------------------------------------------

    def _desugar_assign(self, command: Assign) -> SimpleCommand:
        for name in free_var_names(command.expr):
            self.fresh.reserve(name)
        self.fresh.reserve(command.target.name)
        temp = Var(self.fresh.fresh(f"v_{command.target.name}"), command.target.sort)
        return sseq(
            SHavoc((temp,)),
            SAssume(b.Eq(temp, command.expr), "AssignTmp"),
            SHavoc((command.target,)),
            SAssume(b.Eq(command.target, temp), f"Assign_{command.target.name}"),
        )

    def _desugar_if(self, command: If) -> SimpleCommand:
        then_branch = sseq(
            SAssume(command.cond, "BranchCondition"),
            self.desugar(command.then_branch),
        )
        else_branch = sseq(
            SAssume(b.Not(command.cond), "BranchCondition"),
            self.desugar(command.else_branch),
        )
        return schoice(then_branch, else_branch)

    def _desugar_loop(self, command: Loop) -> SimpleCommand:
        modified = assigned_variables(Seq((command.before, command.body)))
        label = command.invariant_label or "LoopInv"
        exit_branch = SAssume(b.Not(command.cond), "LoopExit")
        body_branch = sseq(
            SAssume(command.cond, "LoopCondition"),
            self.desugar(command.body),
            SAssert(command.invariant, f"{label}Preserved"),
            SAssume(b.Bool(False), "LoopCut"),
        )
        return sseq(
            SAssert(command.invariant, f"{label}Initial"),
            SHavoc(modified) if modified else sskip(),
            SAssume(command.invariant, label),
            self.desugar(command.before),
            schoice(exit_branch, body_branch),
        )

    def _desugar_havoc(self, command: Havoc) -> SimpleCommand:
        if command.such_that is None:
            return SHavoc(command.variables)
        label = command.label or "HavocFeasible"
        feasibility = b.Exists(list(command.variables), command.such_that)
        return sseq(
            SAssert(feasibility, label),
            SHavoc(command.variables),
            SAssume(command.such_that, label),
        )


def desugar(
    command: ExtendedCommand,
    used_names: set[str] | frozenset[str] | None = None,
) -> SimpleCommand:
    """Translate ``command`` with a fresh desugaring context."""
    return Desugarer(used_names).desugar(command)
