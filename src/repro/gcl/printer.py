"""Pretty printing of extended and simple guarded commands (debugging aid)."""

from __future__ import annotations

from .extended import (
    Assert,
    Assign,
    Assume,
    Choice,
    ExtendedCommand,
    Havoc,
    If,
    Loop,
    ProofConstruct,
    Seq,
    Skip,
)
from .simple import SAssert, SAssume, SChoice, SHavoc, SimpleCommand, SSeq, SSkip

__all__ = ["format_simple", "format_extended"]

_INDENT = "  "


def format_simple(command: SimpleCommand, depth: int = 0) -> str:
    """Render a simple guarded command as indented text."""
    pad = _INDENT * depth
    if isinstance(command, SSkip):
        return f"{pad}skip"
    if isinstance(command, SAssume):
        label = f"{command.label}: " if command.label else ""
        return f"{pad}assume {label}{command.formula}"
    if isinstance(command, SAssert):
        label = f"{command.label}: " if command.label else ""
        hints = f" from {', '.join(command.from_hints)}" if command.from_hints else ""
        return f"{pad}assert {label}{command.formula}{hints}"
    if isinstance(command, SHavoc):
        names = ", ".join(v.name for v in command.variables)
        return f"{pad}havoc {names}"
    if isinstance(command, SChoice):
        return (
            f"{pad}choice {{\n"
            + format_simple(command.left, depth + 1)
            + f"\n{pad}}} [] {{\n"
            + format_simple(command.right, depth + 1)
            + f"\n{pad}}}"
        )
    if isinstance(command, SSeq):
        return "\n".join(format_simple(sub, depth) for sub in command.commands)
    raise TypeError(f"unknown simple command {type(command)!r}")


def format_extended(command: ExtendedCommand, depth: int = 0) -> str:
    """Render an extended guarded command as indented text."""
    pad = _INDENT * depth
    if isinstance(command, Skip):
        return f"{pad}skip"
    if isinstance(command, Assign):
        return f"{pad}{command.target.name} := {command.expr}"
    if isinstance(command, Assume):
        label = f"{command.label}: " if command.label else ""
        return f"{pad}assume {label}{command.formula}"
    if isinstance(command, Assert):
        label = f"{command.label}: " if command.label else ""
        return f"{pad}assert {label}{command.formula}"
    if isinstance(command, Havoc):
        names = ", ".join(v.name for v in command.variables)
        suffix = f" suchThat {command.such_that}" if command.such_that else ""
        return f"{pad}havoc {names}{suffix}"
    if isinstance(command, Seq):
        return "\n".join(format_extended(sub, depth) for sub in command.commands)
    if isinstance(command, Choice):
        return (
            f"{pad}choice {{\n"
            + format_extended(command.left, depth + 1)
            + f"\n{pad}}} [] {{\n"
            + format_extended(command.right, depth + 1)
            + f"\n{pad}}}"
        )
    if isinstance(command, If):
        return (
            f"{pad}if ({command.cond}) {{\n"
            + format_extended(command.then_branch, depth + 1)
            + f"\n{pad}}} else {{\n"
            + format_extended(command.else_branch, depth + 1)
            + f"\n{pad}}}"
        )
    if isinstance(command, Loop):
        return (
            f"{pad}loop inv({command.invariant})\n"
            + format_extended(command.before, depth + 1)
            + f"\n{pad}while ({command.cond}) {{\n"
            + format_extended(command.body, depth + 1)
            + f"\n{pad}}}"
        )
    if isinstance(command, ProofConstruct):
        return f"{pad}{type(command).__name__}(...)"
    raise TypeError(f"unknown extended command {type(command)!r}")
