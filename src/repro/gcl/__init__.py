"""Guarded command languages, desugaring and weakest liberal preconditions."""

from .desugar import Desugarer, desugar
from .extended import (
    Assert,
    Assign,
    Assume,
    Choice,
    ExtendedCommand,
    Havoc,
    If,
    Loop,
    ProofConstruct,
    Seq,
    Skip,
    assigned_variables,
    eseq,
)
from .printer import format_extended, format_simple
from .simple import (
    SAssert,
    SAssume,
    SChoice,
    SHavoc,
    SimpleCommand,
    SSeq,
    SSkip,
    command_size,
    modified_variables,
    schoice,
    sseq,
    sskip,
)
from .wlp import wlp

__all__ = [name for name in dir() if not name.startswith("_")]
