"""repro -- a reproduction of "An Integrated Proof Language for Imperative
Programs" (Zee, Kuncak, Rinard, PLDI 2009).

The package implements a Jahob-style verification system for a small
imperative object-oriented language:

* :mod:`repro.logic`    -- the specification logic (HOL-ish terms, parser,
  printer, finite-model semantics, normal forms);
* :mod:`repro.gcl`      -- extended and simple guarded commands, weakest
  liberal preconditions, and desugaring;
* :mod:`repro.proofs`   -- the integrated proof language and its translation
  into guarded commands, plus the machine-checked soundness argument;
* :mod:`repro.vcgen`    -- verification-condition generation, splitting and
  assumption-base control;
* :mod:`repro.provers`  -- the integrated reasoning portfolio (SAT, EUF,
  linear integer arithmetic, quantifier instantiation, a first-order
  saturation prover, a set-with-cardinality reasoner, a finite model finder)
  and the multi-prover dispatcher;
* :mod:`repro.frontend` -- the mini-Java surface language with `/*: ... */`
  specification comments and its lowering to guarded commands;
* :mod:`repro.verifier` -- the end-to-end verification engine, reporting and
  statistics;
* :mod:`repro.suite`    -- the paper's benchmark suite of linked data
  structures.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
