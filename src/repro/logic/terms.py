"""Term and formula AST for the specification logic.

The logic is a simply-sorted fragment of higher-order logic, rich enough to
express the specifications in the paper's benchmark suite:

* boolean connectives and quantifiers,
* linear integer arithmetic (with ``mod`` for the hash table),
* uninterpreted functions and constants,
* total maps with ``select``/``store`` (modelling Java fields and arrays as
  function-update expressions, exactly as Jahob does),
* finite sets and relations (sets of tuples) with union, intersection,
  difference, membership, subset, and cardinality,
* set comprehensions and lambda abstractions (used by ``vardefs``
  abstraction functions such as
  ``content == {(i, n). 0 <= i & i < size & n = elements[i]}``).

Formulas are simply terms of sort ``bool``.  All AST nodes are immutable and
hashable, so they can be freely shared, memoised and used as dictionary keys
by the provers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from .sorts import (
    BOOL,
    INT,
    OBJ,
    FunSort,
    MapSort,
    SetSort,
    Sort,
    SortError,
    TupleSort,
)

# ---------------------------------------------------------------------------
# Operator registry
# ---------------------------------------------------------------------------

#: Boolean connectives.
BOOL_OPS = frozenset({"and", "or", "not", "implies", "iff"})

#: Integer arithmetic and comparisons.
ARITH_OPS = frozenset({"add", "sub", "neg", "mul", "div", "mod"})
COMPARE_OPS = frozenset({"lt", "le"})

#: Polymorphic equality.
EQ_OPS = frozenset({"eq"})

#: Map (field / array) operations.
MAP_OPS = frozenset({"select", "store"})

#: Set and relation operations.
SET_OPS = frozenset(
    {"union", "inter", "setminus", "member", "subseteq", "card", "setenum"}
)

#: Tuple construction and projection.
TUPLE_OPS = frozenset({"tuple", "proj"})

#: Conditional term.
ITE_OPS = frozenset({"ite"})

#: ``old`` wrapper -- only appears in surface specifications; the frontend
#: eliminates it before verification-condition generation.
OLD_OPS = frozenset({"old"})

INTERPRETED_OPS = (
    BOOL_OPS
    | ARITH_OPS
    | COMPARE_OPS
    | EQ_OPS
    | MAP_OPS
    | SET_OPS
    | TUPLE_OPS
    | ITE_OPS
    | OLD_OPS
)

#: Binder kinds.
FORALL = "forall"
EXISTS = "exists"
LAMBDA = "lambda"
COMPREHENSION = "compr"
BINDER_KINDS = frozenset({FORALL, EXISTS, LAMBDA, COMPREHENSION})


class Term:
    """Base class of all AST nodes.  Instances are immutable and hashable."""

    __slots__ = ()

    sort: Sort

    @property
    def is_formula(self) -> bool:
        """True when the term has sort ``bool``."""
        return self.sort == BOOL

    # The children/rebuild protocol lets generic traversals (substitution,
    # simplification, evaluation) work uniformly over every node type.
    def children(self) -> tuple["Term", ...]:
        return ()

    def rebuild(self, children: tuple["Term", ...]) -> "Term":
        if children:
            raise ValueError(f"{type(self).__name__} has no children")
        return self

    def __str__(self) -> str:
        from .printer import to_ascii

        return to_ascii(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self}>"


@dataclass(frozen=True, repr=False)
class Var(Term):
    """A variable (bound or free) with an explicit sort."""

    name: str
    sort: Sort = field(default=OBJ)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")


@dataclass(frozen=True, repr=False)
class Const(Term):
    """An uninterpreted constant symbol (e.g. ``null``)."""

    name: str
    sort: Sort = field(default=OBJ)


@dataclass(frozen=True, repr=False)
class IntLit(Term):
    """An integer literal."""

    value: int
    sort: Sort = field(default=INT, init=False)


@dataclass(frozen=True, repr=False)
class BoolLit(Term):
    """A boolean literal (``true`` / ``false``)."""

    value: bool
    sort: Sort = field(default=BOOL, init=False)


@dataclass(frozen=True, repr=False)
class App(Term):
    """Application of an operator or uninterpreted function to arguments.

    ``op`` is either one of the interpreted operator names in
    :data:`INTERPRETED_OPS` or the name of an uninterpreted function symbol.
    The result sort is stored explicitly so that traversals never need to
    re-infer it.
    """

    op: str
    args: tuple[Term, ...]
    sort: Sort = field(default=BOOL)

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))

    @property
    def is_interpreted(self) -> bool:
        return self.op in INTERPRETED_OPS

    def children(self) -> tuple[Term, ...]:
        return self.args

    def rebuild(self, children: tuple[Term, ...]) -> "App":
        if children == self.args:
            return self
        return App(self.op, tuple(children), self.sort)


@dataclass(frozen=True, repr=False)
class Binder(Term):
    """A binder: universal/existential quantifier, lambda, or comprehension.

    ``params`` is a tuple of ``(name, sort)`` pairs.  The sort of the binder
    itself is derived from its kind:

    * ``forall`` / ``exists`` -- ``bool``,
    * ``lambda``              -- a map sort from the parameter sort(s),
    * ``compr``               -- a set sort over the parameter sort(s); a
      comprehension with several parameters denotes a set of tuples, e.g.
      ``{(i, n). P}`` has sort ``(int * obj) set``.
    """

    kind: str
    params: tuple[tuple[str, Sort], ...]
    body: Term
    sort: Sort = field(init=False)

    def __post_init__(self) -> None:
        if self.kind not in BINDER_KINDS:
            raise ValueError(f"unknown binder kind {self.kind!r}")
        if not self.params:
            raise ValueError("binder must bind at least one variable")
        object.__setattr__(self, "params", tuple(self.params))
        object.__setattr__(self, "sort", self._derive_sort())

    def _derive_sort(self) -> Sort:
        if self.kind in (FORALL, EXISTS):
            if self.body.sort != BOOL:
                raise SortError(
                    f"quantifier body must be bool, got {self.body.sort}"
                )
            return BOOL
        param_sorts = tuple(s for _, s in self.params)
        elem: Sort
        elem = param_sorts[0] if len(param_sorts) == 1 else TupleSort(param_sorts)
        if self.kind == COMPREHENSION:
            if self.body.sort != BOOL:
                raise SortError(
                    f"comprehension body must be bool, got {self.body.sort}"
                )
            return SetSort(elem)
        # lambda
        if len(param_sorts) == 1:
            return MapSort(param_sorts[0], self.body.sort)
        return FunSort(param_sorts, self.body.sort)

    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(n for n, _ in self.params)

    @property
    def param_vars(self) -> tuple[Var, ...]:
        return tuple(Var(n, s) for n, s in self.params)

    def children(self) -> tuple[Term, ...]:
        return (self.body,)

    def rebuild(self, children: tuple[Term, ...]) -> "Binder":
        (body,) = children
        if body is self.body:
            return self
        return Binder(self.kind, self.params, body)


# Canonical literals and constants shared across the code base.
TRUE = BoolLit(True)
FALSE = BoolLit(False)
ZERO = IntLit(0)
ONE = IntLit(1)
NULL = Const("null", OBJ)


# ---------------------------------------------------------------------------
# Free variables and symbols
# ---------------------------------------------------------------------------


@lru_cache(maxsize=65536)
def free_vars(term: Term) -> frozenset[Var]:
    """Return the set of free variables of ``term``."""
    if isinstance(term, Var):
        return frozenset({term})
    if isinstance(term, (Const, IntLit, BoolLit)):
        return frozenset()
    if isinstance(term, App):
        result: frozenset[Var] = frozenset()
        for arg in term.args:
            result |= free_vars(arg)
        return result
    if isinstance(term, Binder):
        bound = {Var(n, s) for n, s in term.params}
        return free_vars(term.body) - bound
    raise TypeError(f"unknown term type {type(term)!r}")


@lru_cache(maxsize=65536)
def free_var_names(term: Term) -> frozenset[str]:
    """Return the names of the free variables of ``term``."""
    return frozenset(v.name for v in free_vars(term))


@lru_cache(maxsize=65536)
def function_symbols(term: Term) -> frozenset[str]:
    """Return the uninterpreted function/constant symbols used by ``term``."""
    if isinstance(term, Const):
        return frozenset({term.name})
    if isinstance(term, (Var, IntLit, BoolLit)):
        return frozenset()
    if isinstance(term, App):
        result = frozenset() if term.is_interpreted else frozenset({term.op})
        for arg in term.args:
            result |= function_symbols(arg)
        return result
    if isinstance(term, Binder):
        return function_symbols(term.body)
    raise TypeError(f"unknown term type {type(term)!r}")


def is_closed(term: Term) -> bool:
    """True when the term has no free variables."""
    return not free_vars(term)


def subterms(term: Term):
    """Yield every subterm of ``term`` (including ``term`` itself), pre-order."""
    stack = [term]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(current.children()))


def term_size(term: Term) -> int:
    """Number of AST nodes in ``term``."""
    return sum(1 for _ in subterms(term))


def contains_quantifier(term: Term) -> bool:
    """True when ``term`` contains a ``forall`` or ``exists`` binder."""
    return any(
        isinstance(t, Binder) and t.kind in (FORALL, EXISTS) for t in subterms(term)
    )


def contains_binder(term: Term) -> bool:
    """True when ``term`` contains any binder (including lambdas)."""
    return any(isinstance(t, Binder) for t in subterms(term))
