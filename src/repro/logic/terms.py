"""Hash-consed term and formula AST for the specification logic.

The logic is a simply-sorted fragment of higher-order logic, rich enough to
express the specifications in the paper's benchmark suite:

* boolean connectives and quantifiers,
* linear integer arithmetic (with ``mod`` for the hash table),
* uninterpreted functions and constants,
* total maps with ``select``/``store`` (modelling Java fields and arrays as
  function-update expressions, exactly as Jahob does),
* finite sets and relations (sets of tuples) with union, intersection,
  difference, membership, subset, and cardinality,
* set comprehensions and lambda abstractions (used by ``vardefs``
  abstraction functions such as
  ``content == {(i, n). 0 <= i & i < size & n = elements[i]}``).

Formulas are simply terms of sort ``bool``.

Terms are *hash-consed*: every constructor interns the node in a pool keyed
by its structural content, so structurally equal terms are the **same
Python object**.  Each node carries

* a structural hash precomputed at construction (``hash`` is O(1) instead
  of O(tree) -- the provers use terms as dictionary keys constantly),
* the frozenset of its free variable names (so the occurs-checks in
  substitution and quantifier pruning are O(1) lookups),
* an identity fast path in ``__eq__``.

The canonical entry points are the classes themselves (``App(...)`` returns
the interned node) and the :func:`mk_var` / :func:`mk_const` / :func:`mk_int`
/ :func:`mk_bool` / :func:`mk_app` / :func:`mk_binder` aliases.  The
:func:`term_stats` counters report pool hits versus fresh allocations so the
benchmark harness can track sharing.
"""

from __future__ import annotations

from functools import lru_cache

from .sorts import (
    BOOL,
    INT,
    OBJ,
    FunSort,
    MapSort,
    SetSort,
    Sort,
    SortError,
    TupleSort,
)

# ---------------------------------------------------------------------------
# Operator registry
# ---------------------------------------------------------------------------

#: Boolean connectives.
BOOL_OPS = frozenset({"and", "or", "not", "implies", "iff"})

#: Integer arithmetic and comparisons.
ARITH_OPS = frozenset({"add", "sub", "neg", "mul", "div", "mod"})
COMPARE_OPS = frozenset({"lt", "le"})

#: Polymorphic equality.
EQ_OPS = frozenset({"eq"})

#: Map (field / array) operations.
MAP_OPS = frozenset({"select", "store"})

#: Set and relation operations.
SET_OPS = frozenset(
    {"union", "inter", "setminus", "member", "subseteq", "card", "setenum"}
)

#: Tuple construction and projection.
TUPLE_OPS = frozenset({"tuple", "proj"})

#: Conditional term.
ITE_OPS = frozenset({"ite"})

#: ``old`` wrapper -- only appears in surface specifications; the frontend
#: eliminates it before verification-condition generation.
OLD_OPS = frozenset({"old"})

INTERPRETED_OPS = (
    BOOL_OPS
    | ARITH_OPS
    | COMPARE_OPS
    | EQ_OPS
    | MAP_OPS
    | SET_OPS
    | TUPLE_OPS
    | ITE_OPS
    | OLD_OPS
)

#: Binder kinds.
FORALL = "forall"
EXISTS = "exists"
LAMBDA = "lambda"
COMPREHENSION = "compr"
BINDER_KINDS = frozenset({FORALL, EXISTS, LAMBDA, COMPREHENSION})


# ---------------------------------------------------------------------------
# Interning pools and allocation statistics
# ---------------------------------------------------------------------------


class TermStats:
    """Counters for the hash-consing pools (see :func:`term_stats`)."""

    __slots__ = ("allocated", "interned_hits")

    def __init__(self) -> None:
        self.allocated = 0
        self.interned_hits = 0

    def reset(self) -> None:
        self.allocated = 0
        self.interned_hits = 0

    @property
    def constructions(self) -> int:
        return self.allocated + self.interned_hits

    @property
    def hit_rate(self) -> float:
        total = self.constructions
        return self.interned_hits / total if total else 0.0

    def snapshot(self) -> "TermStats":
        copy = TermStats()
        copy.allocated = self.allocated
        copy.interned_hits = self.interned_hits
        return copy


_STATS = TermStats()

_VAR_POOL: dict = {}
_CONST_POOL: dict = {}
_INT_POOL: dict = {}
_BOOL_POOL: dict = {}
_APP_POOL: dict = {}
_BINDER_POOL: dict = {}

# Pools are cleared wholesale when they grow past this limit, so a
# long-running service cannot accumulate every term ever built.  Clearing
# is safe: live terms stay valid, equality falls back to the structural
# comparison across a clear, and new constructions simply repopulate the
# pool (see ``clear_term_pools``).
_POOL_LIMIT = 1 << 19

_EMPTY_NAMES: frozenset[str] = frozenset()


def term_stats() -> TermStats:
    """A snapshot of the hash-consing counters (allocations vs pool hits)."""
    return _STATS.snapshot()


def reset_term_stats() -> None:
    """Reset the allocation/pool-hit counters (used by the benchmarks)."""
    _STATS.reset()


def pool_sizes() -> dict[str, int]:
    """Current number of live entries per interning pool."""
    return {
        "var": len(_VAR_POOL),
        "const": len(_CONST_POOL),
        "int": len(_INT_POOL),
        "bool": len(_BOOL_POOL),
        "app": len(_APP_POOL),
        "binder": len(_BINDER_POOL),
    }


def clear_term_pools() -> None:
    """Drop every pool entry (terms alive elsewhere stay valid; equality
    falls back to the structural comparison for nodes created before the
    clear).  Mostly useful to bound memory in very long-running services and
    to make allocation counts reproducible in benchmarks."""
    _VAR_POOL.clear()
    _CONST_POOL.clear()
    _INT_POOL.clear()
    _BOOL_POOL.clear()
    _APP_POOL.clear()
    _BINDER_POOL.clear()
    # Re-seed the canonical literals so new constructions keep returning the
    # module-level TRUE/FALSE/ZERO/ONE/NULL objects.
    _BOOL_POOL[True] = TRUE
    _BOOL_POOL[False] = FALSE
    _INT_POOL[0] = ZERO
    _INT_POOL[1] = ONE
    _CONST_POOL[("null", OBJ)] = NULL
    free_vars.cache_clear()
    function_symbols.cache_clear()


class Term:
    """Base class of all AST nodes.  Instances are immutable, interned and
    hashable; structural equality of interned nodes is object identity."""

    __slots__ = ("sort", "_hash", "_free_names", "__weakref__")

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} instances are immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"{type(self).__name__} instances are immutable")

    def __hash__(self) -> int:
        return self._hash

    def __copy__(self) -> "Term":
        return self

    def __deepcopy__(self, memo: dict) -> "Term":
        return self

    @property
    def is_formula(self) -> bool:
        """True when the term has sort ``bool``."""
        return self.sort is BOOL or self.sort == BOOL

    # The children/rebuild protocol lets generic traversals (substitution,
    # simplification, evaluation) work uniformly over every node type.
    def children(self) -> tuple["Term", ...]:
        return ()

    def rebuild(self, children: tuple["Term", ...]) -> "Term":
        if children:
            raise ValueError(f"{type(self).__name__} has no children")
        return self

    def __str__(self) -> str:
        from .printer import to_ascii

        return to_ascii(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self}>"


def _init(instance: Term, sort: Sort, structural_hash: int, free_names) -> None:
    _set = object.__setattr__
    _set(instance, "sort", sort)
    _set(instance, "_hash", structural_hash)
    _set(instance, "_free_names", free_names)


class Var(Term):
    """A variable (bound or free) with an explicit sort."""

    __slots__ = ("name",)

    def __new__(cls, name: str, sort: Sort = OBJ) -> "Var":
        cached = _VAR_POOL.get((name, sort))
        if cached is not None:
            _STATS.interned_hits += 1
            return cached
        if not name:
            raise ValueError("variable name must be non-empty")
        self = object.__new__(cls)
        object.__setattr__(self, "name", name)
        _init(self, sort, hash((Var, name, sort)), frozenset((name,)))
        if len(_VAR_POOL) >= _POOL_LIMIT:
            _VAR_POOL.clear()
        _VAR_POOL[(name, sort)] = self
        _STATS.allocated += 1
        return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not Var:
            return NotImplemented
        return self.name == other.name and self.sort == other.sort

    __hash__ = Term.__hash__

    def __reduce__(self):
        return (Var, (self.name, self.sort))


class Const(Term):
    """An uninterpreted constant symbol (e.g. ``null``)."""

    __slots__ = ("name",)

    def __new__(cls, name: str, sort: Sort = OBJ) -> "Const":
        cached = _CONST_POOL.get((name, sort))
        if cached is not None:
            _STATS.interned_hits += 1
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "name", name)
        _init(self, sort, hash((Const, name, sort)), _EMPTY_NAMES)
        if len(_CONST_POOL) >= _POOL_LIMIT:
            _CONST_POOL.clear()
            _CONST_POOL[("null", OBJ)] = NULL
        _CONST_POOL[(name, sort)] = self
        _STATS.allocated += 1
        return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not Const:
            return NotImplemented
        return self.name == other.name and self.sort == other.sort

    __hash__ = Term.__hash__

    def __reduce__(self):
        return (Const, (self.name, self.sort))


class IntLit(Term):
    """An integer literal."""

    __slots__ = ("value",)

    def __new__(cls, value: int) -> "IntLit":
        cached = _INT_POOL.get(value)
        if cached is not None:
            _STATS.interned_hits += 1
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "value", value)
        _init(self, INT, hash((IntLit, value)), _EMPTY_NAMES)
        if len(_INT_POOL) >= _POOL_LIMIT:
            _INT_POOL.clear()
            _INT_POOL[0] = ZERO
            _INT_POOL[1] = ONE
        _INT_POOL[value] = self
        _STATS.allocated += 1
        return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not IntLit:
            return NotImplemented
        return self.value == other.value

    __hash__ = Term.__hash__

    def __reduce__(self):
        return (IntLit, (self.value,))


class BoolLit(Term):
    """A boolean literal (``true`` / ``false``)."""

    __slots__ = ("value",)

    def __new__(cls, value: bool) -> "BoolLit":
        cached = _BOOL_POOL.get(value)
        if cached is not None:
            _STATS.interned_hits += 1
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "value", value)
        _init(self, BOOL, hash((BoolLit, value)), _EMPTY_NAMES)
        _BOOL_POOL[value] = self
        _STATS.allocated += 1
        return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not BoolLit:
            return NotImplemented
        return self.value == other.value

    __hash__ = Term.__hash__

    def __reduce__(self):
        return (BoolLit, (self.value,))


def _union_free_names(parts: tuple[Term, ...]) -> frozenset[str]:
    if not parts:
        return _EMPTY_NAMES
    if len(parts) == 1:
        return parts[0]._free_names
    first = parts[0]._free_names
    if all(p._free_names is first or p._free_names <= first for p in parts[1:]):
        return first
    return first.union(*(p._free_names for p in parts[1:]))


class App(Term):
    """Application of an operator or uninterpreted function to arguments.

    ``op`` is either one of the interpreted operator names in
    :data:`INTERPRETED_OPS` or the name of an uninterpreted function symbol.
    The result sort is stored explicitly so that traversals never need to
    re-infer it.
    """

    __slots__ = ("op", "args")

    def __new__(cls, op: str, args, sort: Sort = BOOL) -> "App":
        args = tuple(args)
        # Normal form: ``neg`` of a literal *is* the negative literal.
        # ``IntLit(-n)`` and ``neg(IntLit(n))`` would both print as ``-n``,
        # so folding here (the single choke point every construction path
        # shares -- builders, substitution, rebuild) keeps the ASCII
        # printer/parser pair a bijection on interned terms.
        if op == "neg" and len(args) == 1 and type(args[0]) is IntLit:
            return IntLit(-args[0].value)
        key = (op, args, sort)
        cached = _APP_POOL.get(key)
        if cached is not None:
            _STATS.interned_hits += 1
            return cached
        self = object.__new__(cls)
        _set = object.__setattr__
        _set(self, "op", op)
        _set(self, "args", args)
        _init(self, sort, hash((App, key)), _union_free_names(args))
        if len(_APP_POOL) >= _POOL_LIMIT:
            _APP_POOL.clear()
        _APP_POOL[key] = self
        _STATS.allocated += 1
        return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not App:
            return NotImplemented
        return (
            self._hash == other._hash
            and self.op == other.op
            and self.args == other.args
            and self.sort == other.sort
        )

    __hash__ = Term.__hash__

    def __reduce__(self):
        return (App, (self.op, self.args, self.sort))

    @property
    def is_interpreted(self) -> bool:
        return self.op in INTERPRETED_OPS

    def children(self) -> tuple[Term, ...]:
        return self.args

    def rebuild(self, children: tuple[Term, ...]) -> "App":
        if children == self.args:
            return self
        return App(self.op, tuple(children), self.sort)


class Binder(Term):
    """A binder: universal/existential quantifier, lambda, or comprehension.

    ``params`` is a tuple of ``(name, sort)`` pairs.  The sort of the binder
    itself is derived from its kind:

    * ``forall`` / ``exists`` -- ``bool``,
    * ``lambda``              -- a map sort from the parameter sort(s),
    * ``compr``               -- a set sort over the parameter sort(s); a
      comprehension with several parameters denotes a set of tuples, e.g.
      ``{(i, n). P}`` has sort ``(int * obj) set``.
    """

    __slots__ = ("kind", "params", "body")

    def __new__(cls, kind: str, params, body: Term) -> "Binder":
        params = tuple((name, sort) for name, sort in params)
        key = (kind, params, body)
        cached = _BINDER_POOL.get(key)
        if cached is not None:
            _STATS.interned_hits += 1
            return cached
        if kind not in BINDER_KINDS:
            raise ValueError(f"unknown binder kind {kind!r}")
        if not params:
            raise ValueError("binder must bind at least one variable")
        sort = _derive_binder_sort(kind, params, body)
        self = object.__new__(cls)
        _set = object.__setattr__
        _set(self, "kind", kind)
        _set(self, "params", params)
        _set(self, "body", body)
        bound = frozenset(name for name, _ in params)
        body_free = body._free_names
        free = body_free - bound if body_free & bound else body_free
        _init(self, sort, hash((Binder, key)), free)
        if len(_BINDER_POOL) >= _POOL_LIMIT:
            _BINDER_POOL.clear()
        _BINDER_POOL[key] = self
        _STATS.allocated += 1
        return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not Binder:
            return NotImplemented
        return (
            self._hash == other._hash
            and self.kind == other.kind
            and self.params == other.params
            and self.body == other.body
        )

    __hash__ = Term.__hash__

    def __reduce__(self):
        return (Binder, (self.kind, self.params, self.body))

    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(n for n, _ in self.params)

    @property
    def param_vars(self) -> tuple[Var, ...]:
        return tuple(Var(n, s) for n, s in self.params)

    def children(self) -> tuple[Term, ...]:
        return (self.body,)

    def rebuild(self, children: tuple[Term, ...]) -> "Binder":
        (body,) = children
        if body is self.body:
            return self
        return Binder(self.kind, self.params, body)


def _derive_binder_sort(
    kind: str, params: tuple[tuple[str, Sort], ...], body: Term
) -> Sort:
    if kind in (FORALL, EXISTS):
        if body.sort != BOOL:
            raise SortError(f"quantifier body must be bool, got {body.sort}")
        return BOOL
    param_sorts = tuple(s for _, s in params)
    elem: Sort
    elem = param_sorts[0] if len(param_sorts) == 1 else TupleSort(param_sorts)
    if kind == COMPREHENSION:
        if body.sort != BOOL:
            raise SortError(f"comprehension body must be bool, got {body.sort}")
        return SetSort(elem)
    # lambda
    if len(param_sorts) == 1:
        return MapSort(param_sorts[0], body.sort)
    return FunSort(param_sorts, body.sort)


# ---------------------------------------------------------------------------
# Interning constructor aliases (the ``mk_*`` layer)
# ---------------------------------------------------------------------------

#: Canonical constructors.  The class constructors already intern, so these
#: are aliases; they exist so call sites can state explicitly that they rely
#: on hash-consing.
mk_var = Var
mk_const = Const
mk_int = IntLit
mk_bool = BoolLit
mk_app = App
mk_binder = Binder


# Canonical literals and constants shared across the code base.
TRUE = BoolLit(True)
FALSE = BoolLit(False)
ZERO = IntLit(0)
ONE = IntLit(1)
NULL = Const("null", OBJ)


# ---------------------------------------------------------------------------
# Free variables and symbols
# ---------------------------------------------------------------------------


@lru_cache(maxsize=65536)
def free_vars(term: Term) -> frozenset[Var]:
    """Return the set of free variables of ``term``."""
    if isinstance(term, Var):
        return frozenset({term})
    if isinstance(term, (Const, IntLit, BoolLit)):
        return frozenset()
    if isinstance(term, App):
        if not term._free_names:
            return frozenset()
        result: frozenset[Var] = frozenset()
        for arg in term.args:
            result |= free_vars(arg)
        return result
    if isinstance(term, Binder):
        bound = {Var(n, s) for n, s in term.params}
        return free_vars(term.body) - bound
    raise TypeError(f"unknown term type {type(term)!r}")


def free_var_names(term: Term) -> frozenset[str]:
    """Return the names of the free variables of ``term``.

    This is precomputed during hash-consing, so the call is O(1).
    """
    return term._free_names


@lru_cache(maxsize=65536)
def function_symbols(term: Term) -> frozenset[str]:
    """Return the uninterpreted function/constant symbols used by ``term``."""
    if isinstance(term, Const):
        return frozenset({term.name})
    if isinstance(term, (Var, IntLit, BoolLit)):
        return frozenset()
    if isinstance(term, App):
        result = frozenset() if term.is_interpreted else frozenset({term.op})
        for arg in term.args:
            result |= function_symbols(arg)
        return result
    if isinstance(term, Binder):
        return function_symbols(term.body)
    raise TypeError(f"unknown term type {type(term)!r}")


def is_closed(term: Term) -> bool:
    """True when the term has no free variables."""
    return not term._free_names


def subterms(term: Term):
    """Yield every subterm of ``term`` (including ``term`` itself), pre-order."""
    stack = [term]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(current.children()))


def term_size(term: Term) -> int:
    """Number of AST nodes in ``term`` (tree size, counting repeats)."""
    return sum(1 for _ in subterms(term))


def dag_size(term: Term) -> int:
    """Number of *distinct* nodes in ``term``.

    With hash-consing, shared subterms are the same object, so this is the
    actual memory footprint of the term; ``term_size`` can be exponentially
    larger on formulas with heavy sharing.
    """
    seen: set[int] = set()
    stack = [term]
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        stack.extend(current.children())
    return len(seen)


def contains_quantifier(term: Term) -> bool:
    """True when ``term`` contains a ``forall`` or ``exists`` binder."""
    return any(
        isinstance(t, Binder) and t.kind in (FORALL, EXISTS) for t in subterms(term)
    )


def contains_binder(term: Term) -> bool:
    """True when ``term`` contains any binder (including lambdas)."""
    return any(isinstance(t, Binder) for t in subterms(term))
