"""Parser for the ASCII formula notation.

The concrete syntax follows Jahob's ASCII input notation (an Isabelle/HOL
inspired syntax).  Examples::

    ALL j. 0 <= j & j < index --> o ~= elements[j]
    EX i. (i, o) in old_content & ~(EX j. j < i & (j, o) in old_content)
    content = {(i, n). 0 <= i & i < size & n = arraystate[elements][i]}
    card nodes <= csize

The parser performs sort elaboration: known free variables and function
symbols take their sorts from an *environment* mapping names to sorts, and
unannotated bound variables are inferred by unification.  Bound variables
may also be annotated explicitly (``ALL x : obj. ...``).

The module exposes :func:`parse_formula`, :func:`parse_term` and
:func:`parse_sort`.
"""

from __future__ import annotations

import re
from collections.abc import Mapping
from dataclasses import dataclass, field

from . import builder as b
from .sorts import (
    BOOL,
    INT,
    OBJ,
    FunSort,
    MapSort,
    SetSort,
    Sort,
    SortError,
    TupleSort,
)
from .terms import App, Const, Term, Var

__all__ = ["ParseError", "parse_formula", "parse_term", "parse_sort"]


class ParseError(ValueError):
    """Raised when a formula or sort cannot be parsed or elaborated."""


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<int>\d+)
  | (?P<op><->|-->|:=|<=|>=|~=|~in\b|[=<>+\-*&|~.,(){}\[\]:#\\])
  | (?P<name>[A-Za-z_][A-Za-z_0-9']*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "ALL",
    "EX",
    "lam",
    "true",
    "false",
    "null",
    "in",
    "Un",
    "Int",
    "subseteq",
    "card",
    "old",
    "div",
    "mod",
    "if",
    "then",
    "else",
    "int",
    "bool",
    "obj",
    "set",
}


@dataclass(frozen=True)
class Token:
    kind: str  # "int", "op", "name", "kw", "eof"
    text: str
    pos: int


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens, raising :class:`ParseError` on junk."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup or "op"
        value = match.group()
        if kind == "name" and value in _KEYWORDS:
            kind = "kw"
        tokens.append(Token(kind, value, match.start()))
    tokens.append(Token("eof", "", len(text)))
    return tokens


# ---------------------------------------------------------------------------
# Sort holes and unification
# ---------------------------------------------------------------------------


class _Hole:
    """A unification variable standing for an unknown sort."""

    __slots__ = ("binding",)

    def __init__(self) -> None:
        self.binding: object | None = None  # Sort | _Hole | composite


def _resolve(sort: object) -> object:
    while isinstance(sort, _Hole) and sort.binding is not None:
        sort = sort.binding
    if isinstance(sort, tuple):
        tag = sort[0]
        if tag == "set":
            return ("set", _resolve(sort[1]))
        if tag == "map":
            return ("map", _resolve(sort[1]), _resolve(sort[2]))
        if tag == "tuple":
            return ("tuple", tuple(_resolve(s) for s in sort[1]))
    return sort


def _lift(sort: Sort) -> object:
    """Lift a concrete sort into the hole representation."""
    if isinstance(sort, SetSort):
        return ("set", _lift(sort.elem))
    if isinstance(sort, MapSort):
        return ("map", _lift(sort.dom), _lift(sort.ran))
    if isinstance(sort, TupleSort):
        return ("tuple", tuple(_lift(s) for s in sort.items))
    return sort


def _lower(sort: object, default: Sort = OBJ) -> Sort:
    """Convert a (resolved) hole representation back to a concrete sort."""
    sort = _resolve(sort)
    if isinstance(sort, _Hole):
        return default
    if isinstance(sort, tuple):
        tag = sort[0]
        if tag == "set":
            return SetSort(_lower(sort[1], default))
        if tag == "map":
            return MapSort(_lower(sort[1], default), _lower(sort[2], default))
        if tag == "tuple":
            return TupleSort(tuple(_lower(s, default) for s in sort[1]))
    assert isinstance(sort, Sort)
    return sort


def _unify(left: object, right: object, where: str) -> None:
    left = _resolve(left)
    right = _resolve(right)
    if left is right:
        return
    if isinstance(left, _Hole):
        left.binding = right
        return
    if isinstance(right, _Hole):
        right.binding = left
        return
    if isinstance(left, tuple) and isinstance(right, tuple) and left[0] == right[0]:
        if left[0] == "set":
            _unify(left[1], right[1], where)
            return
        if left[0] == "map":
            _unify(left[1], right[1], where)
            _unify(left[2], right[2], where)
            return
        if left[0] == "tuple":
            if len(left[1]) != len(right[1]):
                raise ParseError(f"tuple arity mismatch in {where}")
            for l_item, r_item in zip(left[1], right[1]):
                _unify(l_item, r_item, where)
            return
    if isinstance(left, Sort) and isinstance(right, Sort) and left == right:
        return
    raise ParseError(
        f"sort mismatch in {where}: {_describe(left)} vs {_describe(right)}"
    )


def _describe(sort: object) -> str:
    sort = _resolve(sort)
    if isinstance(sort, _Hole):
        return "?"
    if isinstance(sort, tuple):
        if sort[0] == "set":
            return f"({_describe(sort[1])}) set"
        if sort[0] == "map":
            return f"({_describe(sort[1])} => {_describe(sort[2])})"
        if sort[0] == "tuple":
            return "(" + " * ".join(_describe(s) for s in sort[1]) + ")"
    return str(sort)


# ---------------------------------------------------------------------------
# Surface syntax tree
# ---------------------------------------------------------------------------


@dataclass
class SNode:
    """Surface syntax node: an operator with children and optional payload."""

    op: str
    children: list["SNode"] = field(default_factory=list)
    name: str | None = None
    value: int | None = None
    binders: list[tuple[str, Sort | None]] = field(default_factory=list)
    sort_cell: object = None  # assigned during elaboration


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[Token], text: str) -> None:
        self.tokens = tokens
        self.text = text
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def at(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.at(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            actual = self.peek()
            wanted = text or kind
            raise ParseError(
                f"expected {wanted!r} but found {actual.text!r} at offset "
                f"{actual.pos} in {self.text!r}"
            )
        return token

    # -- sorts ---------------------------------------------------------------

    def parse_sort(self) -> Sort:
        left = self.parse_product_sort()
        if self.accept("op", "="):
            # '=>' arrives as '=' followed by '>' tokens
            self.expect("op", ">")
            right = self.parse_sort()
            return MapSort(left, right)
        return left

    def parse_product_sort(self) -> Sort:
        items = [self.parse_postfix_sort()]
        while self.accept("op", "*"):
            items.append(self.parse_postfix_sort())
        if len(items) == 1:
            return items[0]
        return TupleSort(tuple(items))

    def parse_postfix_sort(self) -> Sort:
        sort = self.parse_base_sort()
        while self.at("kw", "set"):
            self.advance()
            sort = SetSort(sort)
        return sort

    def parse_base_sort(self) -> Sort:
        if self.accept("kw", "int"):
            return INT
        if self.accept("kw", "bool"):
            return BOOL
        if self.accept("kw", "obj"):
            return OBJ
        if self.accept("op", "("):
            sort = self.parse_sort()
            self.expect("op", ")")
            return sort
        token = self.peek()
        raise ParseError(f"expected a sort at offset {token.pos} in {self.text!r}")

    # -- binders --------------------------------------------------------------

    def parse_binder_list(self) -> list[tuple[str, Sort | None]]:
        binders: list[tuple[str, Sort | None]] = []
        while True:
            if self.accept("op", "("):
                # (x : sort) or (x, y, ...) possibly with sorts
                while True:
                    name = self.expect("name").text
                    sort: Sort | None = None
                    if self.accept("op", ":"):
                        sort = self.parse_sort()
                    binders.append((name, sort))
                    if not self.accept("op", ","):
                        break
                self.expect("op", ")")
            elif self.at("name"):
                name = self.advance().text
                sort = None
                if self.accept("op", ":"):
                    sort = self.parse_sort()
                binders.append((name, sort))
            else:
                break
            self.accept("op", ",")
            if self.at("op", "."):
                break
        if not binders:
            token = self.peek()
            raise ParseError(
                f"expected bound variables at offset {token.pos} in {self.text!r}"
            )
        return binders

    # -- formulas -------------------------------------------------------------

    def parse_formula(self) -> SNode:
        return self.parse_iff()

    def parse_iff(self) -> SNode:
        left = self.parse_implies()
        while self.accept("op", "<->"):
            right = self.parse_implies()
            left = SNode("iff", [left, right])
        return left

    def parse_implies(self) -> SNode:
        left = self.parse_or()
        if self.accept("op", "-->"):
            right = self.parse_implies()
            return SNode("implies", [left, right])
        return left

    def parse_or(self) -> SNode:
        left = self.parse_and()
        while self.accept("op", "|"):
            right = self.parse_and()
            left = SNode("or", [left, right])
        return left

    def parse_and(self) -> SNode:
        left = self.parse_not()
        while self.accept("op", "&"):
            right = self.parse_not()
            left = SNode("and", [left, right])
        return left

    def parse_not(self) -> SNode:
        if self.accept("op", "~"):
            return SNode("not", [self.parse_not()])
        return self.parse_quantified()

    def parse_quantified(self) -> SNode:
        for keyword, op in (("ALL", "forall"), ("EX", "exists"), ("lam", "lambda")):
            if self.at("kw", keyword):
                self.advance()
                binders = self.parse_binder_list()
                self.expect("op", ".")
                body = self.parse_formula()
                node = SNode(op, [body])
                node.binders = binders
                return node
        if self.at("kw", "if"):
            self.advance()
            cond = self.parse_formula()
            self.expect("kw", "then")
            then = self.parse_formula()
            self.expect("kw", "else")
            other = self.parse_formula()
            return SNode("ite", [cond, then, other])
        return self.parse_comparison()

    _RELOPS = {
        "=": "eq",
        "~=": "neq",
        "<": "lt",
        "<=": "le",
        ">": "gt",
        ">=": "ge",
    }

    def parse_comparison(self) -> SNode:
        left = self.parse_sum()
        token = self.peek()
        if token.kind == "op" and token.text in self._RELOPS:
            self.advance()
            right = self.parse_sum()
            return SNode(self._RELOPS[token.text], [left, right])
        if token.kind == "kw" and token.text == "in":
            self.advance()
            right = self.parse_sum()
            return SNode("member", [left, right])
        if token.kind == "op" and token.text == "~in":
            self.advance()
            right = self.parse_sum()
            return SNode("notmember", [left, right])
        if token.kind == "kw" and token.text == "subseteq":
            self.advance()
            right = self.parse_sum()
            return SNode("subseteq", [left, right])
        return left

    def parse_sum(self) -> SNode:
        left = self.parse_product()
        while True:
            if self.accept("op", "+"):
                left = SNode("add", [left, self.parse_product()])
            elif self.accept("op", "-"):
                left = SNode("sub", [left, self.parse_product()])
            elif self.accept("kw", "Un"):
                left = SNode("union", [left, self.parse_product()])
            elif self.accept("op", "\\"):
                left = SNode("setminus", [left, self.parse_product()])
            else:
                return left

    def parse_product(self) -> SNode:
        left = self.parse_unary()
        while True:
            if self.accept("op", "*"):
                left = SNode("mul", [left, self.parse_unary()])
            elif self.accept("kw", "div"):
                left = SNode("div", [left, self.parse_unary()])
            elif self.accept("kw", "mod"):
                left = SNode("mod", [left, self.parse_unary()])
            elif self.accept("kw", "Int"):
                left = SNode("inter", [left, self.parse_unary()])
            else:
                return left

    def parse_unary(self) -> SNode:
        if self.accept("op", "-"):
            return SNode("neg", [self.parse_unary()])
        if self.accept("kw", "card"):
            return SNode("card", [self.parse_unary()])
        if self.accept("kw", "old"):
            return SNode("old", [self.parse_unary()])
        return self.parse_postfix()

    def parse_postfix(self) -> SNode:
        node = self.parse_atom()
        while True:
            if self.accept("op", "["):
                key = self.parse_formula()
                if self.accept("op", ":="):
                    value = self.parse_formula()
                    self.expect("op", "]")
                    node = SNode("store", [node, key, value])
                else:
                    self.expect("op", "]")
                    node = SNode("select", [node, key])
            elif self.accept("op", "#"):
                index = self.expect("int")
                node = SNode("proj", [node], value=int(index.text))
            else:
                return node

    def parse_atom(self) -> SNode:
        token = self.peek()
        if token.kind == "int":
            self.advance()
            return SNode("int", value=int(token.text))
        if token.kind == "kw" and token.text in ("true", "false"):
            self.advance()
            return SNode("bool", value=1 if token.text == "true" else 0)
        if token.kind == "kw" and token.text == "null":
            self.advance()
            return SNode("null")
        if token.kind == "name":
            self.advance()
            if self.accept("op", "("):
                args: list[SNode] = []
                if not self.at("op", ")"):
                    args.append(self.parse_formula())
                    while self.accept("op", ","):
                        args.append(self.parse_formula())
                self.expect("op", ")")
                return SNode("call", args, name=token.text)
            return SNode("var", name=token.text)
        if token.kind == "op" and token.text == "(":
            self.advance()
            first = self.parse_formula()
            if self.accept("op", ","):
                items = [first, self.parse_formula()]
                while self.accept("op", ","):
                    items.append(self.parse_formula())
                self.expect("op", ")")
                return SNode("tuple", items)
            self.expect("op", ")")
            return first
        if token.kind == "op" and token.text == "{":
            return self.parse_braces()
        raise ParseError(
            f"unexpected token {token.text!r} at offset {token.pos} in {self.text!r}"
        )

    def parse_braces(self) -> SNode:
        self.expect("op", "{")
        if self.accept("op", "}"):
            return SNode("emptyset")
        # Try a comprehension first: binder list followed by '.'.
        saved = self.pos
        try:
            binders = self.parse_binder_list()
            if self.accept("op", "."):
                body = self.parse_formula()
                self.expect("op", "}")
                node = SNode("compr", [body])
                node.binders = binders
                return node
        except ParseError:
            pass
        self.pos = saved
        elems = [self.parse_formula()]
        while self.accept("op", ","):
            elems.append(self.parse_formula())
        self.expect("op", "}")
        return SNode("setenum", elems)


# ---------------------------------------------------------------------------
# Elaboration (surface -> typed terms)
# ---------------------------------------------------------------------------


class _Scope:
    """Lexical scope mapping bound variable names to sort cells."""

    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        self.bindings: dict[str, object] = {}

    def lookup(self, name: str) -> object | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return None


class _Elaborator:
    """Infers sorts (pass 1) and builds typed terms (pass 2)."""

    def __init__(
        self,
        env: Mapping[str, Sort],
        functions: Mapping[str, FunSort],
        default_sort: Sort,
        strict: bool,
    ) -> None:
        self.env = dict(env)
        self.functions = dict(functions)
        self.default_sort = default_sort
        self.strict = strict
        self.unknown: dict[str, _Hole] = {}

    # -- pass 1: sort inference ---------------------------------------------

    def infer(self, node: SNode, scope: _Scope) -> object:
        cell = self._infer(node, scope)
        node.sort_cell = cell
        return cell

    def _name_sort(self, name: str, scope: _Scope) -> object:
        bound = scope.lookup(name)
        if bound is not None:
            return bound
        if name in self.env:
            return _lift(self.env[name])
        if self.strict:
            raise ParseError(f"unknown identifier {name!r}")
        hole = self.unknown.setdefault(name, _Hole())
        return hole

    def _infer(self, node: SNode, scope: _Scope) -> object:
        op = node.op
        if op == "int":
            return INT
        if op == "bool":
            return BOOL
        if op == "null":
            return OBJ
        if op == "var":
            assert node.name is not None
            return self._name_sort(node.name, scope)
        if op == "call":
            assert node.name is not None
            signature = self.functions.get(node.name)
            arg_cells = [self.infer(arg, scope) for arg in node.children]
            if signature is None:
                if self.strict:
                    raise ParseError(f"unknown function {node.name!r}")
                return self.unknown.setdefault(f"{node.name}()", _Hole())
            if len(signature.args) != len(node.children):
                raise ParseError(
                    f"function {node.name!r} expects {len(signature.args)} "
                    f"arguments, got {len(node.children)}"
                )
            for cell, expected in zip(arg_cells, signature.args):
                _unify(cell, _lift(expected), f"argument of {node.name}")
            return _lift(signature.ran)
        if op in ("and", "or", "implies", "iff"):
            for child in node.children:
                _unify(self.infer(child, scope), BOOL, op)
            return BOOL
        if op == "not":
            _unify(self.infer(node.children[0], scope), BOOL, op)
            return BOOL
        if op == "ite":
            cond, then, other = node.children
            _unify(self.infer(cond, scope), BOOL, "ite condition")
            then_cell = self.infer(then, scope)
            other_cell = self.infer(other, scope)
            _unify(then_cell, other_cell, "ite branches")
            return then_cell
        if op in ("eq", "neq"):
            left = self.infer(node.children[0], scope)
            right = self.infer(node.children[1], scope)
            _unify(left, right, "equality")
            return BOOL
        if op in ("lt", "le", "gt", "ge"):
            for child in node.children:
                _unify(self.infer(child, scope), INT, op)
            return BOOL
        if op in ("add", "sub", "mul", "div", "mod", "neg"):
            for child in node.children:
                _unify(self.infer(child, scope), INT, op)
            return INT
        if op in ("member", "notmember"):
            elem = self.infer(node.children[0], scope)
            the_set = self.infer(node.children[1], scope)
            _unify(the_set, ("set", elem), "membership")
            return BOOL
        if op == "subseteq":
            left = self.infer(node.children[0], scope)
            right = self.infer(node.children[1], scope)
            elem = _Hole()
            _unify(left, ("set", elem), "subseteq")
            _unify(right, ("set", elem), "subseteq")
            return BOOL
        if op in ("union", "inter", "setminus"):
            left = self.infer(node.children[0], scope)
            right = self.infer(node.children[1], scope)
            elem = _Hole()
            _unify(left, ("set", elem), op)
            _unify(right, ("set", elem), op)
            return ("set", elem)
        if op == "card":
            elem = _Hole()
            _unify(self.infer(node.children[0], scope), ("set", elem), "card")
            return INT
        if op == "setenum":
            elem = _Hole()
            for child in node.children:
                _unify(self.infer(child, scope), elem, "set literal")
            return ("set", elem)
        if op == "emptyset":
            return ("set", _Hole())
        if op == "tuple":
            cells = tuple(self.infer(child, scope) for child in node.children)
            return ("tuple", cells)
        if op == "proj":
            cell = self.infer(node.children[0], scope)
            resolved = _resolve(cell)
            if isinstance(resolved, tuple) and resolved[0] == "tuple":
                assert node.value is not None
                if node.value >= len(resolved[1]):
                    raise ParseError("projection index out of range")
                return resolved[1][node.value]
            return _Hole()
        if op == "select":
            base = self.infer(node.children[0], scope)
            key = self.infer(node.children[1], scope)
            ran = _Hole()
            _unify(base, ("map", key, ran), "select")
            return ran
        if op == "store":
            base = self.infer(node.children[0], scope)
            key = self.infer(node.children[1], scope)
            value = self.infer(node.children[2], scope)
            _unify(base, ("map", key, value), "store")
            return base
        if op == "old":
            return self.infer(node.children[0], scope)
        if op in ("forall", "exists", "lambda", "compr"):
            inner = _Scope(scope)
            cells: list[object] = []
            for name, sort in node.binders:
                cell: object = _lift(sort) if sort is not None else _Hole()
                inner.bindings[name] = cell
                cells.append(cell)
            # Stash the cells so the term-construction pass can read the
            # resolved sorts of unannotated bound variables.
            node.binders_cells = cells  # type: ignore[attr-defined]
            body_cell = self.infer(node.children[0], inner)
            if op in ("forall", "exists", "compr"):
                _unify(body_cell, BOOL, op)
            if op in ("forall", "exists"):
                return BOOL
            elem: object
            elem = cells[0] if len(cells) == 1 else ("tuple", tuple(cells))
            if op == "compr":
                return ("set", elem)
            return ("map", elem, body_cell)
        raise ParseError(f"unknown surface node {op!r}")

    # -- pass 2: term construction -------------------------------------------

    def build(self, node: SNode, scope: dict[str, Var]) -> Term:
        op = node.op
        if op == "int":
            assert node.value is not None
            return b.Int(node.value)
        if op == "bool":
            return b.Bool(bool(node.value))
        if op == "null":
            return Const("null", OBJ)
        if op == "var":
            assert node.name is not None
            if node.name in scope:
                return scope[node.name]
            if node.name in self.env:
                return Var(node.name, self.env[node.name])
            hole = self.unknown.get(node.name)
            sort = _lower(hole, self.default_sort) if hole else self.default_sort
            return Var(node.name, sort)
        if op == "call":
            assert node.name is not None
            args = [self.build(child, scope) for child in node.children]
            signature = self.functions.get(node.name)
            result = signature.ran if signature else self.default_sort
            return App(node.name, tuple(args), result)
        if op in ("forall", "exists", "lambda", "compr"):
            inner_scope = dict(scope)
            params: list[Var] = []
            # Binder sort cells were resolved during pass 1; read back the
            # inferred sorts of unannotated bound variables.
            cells = node.binders_cells  # type: ignore[attr-defined]
            for (name, annotated), cell in zip(node.binders, cells):
                sort = annotated if annotated is not None else _lower(
                    cell, self.default_sort
                )
                var = Var(name, sort)
                params.append(var)
                inner_scope[name] = var
            body = self.build(node.children[0], inner_scope)
            if op == "forall":
                return b.ForAll(params, body)
            if op == "exists":
                return b.Exists(params, body)
            if op == "lambda":
                return b.Lambda(params, body)
            return b.Compr(params, body)
        children = [self.build(child, scope) for child in node.children]
        if op == "and":
            return b.And(*children)
        if op == "or":
            return b.Or(*children)
        if op == "not":
            return b.Not(children[0])
        if op == "implies":
            return b.Implies(children[0], children[1])
        if op == "iff":
            return b.Iff(children[0], children[1])
        if op == "ite":
            return b.Ite(children[0], children[1], children[2])
        if op == "eq":
            return b.Eq(children[0], children[1])
        if op == "neq":
            return b.Neq(children[0], children[1])
        if op == "lt":
            return b.Lt(children[0], children[1])
        if op == "le":
            return b.Le(children[0], children[1])
        if op == "gt":
            return b.Gt(children[0], children[1])
        if op == "ge":
            return b.Ge(children[0], children[1])
        if op == "add":
            return b.Plus(*children)
        if op == "sub":
            return b.Minus(children[0], children[1])
        if op == "neg":
            return b.Neg(children[0])
        if op == "mul":
            return b.Times(children[0], children[1])
        if op == "div":
            return b.Div(children[0], children[1])
        if op == "mod":
            return b.Mod(children[0], children[1])
        if op == "member":
            return b.Member(children[0], children[1])
        if op == "notmember":
            return b.NotMember(children[0], children[1])
        if op == "subseteq":
            return b.SubsetEq(children[0], children[1])
        if op == "union":
            return b.Union(children[0], children[1])
        if op == "inter":
            return b.Inter(children[0], children[1])
        if op == "setminus":
            return b.SetMinus(children[0], children[1])
        if op == "card":
            return b.Card(children[0])
        if op == "setenum":
            return b.SetEnum(*children)
        if op == "emptyset":
            elem = _lower(node.sort_cell, self.default_sort)
            assert isinstance(elem, SetSort)
            return b.EmptySet(elem.elem)
        if op == "tuple":
            return b.Tuple(*children)
        if op == "proj":
            assert node.value is not None
            return b.Proj(node.value, children[0])
        if op == "select":
            return b.Select(children[0], children[1])
        if op == "store":
            return b.Store(children[0], children[1], children[2])
        if op == "old":
            return b.Old(children[0])
        raise ParseError(f"unknown surface node {op!r}")


def parse_formula(
    text: str,
    env: Mapping[str, Sort] | None = None,
    functions: Mapping[str, FunSort] | None = None,
    default_sort: Sort = OBJ,
    strict: bool = False,
) -> Term:
    """Parse a formula (a term of sort ``bool``).

    ``env`` maps free variable names to sorts, ``functions`` maps
    uninterpreted function names to their :class:`~repro.logic.sorts.FunSort`.
    Unknown identifiers default to ``default_sort`` unless ``strict`` is set,
    in which case they raise :class:`ParseError`.
    """
    term = parse_term(text, env, functions, default_sort, strict)
    if term.sort != BOOL:
        raise ParseError(f"expected a formula, got a term of sort {term.sort}")
    return term


def parse_term(
    text: str,
    env: Mapping[str, Sort] | None = None,
    functions: Mapping[str, FunSort] | None = None,
    default_sort: Sort = OBJ,
    strict: bool = False,
) -> Term:
    """Parse a term of any sort."""
    tokens = tokenize(text)
    parser = _Parser(tokens, text)
    surface = parser.parse_formula()
    if not parser.at("eof"):
        extra = parser.peek()
        raise ParseError(
            f"unexpected trailing input {extra.text!r} at offset {extra.pos} "
            f"in {text!r}"
        )
    elab = _Elaborator(env or {}, functions or {}, default_sort, strict)
    _attach_binder_cells(surface)
    try:
        elab.infer(surface, _Scope())
    except SortError as exc:  # surface-level sort issues become parse errors
        raise ParseError(str(exc)) from exc
    try:
        return elab.build(surface, {})
    except SortError as exc:
        raise ParseError(str(exc)) from exc


def _attach_binder_cells(node: SNode) -> None:
    """Prepare binder nodes so pass 1 can stash per-binder sort cells."""
    if node.op in ("forall", "exists", "lambda", "compr"):
        node.binders_cells = []  # type: ignore[attr-defined]
    for child in node.children:
        _attach_binder_cells(child)


def parse_sort(text: str) -> Sort:
    """Parse a sort such as ``int``, ``obj set`` or ``(int * obj) set``."""
    tokens = tokenize(text)
    parser = _Parser(tokens, text)
    sort = parser.parse_sort()
    if not parser.at("eof"):
        extra = parser.peek()
        raise ParseError(f"unexpected trailing input {extra.text!r} in sort {text!r}")
    return sort
