"""Finite-model evaluation of terms.

An :class:`Interpretation` fixes a finite universe for the ``obj`` sort and a
bounded integer range used when enumerating quantifiers over ``int``.  Under
such an interpretation every term of the logic can be evaluated to a Python
value:

* ``bool``  -> ``bool``
* ``int``   -> ``int``
* ``obj``   -> an element of the object universe (``None`` represents ``null``)
* sets      -> ``frozenset``
* tuples    -> ``tuple``
* maps      -> :class:`FiniteMap`

The evaluator is the semantic reference point of the whole reproduction: the
test suite uses it as an oracle (simplification, normal forms, substitution
and the provers are all checked against it on random small interpretations),
and the finite model finder uses it to search for counter-models of invalid
sequents.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from .sorts import BOOL, INT, OBJ, MapSort, SetSort, Sort, TupleSort
from .terms import (
    COMPREHENSION,
    EXISTS,
    FORALL,
    LAMBDA,
    App,
    Binder,
    BoolLit,
    Const,
    IntLit,
    Term,
    Var,
)


class EvaluationError(ValueError):
    """Raised when a term cannot be evaluated under the given interpretation."""


@dataclass(frozen=True)
class FiniteMap:
    """A finite map value with a default for unlisted keys."""

    entries: tuple[tuple[object, object], ...] = ()
    default: object = None

    def get(self, key: object) -> object:
        for k, v in self.entries:
            if k == key:
                return v
        return self.default

    def set(self, key: object, value: object) -> "FiniteMap":
        filtered = tuple((k, v) for k, v in self.entries if k != key)
        return FiniteMap(filtered + ((key, value),), self.default)

    @classmethod
    def from_dict(cls, mapping: Mapping[object, object], default: object = None):
        return cls(tuple(sorted(mapping.items(), key=repr)), default)


@dataclass
class Interpretation:
    """A finite interpretation of the logic.

    ``objects`` is the universe of the ``obj`` sort (``None`` -- i.e. ``null``
    -- is always added).  ``int_range`` bounds the integers enumerated when
    evaluating quantifiers and comprehensions over ``int``; integer *terms*
    are still evaluated exactly.
    """

    objects: tuple[object, ...] = ("o0", "o1", "o2")
    int_range: tuple[int, int] = (-4, 4)
    variables: dict[str, object] = field(default_factory=dict)
    constants: dict[str, object] = field(default_factory=dict)
    functions: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if None not in self.objects:
            self.objects = (None,) + tuple(self.objects)
        self.constants.setdefault("null", None)

    def with_variables(self, extra: Mapping[str, object]) -> "Interpretation":
        merged = dict(self.variables)
        merged.update(extra)
        return Interpretation(
            self.objects, self.int_range, merged, dict(self.constants),
            dict(self.functions),
        )

    # -- domain enumeration ---------------------------------------------------

    def domain(self, sort: Sort, set_depth: int = 1) -> list[object]:
        """Enumerate the finite domain of ``sort``.

        Sets are enumerated only up to ``set_depth`` to keep the search space
        bounded; quantification over set sorts is rare in practice and only
        exercised by small tests.
        """
        if sort == BOOL:
            return [False, True]
        if sort == INT:
            low, high = self.int_range
            return list(range(low, high + 1))
        if sort == OBJ:
            return list(self.objects)
        if isinstance(sort, TupleSort):
            spaces = [self.domain(s, set_depth) for s in sort.items]
            return [tuple(combo) for combo in itertools.product(*spaces)]
        if isinstance(sort, SetSort):
            if set_depth <= 0:
                raise EvaluationError(f"refusing to enumerate nested set sort {sort}")
            base = self.domain(sort.elem, set_depth - 1)
            subsets: list[object] = []
            for size in range(len(base) + 1):
                for combo in itertools.combinations(base, size):
                    subsets.append(frozenset(combo))
            return subsets
        if isinstance(sort, MapSort):
            raise EvaluationError(f"cannot enumerate map sort {sort}")
        raise EvaluationError(f"cannot enumerate sort {sort}")

    def default_value(self, sort: Sort) -> object:
        """A canonical default element of ``sort``."""
        if sort == BOOL:
            return False
        if sort == INT:
            return 0
        if sort == OBJ:
            return None
        if isinstance(sort, SetSort):
            return frozenset()
        if isinstance(sort, TupleSort):
            return tuple(self.default_value(s) for s in sort.items)
        if isinstance(sort, MapSort):
            return FiniteMap((), self.default_value(sort.ran))
        raise EvaluationError(f"no default value for sort {sort}")


def evaluate(term: Term, interp: Interpretation) -> object:
    """Evaluate ``term`` under ``interp``; free variables are looked up in
    ``interp.variables`` and default to the sort's default value."""
    return _eval(term, interp, dict(interp.variables))


def holds(formula: Term, interp: Interpretation) -> bool:
    """Evaluate a formula to a boolean."""
    value = evaluate(formula, interp)
    if not isinstance(value, bool):
        raise EvaluationError(f"formula evaluated to non-boolean {value!r}")
    return value


def _lookup_var(var: Var, interp: Interpretation, env: dict[str, object]) -> object:
    if var.name in env:
        return env[var.name]
    return interp.default_value(var.sort)


def _lookup_function(
    name: str, args: tuple[object, ...], interp: Interpretation, sort: Sort
) -> object:
    table = interp.functions.get(name)
    if table is None:
        return interp.default_value(sort)
    if callable(table):
        return table(*args)
    if isinstance(table, Mapping):
        key = args if len(args) != 1 else args[0]
        if key in table:
            return table[key]
        return interp.default_value(sort)
    if not args:
        return table
    raise EvaluationError(f"cannot apply interpretation of {name!r}")


def _eval(term: Term, interp: Interpretation, env: dict[str, object]) -> object:
    if isinstance(term, Var):
        return _lookup_var(term, interp, env)
    if isinstance(term, Const):
        if term.name in interp.constants:
            return interp.constants[term.name]
        return interp.default_value(term.sort)
    if isinstance(term, IntLit):
        return term.value
    if isinstance(term, BoolLit):
        return term.value
    if isinstance(term, Binder):
        return _eval_binder(term, interp, env)
    if isinstance(term, App):
        return _eval_app(term, interp, env)
    raise EvaluationError(f"unknown term type {type(term)!r}")


def _eval_binder(term: Binder, interp: Interpretation, env: dict[str, object]):
    names = term.param_names
    sorts = [s for _, s in term.params]
    if term.kind in (FORALL, EXISTS):
        spaces = [interp.domain(s) for s in sorts]
        for combo in itertools.product(*spaces):
            inner = dict(env)
            inner.update(zip(names, combo))
            value = _eval(term.body, interp, inner)
            if term.kind == FORALL and not value:
                return False
            if term.kind == EXISTS and value:
                return True
        return term.kind == FORALL
    if term.kind == COMPREHENSION:
        spaces = [interp.domain(s) for s in sorts]
        members = []
        for combo in itertools.product(*spaces):
            inner = dict(env)
            inner.update(zip(names, combo))
            if _eval(term.body, interp, inner):
                members.append(combo[0] if len(combo) == 1 else tuple(combo))
        return frozenset(members)
    if term.kind == LAMBDA:
        if len(sorts) != 1:
            raise EvaluationError("only unary lambdas can be evaluated to maps")
        space = interp.domain(sorts[0])
        entries = []
        for value in space:
            inner = dict(env)
            inner[names[0]] = value
            entries.append((value, _eval(term.body, interp, inner)))
        assert isinstance(term.sort, MapSort)
        return FiniteMap(tuple(entries), interp.default_value(term.sort.ran))
    raise EvaluationError(f"unknown binder kind {term.kind}")


def _eval_app(term: App, interp: Interpretation, env: dict[str, object]):
    op = term.op
    # Short-circuiting boolean connectives.
    if op == "and":
        return all(_eval(a, interp, env) for a in term.args)
    if op == "or":
        return any(_eval(a, interp, env) for a in term.args)
    if op == "not":
        return not _eval(term.args[0], interp, env)
    if op == "implies":
        return (not _eval(term.args[0], interp, env)) or bool(
            _eval(term.args[1], interp, env)
        )
    if op == "iff":
        return bool(_eval(term.args[0], interp, env)) == bool(
            _eval(term.args[1], interp, env)
        )
    if op == "ite":
        if _eval(term.args[0], interp, env):
            return _eval(term.args[1], interp, env)
        return _eval(term.args[2], interp, env)
    args = [_eval(a, interp, env) for a in term.args]
    if op == "eq":
        return args[0] == args[1]
    if op == "lt":
        return args[0] < args[1]
    if op == "le":
        return args[0] <= args[1]
    if op == "add":
        return sum(args)
    if op == "sub":
        return args[0] - args[1]
    if op == "neg":
        return -args[0]
    if op == "mul":
        return args[0] * args[1]
    if op == "div":
        if args[1] == 0:
            return 0
        return args[0] // args[1]
    if op == "mod":
        if args[1] == 0:
            return 0
        return args[0] % args[1]
    if op == "select":
        base = args[0]
        if not isinstance(base, FiniteMap):
            raise EvaluationError("select applied to a non-map value")
        return base.get(args[1])
    if op == "store":
        base = args[0]
        if not isinstance(base, FiniteMap):
            raise EvaluationError("store applied to a non-map value")
        return base.set(args[1], args[2])
    if op == "union":
        return frozenset(args[0]) | frozenset(args[1])
    if op == "inter":
        return frozenset(args[0]) & frozenset(args[1])
    if op == "setminus":
        return frozenset(args[0]) - frozenset(args[1])
    if op == "member":
        return args[0] in args[1]
    if op == "subseteq":
        return frozenset(args[0]) <= frozenset(args[1])
    if op == "card":
        return len(args[0])
    if op == "setenum":
        return frozenset(args)
    if op == "tuple":
        return tuple(args)
    if op == "proj":
        index = args[0]
        return args[1][index]
    if op == "old":
        raise EvaluationError(
            "old(...) must be eliminated before evaluation (it is a "
            "surface-specification construct)"
        )
    # Uninterpreted function or constant symbol.
    return _lookup_function(op, tuple(args), interp, term.sort)


def all_interpretations(
    free: Iterable[Var],
    objects: tuple[object, ...] = ("o0", "o1"),
    int_values: Iterable[int] = (-1, 0, 1, 2),
    int_range: tuple[int, int] = (-1, 2),
) -> Iterable[Interpretation]:
    """Enumerate interpretations assigning all combinations of values to
    ``free`` variables (used by the brute-force validity oracle in tests and
    by the model finder)."""
    free = list(free)
    base = Interpretation(objects=objects, int_range=int_range)
    spaces = []
    for var in free:
        if var.sort == INT:
            spaces.append(list(int_values))
        else:
            spaces.append(base.domain(var.sort))
    for combo in itertools.product(*spaces):
        yield base.with_variables(dict(zip((v.name for v in free), combo)))
