"""Clausal form: literals, clauses and CNF conversion.

Clauses are the common currency of the refutation provers: the SAT core,
the first-order saturation prover and the ground SMT-lite prover all consume
the representation defined here.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import builder as b
from .terms import App, BoolLit, Term

__all__ = ["Literal", "Clause", "cnf_clauses", "negate_literal", "formula_of_clause"]


@dataclass(frozen=True)
class Literal:
    """A signed atom."""

    atom: Term
    positive: bool = True

    def negated(self) -> "Literal":
        return Literal(self.atom, not self.positive)

    def to_formula(self) -> Term:
        return self.atom if self.positive else b.Not(self.atom)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        sign = "" if self.positive else "~"
        return f"{sign}{self.atom}"


Clause = frozenset[Literal]


def negate_literal(literal: Literal) -> Literal:
    """Return the complementary literal."""
    return literal.negated()


def formula_of_clause(clause: Clause) -> Term:
    """The disjunction denoted by a clause."""
    return b.Or(*[lit.to_formula() for lit in clause])


def literal_of(formula: Term) -> Literal:
    """View a formula as a literal (an atom or a negated atom)."""
    if isinstance(formula, App) and formula.op == "not":
        return Literal(formula.args[0], positive=False)
    return Literal(formula, positive=True)


class ClauseBudgetExceeded(RuntimeError):
    """Raised when naive CNF distribution exceeds the configured budget."""


def cnf_clauses(formula: Term, max_clauses: int = 20000) -> list[Clause]:
    """Convert an NNF (quantifier-free or matrix) formula to CNF clauses.

    Uses distribution, which preserves logical equivalence (no fresh
    variables), with a budget guard; the ground SMT pipeline uses the
    Tseitin transformation in :mod:`repro.provers.sat` instead when formulas
    are large.
    """
    clauses = _cnf(formula, max_clauses)
    # Remove tautologies and duplicate clauses.
    result: list[Clause] = []
    seen: set[Clause] = set()
    for clause in clauses:
        if _is_tautology(clause):
            continue
        if clause in seen:
            continue
        seen.add(clause)
        result.append(clause)
    return result


def _is_tautology(clause: Clause) -> bool:
    atoms_pos = {lit.atom for lit in clause if lit.positive}
    atoms_neg = {lit.atom for lit in clause if not lit.positive}
    if atoms_pos & atoms_neg:
        return True
    return any(
        isinstance(lit.atom, BoolLit) and lit.atom.value == lit.positive
        for lit in clause
    )


def _cnf(formula: Term, budget: int) -> list[Clause]:
    if isinstance(formula, BoolLit):
        if formula.value:
            return []
        return [frozenset()]
    if isinstance(formula, App) and formula.op == "and":
        clauses: list[Clause] = []
        for arg in formula.args:
            clauses.extend(_cnf(arg, budget))
            if len(clauses) > budget:
                raise ClauseBudgetExceeded(f"CNF exceeded {budget} clauses")
        return clauses
    if isinstance(formula, App) and formula.op == "or":
        branches = [_cnf(arg, budget) for arg in formula.args]
        product: list[Clause] = [frozenset()]
        for branch in branches:
            new_product: list[Clause] = []
            for left in product:
                for right in branch:
                    new_product.append(left | right)
                    if len(new_product) > budget:
                        raise ClauseBudgetExceeded(f"CNF exceeded {budget} clauses")
            product = new_product
        return product
    return [frozenset({literal_of(formula)})]
