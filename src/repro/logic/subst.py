"""Capture-avoiding substitution, renaming and alpha-equivalence."""

from __future__ import annotations

from collections.abc import Mapping
from itertools import count

from .sorts import SortError
from .terms import (
    App,
    Binder,
    BoolLit,
    Const,
    IntLit,
    Term,
    Var,
    free_var_names,
    free_vars,
)


class FreshNameGenerator:
    """Generate fresh variable names that avoid a set of used names.

    The generator is deterministic: the same sequence of requests with the
    same initial used-set yields the same names, which keeps verification
    condition generation reproducible.
    """

    def __init__(self, used: set[str] | frozenset[str] | None = None) -> None:
        self._used: set[str] = set(used or ())
        self._counters: dict[str, count] = {}

    def fresh(self, base: str) -> str:
        """Return a fresh name derived from ``base``.

        The requested ``base`` itself is always marked as used first: a
        caller freshening away from ``x_1`` must never receive ``x_1`` back
        from the counter (the numeric suffix is stripped to obtain the
        counter stem, so the stem's counter could otherwise regenerate the
        original name), and a base that strips to empty (e.g. ``"_1"``,
        which falls back to the ``"v"`` stem) must not collide with an
        explicitly reserved name.
        """
        original = base
        base = base.rstrip("0123456789_") or "v"
        if original != base:
            self._used.add(original)
        if base not in self._used:
            self._used.add(base)
            return base
        counter = self._counters.setdefault(base, count(1))
        while True:
            candidate = f"{base}_{next(counter)}"
            if candidate not in self._used:
                self._used.add(candidate)
                return candidate

    def reserve(self, name: str) -> None:
        """Mark ``name`` as used."""
        self._used.add(name)


def substitute(term: Term, mapping: Mapping[Var, Term]) -> Term:
    """Capture-avoiding substitution of free variables.

    ``mapping`` maps variables to replacement terms.  Bound variables are
    renamed when they would capture a free variable of a replacement term.
    """
    if not mapping:
        return term
    for var, replacement in mapping.items():
        if var.sort != replacement.sort:
            raise SortError(
                f"substituting {var.name}:{var.sort} with a term of sort "
                f"{replacement.sort}"
            )
    relevant_names = frozenset(v.name for v in mapping)
    if free_var_names(term).isdisjoint(relevant_names):
        return term
    replacement_free = frozenset().union(
        *(free_var_names(t) for t in mapping.values())
    ) if mapping else frozenset()
    return _subst(term, dict(mapping), relevant_names, replacement_free, {})


def _subst(
    term: Term,
    mapping: dict[Var, Term],
    relevant_names: frozenset[str],
    replacement_free: frozenset[str],
    memo: dict[Term, Term],
) -> Term:
    """Substitution memoized by node identity.

    Hash-consed terms are DAGs in practice (shared subterms are the same
    object), so ``memo`` -- valid for one fixed ``mapping`` -- ensures every
    distinct subterm is rewritten at most once.  Subterms without relevant
    free variables are returned untouched, preserving sharing.
    """
    if isinstance(term, Var):
        return mapping.get(term, term)
    if isinstance(term, (Const, IntLit, BoolLit)):
        return term
    if free_var_names(term).isdisjoint(relevant_names):
        return term
    cached = memo.get(term)
    if cached is not None:
        return cached
    if isinstance(term, App):
        new_args = tuple(
            _subst(a, mapping, relevant_names, replacement_free, memo)
            for a in term.args
        )
        result = term.rebuild(new_args)
        memo[term] = result
        return result
    if isinstance(term, Binder):
        bound_names = set(term.param_names)
        inner_mapping = {v: t for v, t in mapping.items() if v.name not in bound_names}
        if not inner_mapping:
            return term
        # Rename bound variables that would capture free variables of the
        # replacement terms.
        needs_rename = [
            (name, sort)
            for name, sort in term.params
            if name in replacement_free
        ]
        params = term.params
        body = term.body
        if needs_rename:
            used = set(free_var_names(body)) | set(replacement_free)
            used |= {v.name for v in inner_mapping}
            gen = FreshNameGenerator(used)
            rename: dict[Var, Term] = {}
            new_params = []
            for name, sort in term.params:
                if name in replacement_free:
                    fresh = gen.fresh(name)
                    rename[Var(name, sort)] = Var(fresh, sort)
                    new_params.append((fresh, sort))
                else:
                    new_params.append((name, sort))
            body = substitute(body, rename)
            params = tuple(new_params)
        if len(inner_mapping) == len(mapping) and body is term.body:
            # No binder parameter shadows the mapping and no renaming
            # happened: the recursion uses the same mapping, so the memo
            # stays valid.
            new_body = _subst(body, mapping, relevant_names, replacement_free, memo)
        else:
            inner_relevant = frozenset(v.name for v in inner_mapping)
            new_body = _subst(body, inner_mapping, inner_relevant, replacement_free, {})
        if new_body is term.body and params == term.params:
            result = term
        else:
            result = Binder(term.kind, params, new_body)
        memo[term] = result
        return result
    raise TypeError(f"unknown term type {type(term)!r}")


def substitute_by_name(term: Term, mapping: Mapping[str, Term]) -> Term:
    """Substitute free variables selected by name (sorts taken from the term)."""
    by_var: dict[Var, Term] = {}
    for var in free_vars(term):
        if var.name in mapping:
            by_var[var] = mapping[var.name]
    return substitute(term, by_var)


def rename_free(term: Term, renaming: Mapping[str, str]) -> Term:
    """Rename free variables (preserving sorts)."""
    by_var: dict[Var, Term] = {}
    for var in free_vars(term):
        if var.name in renaming:
            by_var[var] = Var(renaming[var.name], var.sort)
    return substitute(term, by_var)


def instantiate_binder(binder: Binder, args: tuple[Term, ...] | list[Term]) -> Term:
    """Replace a binder's parameters by ``args`` in its body (beta reduction)."""
    if len(args) != len(binder.params):
        raise ValueError(
            f"binder expects {len(binder.params)} arguments, got {len(args)}"
        )
    mapping = {Var(name, sort): arg for (name, sort), arg in zip(binder.params, args)}
    return substitute(binder.body, mapping)


def alpha_equal(left: Term, right: Term) -> bool:
    """Structural equality modulo renaming of bound variables."""
    return _alpha(left, right, {}, {})


def _alpha(
    left: Term,
    right: Term,
    lmap: dict[str, str],
    rmap: dict[str, str],
) -> bool:
    if isinstance(left, Var) and isinstance(right, Var):
        lname = lmap.get(left.name, left.name)
        rname = rmap.get(right.name, right.name)
        return lname == rname and left.sort == right.sort
    if type(left) is not type(right):
        return False
    if isinstance(left, (Const, IntLit, BoolLit)):
        return left == right
    if isinstance(left, App):
        assert isinstance(right, App)
        if left.op != right.op or len(left.args) != len(right.args):
            return False
        return all(_alpha(la, ra, lmap, rmap) for la, ra in zip(left.args, right.args))
    if isinstance(left, Binder):
        assert isinstance(right, Binder)
        if left.kind != right.kind or len(left.params) != len(right.params):
            return False
        new_lmap = dict(lmap)
        new_rmap = dict(rmap)
        for index, ((lname, lsort), (rname, rsort)) in enumerate(
            zip(left.params, right.params)
        ):
            if lsort != rsort:
                return False
            canonical = f"α{len(lmap)}_{index}"
            new_lmap[lname] = canonical
            new_rmap[rname] = canonical
        return _alpha(left.body, right.body, new_lmap, new_rmap)
    raise TypeError(f"unknown term type {type(left)!r}")
