"""Simplification and definition-expansion rewrites.

The most important job of this module is *comprehension elimination*: the
benchmark specifications define their abstract state through ``vardefs``
abstraction functions such as::

    content == {(i, n). 0 <= i & i < size & n = arraystate[elements][i]}

After the verification-condition generator substitutes these definitions,
verification conditions contain atoms like ``(j, e) in {(i, n). ...}`` and
equalities between comprehensions.  The automated provers work on
arithmetic, uninterpreted functions and quantifiers -- not on set builders --
so :func:`simplify` rewrites

* ``t in {xs . P}``            to  ``P[xs := t]``,
* ``t in A Un B``              to  ``t in A | t in B`` (similarly for
  intersection, difference, finite set literals and singletons),
* ``A = B`` (either side a set construct) to the extensionality formula
  ``ALL x. x in A <-> x in B``,
* ``A subseteq B``             to  ``ALL x. x in A --> x in B``,
* ``select``/``store`` and tuple projections to their reduced forms,
* boolean and arithmetic constant folding.

The rewrites are semantics-preserving (they are checked against the
finite-model evaluator in the test suite) and are applied to a fixpoint.
"""

from __future__ import annotations

from . import builder as b
from .sorts import SetSort, TupleSort
from .subst import FreshNameGenerator, instantiate_binder
from .terms import (
    COMPREHENSION,
    EXISTS,
    FORALL,
    LAMBDA,
    App,
    Binder,
    BoolLit,
    IntLit,
    Term,
    Var,
    free_var_names,
)

__all__ = [
    "simplify",
    "simplify_step",
    "eliminate_comprehensions",
    "clear_simplify_memos",
]

_MAX_PASSES = 12

# Memo tables keyed by (interned) term.  Simplification is a pure function
# of the node, and hash-consing makes structurally equal formulas the same
# object, so results are shared across sequents, methods and classes.  The
# tables are cleared wholesale when they grow past the limit, which bounds
# memory without the bookkeeping of an LRU.
_MEMO_LIMIT = 1 << 17
_FIXPOINT_MEMO: dict[Term, Term] = {}
_REWRITE_MEMO: dict[Term, Term] = {}


def clear_simplify_memos() -> None:
    """Drop the memo tables (used by benchmarks for cold-cache runs)."""
    _FIXPOINT_MEMO.clear()
    _REWRITE_MEMO.clear()


def simplify(term: Term) -> Term:
    """Apply the simplification rules bottom-up until a fixpoint."""
    cached = _FIXPOINT_MEMO.get(term)
    if cached is not None:
        return cached
    current = term
    converged = False
    for _ in range(_MAX_PASSES):
        simplified = _rewrite(current)
        if simplified is current or simplified == current:
            converged = True
            break
        current = simplified
    if len(_FIXPOINT_MEMO) > _MEMO_LIMIT:
        _FIXPOINT_MEMO.clear()
    _FIXPOINT_MEMO[term] = current
    if converged and current is not term:
        # Only a true fixpoint may be recorded as its own result; when the
        # pass budget ran out, a later simplify() of ``current`` must still
        # be allowed to make progress (matching the pre-memo behavior).
        _FIXPOINT_MEMO[current] = current
    return current


def eliminate_comprehensions(term: Term) -> Term:
    """Alias of :func:`simplify`, named for its primary purpose in the
    verification pipeline."""
    return simplify(term)


def simplify_step(term: Term) -> Term:
    """A single bottom-up rewriting pass (exposed for tests)."""
    return _rewrite(term)


def _rewrite(term: Term) -> Term:
    if isinstance(term, Binder):
        cached = _REWRITE_MEMO.get(term)
        if cached is not None:
            return cached
        body = _rewrite(term.body)
        rebuilt = term.rebuild((body,))
        result = _rewrite_binder(rebuilt) if isinstance(rebuilt, Binder) else rebuilt
    elif isinstance(term, App):
        cached = _REWRITE_MEMO.get(term)
        if cached is not None:
            return cached
        args = tuple(_rewrite(a) for a in term.args)
        result = _rewrite_app(term, args)
    else:
        return term
    if len(_REWRITE_MEMO) > _MEMO_LIMIT:
        _REWRITE_MEMO.clear()
    _REWRITE_MEMO[term] = result
    return result


def _rewrite_binder(term: Binder) -> Term:
    if term.kind in (FORALL, EXISTS):
        if isinstance(term.body, BoolLit):
            return term.body
        # Drop bound variables that no longer occur in the body.
        used = free_var_names(term.body)
        remaining = tuple(p for p in term.params if p[0] in used)
        if not remaining:
            return term.body
        if remaining != term.params:
            return Binder(term.kind, remaining, term.body)
    return term


def _bool_args(args: tuple[Term, ...]) -> list[bool] | None:
    values = []
    for arg in args:
        if not isinstance(arg, BoolLit):
            return None
        values.append(arg.value)
    return values


def _int_args(args: tuple[Term, ...]) -> list[int] | None:
    values = []
    for arg in args:
        if not isinstance(arg, IntLit):
            return None
        values.append(arg.value)
    return values


def _rewrite_app(term: App, args: tuple[Term, ...]) -> Term:
    op = term.op
    # Reassemble through the smart constructors to get flattening and the
    # unit laws for free.
    if op == "and":
        return b.And(*args)
    if op == "or":
        return b.Or(*args)
    if op == "not":
        return b.Not(args[0])
    if op == "implies":
        return b.Implies(args[0], args[1])
    if op == "iff":
        values = _bool_args(args)
        if values is not None:
            return b.Bool(values[0] == values[1])
        if isinstance(args[0], BoolLit):
            return args[1] if args[0].value else b.Not(args[1])
        if isinstance(args[1], BoolLit):
            return args[0] if args[1].value else b.Not(args[0])
        return b.Iff(args[0], args[1])
    if op == "ite":
        return b.Ite(args[0], args[1], args[2])
    if op == "eq":
        return _rewrite_eq(args[0], args[1])
    if op in ("lt", "le"):
        values = _int_args(args)
        if values is not None:
            result = values[0] < values[1] if op == "lt" else values[0] <= values[1]
            return b.Bool(result)
        if args[0] == args[1]:
            return b.Bool(op == "le")
        return App(op, args, term.sort)
    if op in ("add", "sub", "neg", "mul", "div", "mod"):
        return _rewrite_arith(op, args, term)
    if op == "select":
        return _rewrite_select(args[0], args[1], term)
    if op == "proj":
        index = args[0]
        tup = args[1]
        if isinstance(index, IntLit) and isinstance(tup, App) and tup.op == "tuple":
            return tup.args[index.value]
        return App("proj", args, term.sort)
    if op == "member":
        return _rewrite_member(args[0], args[1], term)
    if op == "subseteq":
        return _rewrite_subseteq(args[0], args[1])
    if op == "card":
        inner = args[0]
        if isinstance(inner, App) and inner.op == "setenum" and not inner.args:
            return b.Int(0)
        return App("card", args, term.sort)
    return App(op, args, term.sort)


def _rewrite_arith(op: str, args: tuple[Term, ...], term: App) -> Term:
    values = _int_args(args)
    if values is not None:
        if op == "add":
            return b.Int(sum(values))
        if op == "sub":
            return b.Int(values[0] - values[1])
        if op == "neg":
            return b.Int(-values[0])
        if op == "mul":
            return b.Int(values[0] * values[1])
        if op == "div":
            return b.Int(values[0] // values[1]) if values[1] else term
        if op == "mod":
            return b.Int(values[0] % values[1]) if values[1] else term
    if op == "add":
        nonzero = [a for a in args if not (isinstance(a, IntLit) and a.value == 0)]
        constant = sum(a.value for a in args if isinstance(a, IntLit))
        symbolic = [a for a in nonzero if not isinstance(a, IntLit)]
        if constant != 0:
            symbolic.append(b.Int(constant))
        return b.Plus(*symbolic) if symbolic else b.Int(0)
    if op == "sub" and isinstance(args[1], IntLit) and args[1].value == 0:
        return args[0]
    if op == "mul":
        if any(isinstance(a, IntLit) and a.value == 0 for a in args):
            return b.Int(0)
        if isinstance(args[0], IntLit) and args[0].value == 1:
            return args[1]
        if isinstance(args[1], IntLit) and args[1].value == 1:
            return args[0]
    return App(op, args, term.sort)


def _rewrite_eq(left: Term, right: Term) -> Term:
    if left == right:
        return b.Bool(True)
    if isinstance(left, IntLit) and isinstance(right, IntLit):
        return b.Bool(left.value == right.value)
    if isinstance(left, BoolLit) or isinstance(right, BoolLit):
        if isinstance(left, BoolLit) and isinstance(right, BoolLit):
            return b.Bool(left.value == right.value)
        formula, lit = (right, left) if isinstance(left, BoolLit) else (left, right)
        assert isinstance(lit, BoolLit)
        return formula if lit.value else b.Not(formula)
    # Tuple equality is componentwise.
    if (
        isinstance(left, App)
        and isinstance(right, App)
        and left.op == "tuple"
        and right.op == "tuple"
        and len(left.args) == len(right.args)
    ):
        return b.And(*[_rewrite_eq(l, r) for l, r in zip(left.args, right.args)])
    # Set equality through extensionality whenever either side is a set
    # constructor the provers cannot handle natively.
    if isinstance(left.sort, SetSort) and (
        _is_set_construct(left) or _is_set_construct(right)
    ):
        return _set_extensionality(left, right)
    return b.Eq(left, right)


_SET_CONSTRUCT_OPS = {"union", "inter", "setminus", "setenum", "store"}


def _is_set_construct(term: Term) -> bool:
    if isinstance(term, Binder) and term.kind == COMPREHENSION:
        return True
    return isinstance(term, App) and term.op in _SET_CONSTRUCT_OPS and isinstance(
        term.sort, SetSort
    )


def _fresh_element_vars(sort: SetSort, avoid: frozenset[str]) -> list[Var]:
    gen = FreshNameGenerator(set(avoid))
    elem = sort.elem
    if isinstance(elem, TupleSort):
        return [Var(gen.fresh(f"x{i}"), s) for i, s in enumerate(elem.items)]
    return [Var(gen.fresh("x"), elem)]


def _element_term(element_vars: list[Var]) -> Term:
    if len(element_vars) == 1:
        return element_vars[0]
    return b.Tuple(*element_vars)


def _set_extensionality(left: Term, right: Term) -> Term:
    assert isinstance(left.sort, SetSort)
    avoid = free_var_names(left) | free_var_names(right)
    element_vars = _fresh_element_vars(left.sort, avoid)
    element = _element_term(element_vars)
    body = b.Iff(
        _rewrite_member(element, left, None),
        _rewrite_member(element, right, None),
    )
    return b.ForAll(element_vars, body)


def _rewrite_subseteq(left: Term, right: Term) -> Term:
    assert isinstance(left.sort, SetSort)
    if isinstance(left, App) and left.op == "setenum" and not left.args:
        return b.Bool(True)
    avoid = free_var_names(left) | free_var_names(right)
    element_vars = _fresh_element_vars(left.sort, avoid)
    element = _element_term(element_vars)
    body = b.Implies(
        _rewrite_member(element, left, None),
        _rewrite_member(element, right, None),
    )
    return b.ForAll(element_vars, body)


def _split_tuple(elem: Term, arity: int) -> list[Term] | None:
    if isinstance(elem, App) and elem.op == "tuple" and len(elem.args) == arity:
        return list(elem.args)
    return None


def _rewrite_member(elem: Term, the_set: Term, original: App | None) -> Term:
    if isinstance(the_set, Binder) and the_set.kind == COMPREHENSION:
        components = _split_tuple(elem, len(the_set.params))
        if components is None and len(the_set.params) > 1:
            components = [b.Proj(i, elem) for i in range(len(the_set.params))]
        if components is None:
            components = [elem]
        return simplify_step(instantiate_binder(the_set, components))
    if isinstance(the_set, App):
        op = the_set.op
        if op == "setenum":
            if not the_set.args:
                return b.Bool(False)
            return b.Or(*[_rewrite_eq(elem, e) for e in the_set.args])
        if op == "union":
            return b.Or(
                _rewrite_member(elem, the_set.args[0], None),
                _rewrite_member(elem, the_set.args[1], None),
            )
        if op == "inter":
            return b.And(
                _rewrite_member(elem, the_set.args[0], None),
                _rewrite_member(elem, the_set.args[1], None),
            )
        if op == "setminus":
            return b.And(
                _rewrite_member(elem, the_set.args[0], None),
                b.Not(_rewrite_member(elem, the_set.args[1], None)),
            )
        if op == "ite":
            return b.Ite(
                the_set.args[0],
                _rewrite_member(elem, the_set.args[1], None),
                _rewrite_member(elem, the_set.args[2], None),
            )
    return b.Member(elem, the_set)


def _rewrite_select(base: Term, key: Term, term: App) -> Term:
    if isinstance(base, App) and base.op == "store":
        stored_map, stored_key, stored_value = base.args
        if stored_key == key:
            return stored_value
        if _definitely_distinct(stored_key, key):
            return _rewrite_select(stored_map, key, term)
        return App("select", (base, key), term.sort)
    if isinstance(base, Binder) and base.kind == LAMBDA:
        return simplify_step(instantiate_binder(base, [key]))
    return App("select", (base, key), term.sort)


def _definitely_distinct(left: Term, right: Term) -> bool:
    """Syntactic check that two terms denote different values."""
    if isinstance(left, IntLit) and isinstance(right, IntLit):
        return left.value != right.value
    return False
