"""The specification logic: sorts, terms, parsing, printing and semantics."""

from . import builder
from .builder import (
    And,
    ArrayRead,
    ArrayWrite,
    Bool,
    Card,
    Compr,
    EmptySet,
    Eq,
    Exists,
    FieldRead,
    ForAll,
    Ge,
    Gt,
    Iff,
    Implies,
    Int,
    Inter,
    IntVar,
    Ite,
    Lambda,
    Le,
    Lt,
    Member,
    Minus,
    Mod,
    Neg,
    Neq,
    Not,
    NotMember,
    ObjVar,
    Old,
    Or,
    Plus,
    Proj,
    Select,
    SetEnum,
    SetMinus,
    Singleton,
    Store,
    SubsetEq,
    Times,
    Tuple,
    Union,
)
from .evaluator import Interpretation, evaluate, holds
from .parser import ParseError, parse_formula, parse_sort, parse_term
from .printer import to_ascii, to_unicode
from .simplify import simplify
from .sorts import (
    BOOL,
    INT,
    OBJ,
    FunSort,
    MapSort,
    SetSort,
    Sort,
    SortError,
    TupleSort,
    fun_of,
    map_of,
    set_of,
    tuple_of,
)
from .subst import alpha_equal, instantiate_binder, substitute, substitute_by_name
from .terms import (
    FALSE,
    NULL,
    TRUE,
    App,
    Binder,
    BoolLit,
    Const,
    IntLit,
    Term,
    Var,
    free_var_names,
    free_vars,
)

__all__ = [name for name in dir() if not name.startswith("_")]
