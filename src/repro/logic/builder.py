"""Smart constructors for terms and formulas.

These helpers perform light sort inference/checking and some on-the-fly
normalisation (flattening of ``and``/``or``, elimination of trivial
operands) so that the rest of the system can build formulas without
worrying about the raw :class:`~repro.logic.terms.App` representation.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .sorts import (
    BOOL,
    INT,
    OBJ,
    MapSort,
    SetSort,
    Sort,
    SortError,
    TupleSort,
)
from .terms import (
    COMPREHENSION,
    EXISTS,
    FALSE,
    FORALL,
    LAMBDA,
    TRUE,
    App,
    Binder,
    BoolLit,
    IntLit,
    Term,
    Var,
)

# ---------------------------------------------------------------------------
# Boolean connectives
# ---------------------------------------------------------------------------


def _require_bool(term: Term, context: str) -> Term:
    if term.sort != BOOL:
        raise SortError(f"{context} expects a formula, got sort {term.sort}")
    return term


def And(*conjuncts: Term | Iterable[Term]) -> Term:
    """Conjunction.  Flattens nested conjunctions and drops ``true``."""
    flat = _flatten_connective("and", conjuncts)
    if any(c == FALSE for c in flat):
        return FALSE
    flat = [c for c in flat if c != TRUE]
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return App("and", tuple(flat), BOOL)


def Or(*disjuncts: Term | Iterable[Term]) -> Term:
    """Disjunction.  Flattens nested disjunctions and drops ``false``."""
    flat = _flatten_connective("or", disjuncts)
    if any(d == TRUE for d in flat):
        return TRUE
    flat = [d for d in flat if d != FALSE]
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return App("or", tuple(flat), BOOL)


def _flatten_connective(
    op: str, operands: Sequence[Term | Iterable[Term]]
) -> list[Term]:
    flat: list[Term] = []
    work: list[Term] = []
    for operand in operands:
        if isinstance(operand, Term):
            work.append(operand)
        else:
            work.extend(operand)
    for term in work:
        _require_bool(term, op)
        if isinstance(term, App) and term.op == op:
            flat.extend(term.args)
        else:
            flat.append(term)
    return flat


def Not(formula: Term) -> Term:
    """Negation, with double-negation and literal elimination."""
    _require_bool(formula, "not")
    if formula == TRUE:
        return FALSE
    if formula == FALSE:
        return TRUE
    if isinstance(formula, App) and formula.op == "not":
        return formula.args[0]
    return App("not", (formula,), BOOL)


def Implies(antecedent: Term, consequent: Term) -> Term:
    """Implication ``antecedent --> consequent``."""
    _require_bool(antecedent, "implies")
    _require_bool(consequent, "implies")
    if antecedent == TRUE:
        return consequent
    if antecedent == FALSE or consequent == TRUE:
        return TRUE
    return App("implies", (antecedent, consequent), BOOL)


def Iff(left: Term, right: Term) -> Term:
    """Bi-implication ``left <-> right``."""
    _require_bool(left, "iff")
    _require_bool(right, "iff")
    if left == right:
        return TRUE
    return App("iff", (left, right), BOOL)


def Ite(cond: Term, then: Term, other: Term) -> Term:
    """Conditional term ``if cond then ... else ...``."""
    _require_bool(cond, "ite")
    if then.sort != other.sort:
        raise SortError(f"ite branches must agree: {then.sort} vs {other.sort}")
    if cond == TRUE:
        return then
    if cond == FALSE:
        return other
    return App("ite", (cond, then, other), then.sort)


# ---------------------------------------------------------------------------
# Equality and arithmetic
# ---------------------------------------------------------------------------


def Eq(left: Term, right: Term) -> Term:
    """Polymorphic equality."""
    if left.sort != right.sort:
        raise SortError(f"equality between sorts {left.sort} and {right.sort}")
    if left == right:
        return TRUE
    return App("eq", (left, right), BOOL)


def Neq(left: Term, right: Term) -> Term:
    """Disequality, encoded as negated equality."""
    return Not(Eq(left, right))


def _require_int(term: Term, context: str) -> Term:
    if term.sort != INT:
        raise SortError(f"{context} expects int, got {term.sort}")
    return term


def Plus(*terms: Term) -> Term:
    """Integer addition (n-ary, flattened)."""
    flat: list[Term] = []
    for term in terms:
        _require_int(term, "add")
        if isinstance(term, App) and term.op == "add":
            flat.extend(term.args)
        else:
            flat.append(term)
    if not flat:
        return IntLit(0)
    if len(flat) == 1:
        return flat[0]
    return App("add", tuple(flat), INT)


def Minus(left: Term, right: Term) -> Term:
    """Integer subtraction."""
    _require_int(left, "sub")
    _require_int(right, "sub")
    return App("sub", (left, right), INT)


def Neg(term: Term) -> Term:
    """Integer negation (negating a literal folds to the negative literal)."""
    _require_int(term, "neg")
    return App("neg", (term,), INT)


def Times(left: Term, right: Term) -> Term:
    """Integer multiplication."""
    _require_int(left, "mul")
    _require_int(right, "mul")
    return App("mul", (left, right), INT)


def Div(left: Term, right: Term) -> Term:
    """Integer (floor) division."""
    _require_int(left, "div")
    _require_int(right, "div")
    return App("div", (left, right), INT)


def Mod(left: Term, right: Term) -> Term:
    """Integer modulus (used by the hash table's bucket computation)."""
    _require_int(left, "mod")
    _require_int(right, "mod")
    return App("mod", (left, right), INT)


def Lt(left: Term, right: Term) -> Term:
    """Strict less-than."""
    _require_int(left, "lt")
    _require_int(right, "lt")
    return App("lt", (left, right), BOOL)


def Le(left: Term, right: Term) -> Term:
    """Less-than-or-equal."""
    _require_int(left, "le")
    _require_int(right, "le")
    return App("le", (left, right), BOOL)


def Gt(left: Term, right: Term) -> Term:
    """Strict greater-than (normalised to ``lt``)."""
    return Lt(right, left)


def Ge(left: Term, right: Term) -> Term:
    """Greater-than-or-equal (normalised to ``le``)."""
    return Le(right, left)


# ---------------------------------------------------------------------------
# Maps (fields, arrays)
# ---------------------------------------------------------------------------


def Select(map_term: Term, key: Term) -> Term:
    """Read a map: ``map[key]``.

    Java field reads ``x.f`` are encoded as ``Select(f, x)`` where ``f`` is a
    global map-valued variable; array reads ``a[i]`` are encoded as
    ``Select(Select(arrayState, a), i)``.
    """
    if not isinstance(map_term.sort, MapSort):
        raise SortError(f"select expects a map, got {map_term.sort}")
    if key.sort != map_term.sort.dom:
        raise SortError(
            f"select key sort {key.sort} does not match map domain {map_term.sort.dom}"
        )
    return App("select", (map_term, key), map_term.sort.ran)


def Store(map_term: Term, key: Term, value: Term) -> Term:
    """Functional map update: ``map[key := value]``."""
    if not isinstance(map_term.sort, MapSort):
        raise SortError(f"store expects a map, got {map_term.sort}")
    if key.sort != map_term.sort.dom:
        raise SortError(
            f"store key sort {key.sort} does not match map domain {map_term.sort.dom}"
        )
    if value.sort != map_term.sort.ran:
        raise SortError(
            f"store value sort {value.sort} does not match "
            f"map range {map_term.sort.ran}"
        )
    return App("store", (map_term, key, value), map_term.sort)


def FieldRead(field: Term, obj: Term) -> Term:
    """Read a field: ``obj.field`` -> ``Select(field, obj)``."""
    return Select(field, obj)


def ArrayRead(array_state: Term, array: Term, index: Term) -> Term:
    """Read an array element ``array[index]`` through the global array state."""
    return Select(Select(array_state, array), index)


def ArrayWrite(array_state: Term, array: Term, index: Term, value: Term) -> Term:
    """Functional update of the global array state at ``array[index]``."""
    inner = Store(Select(array_state, array), index, value)
    return Store(array_state, array, inner)


# ---------------------------------------------------------------------------
# Sets, relations and tuples
# ---------------------------------------------------------------------------


def EmptySet(elem_sort: Sort) -> Term:
    """The empty set over ``elem_sort``."""
    return App("setenum", (), SetSort(elem_sort))


def SetEnum(*elems: Term) -> Term:
    """A finite set literal ``{e1, ..., en}`` (all elements same sort)."""
    if not elems:
        raise ValueError("use EmptySet(sort) for the empty set literal")
    elem_sort = elems[0].sort
    for e in elems:
        if e.sort != elem_sort:
            raise SortError("set literal elements must share a sort")
    return App("setenum", tuple(elems), SetSort(elem_sort))


def Singleton(elem: Term) -> Term:
    """The singleton set ``{elem}``."""
    return SetEnum(elem)


def _require_set(term: Term, context: str) -> SetSort:
    if not isinstance(term.sort, SetSort):
        raise SortError(f"{context} expects a set, got {term.sort}")
    return term.sort


def Union(left: Term, right: Term) -> Term:
    """Set union."""
    ls = _require_set(left, "union")
    _require_set(right, "union")
    if right.sort != left.sort:
        raise SortError("union of sets over different element sorts")
    return App("union", (left, right), ls)


def Inter(left: Term, right: Term) -> Term:
    """Set intersection."""
    ls = _require_set(left, "inter")
    if right.sort != left.sort:
        raise SortError("intersection of sets over different element sorts")
    return App("inter", (left, right), ls)


def SetMinus(left: Term, right: Term) -> Term:
    """Set difference."""
    ls = _require_set(left, "setminus")
    if right.sort != left.sort:
        raise SortError("difference of sets over different element sorts")
    return App("setminus", (left, right), ls)


def Member(elem: Term, the_set: Term) -> Term:
    """Set membership ``elem in the_set``."""
    ss = _require_set(the_set, "member")
    if elem.sort != ss.elem:
        raise SortError(
            f"member element sort {elem.sort} does not match set of {ss.elem}"
        )
    return App("member", (elem, the_set), BOOL)


def NotMember(elem: Term, the_set: Term) -> Term:
    """Negated membership."""
    return Not(Member(elem, the_set))


def SubsetEq(left: Term, right: Term) -> Term:
    """Subset-or-equal."""
    _require_set(left, "subseteq")
    if right.sort != left.sort:
        raise SortError("subset of sets over different element sorts")
    return App("subseteq", (left, right), BOOL)


def Card(the_set: Term) -> Term:
    """Cardinality of a finite set."""
    _require_set(the_set, "card")
    return App("card", (the_set,), INT)


def Tuple(*items: Term) -> Term:
    """Tuple construction ``(e1, ..., en)``."""
    if len(items) < 2:
        raise ValueError("tuples need at least two components")
    return App("tuple", tuple(items), TupleSort(tuple(i.sort for i in items)))


def Proj(index: int, tup: Term) -> Term:
    """Projection of the ``index``-th (0-based) component of a tuple."""
    if not isinstance(tup.sort, TupleSort):
        raise SortError(f"proj expects a tuple, got {tup.sort}")
    if not 0 <= index < tup.sort.arity:
        raise SortError(f"projection index {index} out of range")
    return App("proj", (IntLit(index), tup), tup.sort.items[index])


# ---------------------------------------------------------------------------
# Binders
# ---------------------------------------------------------------------------


def _normalise_params(
    params: Sequence[Var | tuple[str, Sort]]
) -> tuple[tuple[str, Sort], ...]:
    out: list[tuple[str, Sort]] = []
    for p in params:
        if isinstance(p, Var):
            out.append((p.name, p.sort))
        else:
            name, sort = p
            out.append((name, sort))
    return tuple(out)


def ForAll(params: Sequence[Var | tuple[str, Sort]] | Var, body: Term) -> Term:
    """Universal quantification.  Collapses to the body when trivial."""
    if isinstance(params, Var):
        params = [params]
    norm = _normalise_params(params)
    if body in (TRUE, FALSE):
        return body
    return Binder(FORALL, norm, body)


def Exists(params: Sequence[Var | tuple[str, Sort]] | Var, body: Term) -> Term:
    """Existential quantification.  Collapses to the body when trivial."""
    if isinstance(params, Var):
        params = [params]
    norm = _normalise_params(params)
    if body in (TRUE, FALSE):
        return body
    return Binder(EXISTS, norm, body)


def Lambda(params: Sequence[Var | tuple[str, Sort]] | Var, body: Term) -> Term:
    """Lambda abstraction (used for map-valued specification variables)."""
    if isinstance(params, Var):
        params = [params]
    return Binder(LAMBDA, _normalise_params(params), body)


def Compr(params: Sequence[Var | tuple[str, Sort]] | Var, body: Term) -> Term:
    """Set comprehension ``{params . body}``."""
    if isinstance(params, Var):
        params = [params]
    return Binder(COMPREHENSION, _normalise_params(params), body)


# ---------------------------------------------------------------------------
# Miscellaneous helpers
# ---------------------------------------------------------------------------


def Old(term: Term) -> Term:
    """Wrap a term in ``old(...)``; eliminated during lowering."""
    return App("old", (term,), term.sort)


def IntVar(name: str) -> Var:
    """An integer variable."""
    return Var(name, INT)


def BoolVar(name: str) -> Var:
    """A boolean variable."""
    return Var(name, BOOL)


def ObjVar(name: str) -> Var:
    """An object (reference) variable."""
    return Var(name, OBJ)


def Int(value: int) -> IntLit:
    """An integer literal."""
    return IntLit(value)


def Bool(value: bool) -> BoolLit:
    """A boolean literal."""
    return BoolLit(value)


def Apply(name: str, args: Sequence[Term], result_sort: Sort) -> Term:
    """Application of an uninterpreted function symbol."""
    return App(name, tuple(args), result_sort)


def conjuncts_of(formula: Term) -> list[Term]:
    """Return the top-level conjuncts of a formula."""
    if isinstance(formula, App) and formula.op == "and":
        out: list[Term] = []
        for arg in formula.args:
            out.extend(conjuncts_of(arg))
        return out
    if formula == TRUE:
        return []
    return [formula]


def disjuncts_of(formula: Term) -> list[Term]:
    """Return the top-level disjuncts of a formula."""
    if isinstance(formula, App) and formula.op == "or":
        out: list[Term] = []
        for arg in formula.args:
            out.extend(disjuncts_of(arg))
        return out
    if formula == FALSE:
        return []
    return [formula]
