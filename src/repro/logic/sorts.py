"""Sorts (types) for the HOL-ish specification logic.

The logic is many-sorted.  The base sorts mirror the ones Jahob uses for
Java verification:

* ``int``  -- mathematical integers,
* ``bool`` -- propositions / booleans,
* ``obj``  -- references to heap objects (including ``null``).

Composite sorts:

* ``SetSort(elem)``      -- finite sets of ``elem``,
* ``MapSort(dom, ran)``  -- total functions used to model fields and arrays
  (a Java field ``f`` becomes a global variable of sort ``obj => obj``;
  the array state becomes ``obj => (int => obj)``),
* ``TupleSort(items)``   -- n-ary tuples, used by relations such as the
  ``content`` specification variable of ``ArrayList`` which is a set of
  ``(int, obj)`` pairs,
* ``FunSort(args, ran)`` -- sort of uninterpreted function symbols.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SortError(TypeError):
    """Raised when a term is built or checked with incompatible sorts."""


@dataclass(frozen=True, eq=False)
class Sort:
    """Base class for all sorts.

    The ``name`` string canonically encodes the whole sort structure (the
    composite constructors derive it deterministically from their
    components), so equality is type + name comparison and the hash is
    computed once and cached -- sorts are compared and hashed constantly by
    the hash-consed term kernel.
    """

    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not type(self):
            return NotImplemented
        return self.name == other.name

    def __hash__(self) -> int:
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash((type(self).__name__, self.name))
            object.__setattr__(self, "_hash", value)
            return value

    def __reduce__(self):
        # Rebuild through the constructor on unpickle: the cached ``_hash``
        # depends on the process's string hash seed, so it must never travel
        # across process boundaries (worker pools, spawn start methods).
        return (Sort, (self.name,))

    @property
    def is_atomic(self) -> bool:
        return True


INT = Sort("int")
BOOL = Sort("bool")
OBJ = Sort("obj")


@dataclass(frozen=True, eq=False)
class SetSort(Sort):
    """Sort of finite sets over an element sort."""

    elem: Sort = field(default=OBJ)

    def __init__(self, elem: Sort) -> None:
        object.__setattr__(self, "elem", elem)
        object.__setattr__(self, "name", f"({elem}) set")

    def __reduce__(self):
        return (SetSort, (self.elem,))

    @property
    def is_atomic(self) -> bool:
        return False


@dataclass(frozen=True, eq=False)
class MapSort(Sort):
    """Sort of total maps ``dom => ran`` (fields, arrays, ghost maps)."""

    dom: Sort = field(default=OBJ)
    ran: Sort = field(default=OBJ)

    def __init__(self, dom: Sort, ran: Sort) -> None:
        object.__setattr__(self, "dom", dom)
        object.__setattr__(self, "ran", ran)
        object.__setattr__(self, "name", f"({dom} => {ran})")

    def __reduce__(self):
        return (MapSort, (self.dom, self.ran))

    @property
    def is_atomic(self) -> bool:
        return False


@dataclass(frozen=True, eq=False)
class TupleSort(Sort):
    """Sort of n-ary tuples."""

    items: tuple[Sort, ...] = field(default=())

    def __init__(self, items: tuple[Sort, ...]) -> None:
        object.__setattr__(self, "items", tuple(items))
        object.__setattr__(self, "name", "(" + " * ".join(str(s) for s in items) + ")")

    def __reduce__(self):
        return (TupleSort, (self.items,))

    @property
    def is_atomic(self) -> bool:
        return False

    @property
    def arity(self) -> int:
        return len(self.items)


@dataclass(frozen=True, eq=False)
class FunSort(Sort):
    """Sort of an uninterpreted function symbol ``args -> ran``."""

    args: tuple[Sort, ...] = field(default=())
    ran: Sort = field(default=OBJ)

    def __init__(self, args: tuple[Sort, ...], ran: Sort) -> None:
        object.__setattr__(self, "args", tuple(args))
        object.__setattr__(self, "ran", ran)
        pretty = ", ".join(str(s) for s in args)
        object.__setattr__(self, "name", f"[{pretty}] -> {ran}")

    def __reduce__(self):
        return (FunSort, (self.args, self.ran))

    @property
    def is_atomic(self) -> bool:
        return False

    @property
    def arity(self) -> int:
        return len(self.args)


def set_of(elem: Sort) -> SetSort:
    """Build the sort of sets over ``elem``."""
    return SetSort(elem)


def map_of(dom: Sort, ran: Sort) -> MapSort:
    """Build the sort of maps from ``dom`` to ``ran``."""
    return MapSort(dom, ran)


def tuple_of(*items: Sort) -> TupleSort:
    """Build the sort of tuples over ``items``."""
    return TupleSort(tuple(items))


def fun_of(args: tuple[Sort, ...] | list[Sort], ran: Sort) -> FunSort:
    """Build the sort of an uninterpreted function symbol."""
    return FunSort(tuple(args), ran)


# Commonly used composite sorts in the Java heap encoding.
OBJ_SET = set_of(OBJ)
INT_SET = set_of(INT)
OBJ_FIELD = map_of(OBJ, OBJ)
INT_FIELD = map_of(OBJ, INT)
BOOL_FIELD = map_of(OBJ, BOOL)
ARRAY_STATE = map_of(OBJ, map_of(INT, OBJ))
INT_OBJ_PAIR = tuple_of(INT, OBJ)
INT_OBJ_REL = set_of(INT_OBJ_PAIR)
OBJ_OBJ_PAIR = tuple_of(OBJ, OBJ)
OBJ_OBJ_REL = set_of(OBJ_OBJ_PAIR)


def unify(expected: Sort, actual: Sort, context: str = "") -> Sort:
    """Check that ``actual`` is compatible with ``expected``.

    The sort system is simple enough that compatibility is plain equality;
    the helper exists to produce consistent error messages.
    """
    if expected != actual:
        where = f" in {context}" if context else ""
        raise SortError(f"expected sort {expected}, got {actual}{where}")
    return actual
