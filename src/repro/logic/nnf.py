"""Negation normal form, prenexing and Skolemization.

These transformations prepare formulas for the refutation-based provers:

* :func:`eliminate_sugar` removes ``implies``, ``iff`` and boolean ``ite``;
* :func:`to_nnf` pushes negations down to atoms;
* :func:`skolemize` removes existential quantifiers from an NNF formula that
  is being *assumed* (equivalently, from the negation of a proof goal),
  replacing them by fresh Skolem constants/functions parameterised by the
  enclosing universal variables;
* :func:`prenex` hoists the remaining universal quantifiers to the front.
"""

from __future__ import annotations

from . import builder as b
from .sorts import BOOL
from .subst import FreshNameGenerator, substitute
from .terms import (
    EXISTS,
    FORALL,
    App,
    Binder,
    BoolLit,
    Term,
    Var,
    free_vars,
    function_symbols,
)

__all__ = [
    "eliminate_sugar",
    "to_nnf",
    "skolemize",
    "prenex",
    "matrix_of",
    "clear_nnf_memos",
]

# Memoization by interned node: the NNF transformations are pure functions,
# and with hash-consing the same assumption formula is shared by every
# sequent that carries it, so each distinct subformula is normalised once
# per process instead of once per prover call.
_MEMO_LIMIT = 1 << 17
_SUGAR_MEMO: dict[Term, Term] = {}
_NNF_MEMO: dict[tuple[Term, bool], Term] = {}


def clear_nnf_memos() -> None:
    """Drop the memo tables (used by benchmarks for cold-cache runs)."""
    _SUGAR_MEMO.clear()
    _NNF_MEMO.clear()


def eliminate_sugar(term: Term) -> Term:
    """Rewrite ``implies``, ``iff`` and boolean ``ite`` into and/or/not."""
    if not isinstance(term, (App, Binder)):
        return term
    cached = _SUGAR_MEMO.get(term)
    if cached is not None:
        return cached
    if isinstance(term, Binder):
        result: Term = term.rebuild((eliminate_sugar(term.body),))
    else:
        args = tuple(eliminate_sugar(a) for a in term.args)
        if term.op == "implies":
            result = b.Or(b.Not(args[0]), args[1])
        elif term.op == "iff":
            result = b.Or(
                b.And(args[0], args[1]), b.And(b.Not(args[0]), b.Not(args[1]))
            )
        elif term.op == "ite" and term.sort == BOOL:
            result = b.Or(b.And(args[0], args[1]), b.And(b.Not(args[0]), args[2]))
        else:
            result = term.rebuild(args)
    if len(_SUGAR_MEMO) > _MEMO_LIMIT:
        _SUGAR_MEMO.clear()
    _SUGAR_MEMO[term] = result
    return result


def to_nnf(term: Term) -> Term:
    """Negation normal form of a formula (after :func:`eliminate_sugar`)."""
    return _nnf(eliminate_sugar(term), positive=True)


def _nnf(term: Term, positive: bool) -> Term:
    if isinstance(term, BoolLit):
        return term if positive else b.Bool(not term.value)
    if not isinstance(term, (App, Binder)):
        return term if positive else b.Not(term)
    key = (term, positive)
    cached = _NNF_MEMO.get(key)
    if cached is not None:
        return cached
    if isinstance(term, App):
        op = term.op
        if op == "not":
            result = _nnf(term.args[0], not positive)
        elif op == "and":
            parts = [_nnf(a, positive) for a in term.args]
            result = b.And(*parts) if positive else b.Or(*parts)
        elif op == "or":
            parts = [_nnf(a, positive) for a in term.args]
            result = b.Or(*parts) if positive else b.And(*parts)
        else:
            result = term if positive else b.Not(term)
    elif term.kind in (FORALL, EXISTS):
        body = _nnf(term.body, positive)
        kind = term.kind
        if not positive:
            kind = EXISTS if kind == FORALL else FORALL
        result = Binder(kind, term.params, body)
    else:
        result = term if positive else b.Not(term)
    if len(_NNF_MEMO) > _MEMO_LIMIT:
        _NNF_MEMO.clear()
    _NNF_MEMO[key] = result
    return result


def skolemize(term: Term, fresh: FreshNameGenerator | None = None) -> Term:
    """Skolemize an NNF formula (existentials replaced by Skolem terms).

    The result is equisatisfiable with the input.  Existential variables that
    occur under universal quantifiers become applications of fresh Skolem
    function symbols to the enclosing universal variables; outer existentials
    become fresh constants.
    """
    if fresh is None:
        used = {v.name for v in free_vars(term)} | set(function_symbols(term))
        fresh = FreshNameGenerator(used)
    return _skolemize(term, (), fresh)


def _skolemize(
    term: Term, universals: tuple[Var, ...], fresh: FreshNameGenerator
) -> Term:
    if isinstance(term, Binder) and term.kind == FORALL:
        params = term.param_vars
        body = _skolemize(term.body, universals + params, fresh)
        return Binder(FORALL, term.params, body)
    if isinstance(term, Binder) and term.kind == EXISTS:
        mapping: dict[Var, Term] = {}
        for name, sort in term.params:
            skolem_name = fresh.fresh(f"sk_{name}")
            if universals:
                skolem: Term = App(skolem_name, tuple(universals), sort)
            else:
                skolem = App(skolem_name, (), sort)
            mapping[Var(name, sort)] = skolem
        body = substitute(term.body, mapping)
        return _skolemize(body, universals, fresh)
    if isinstance(term, App) and term.op in ("and", "or"):
        args = tuple(_skolemize(a, universals, fresh) for a in term.args)
        return term.rebuild(args)
    return term


def prenex(term: Term) -> Term:
    """Hoist universal quantifiers of a Skolemized NNF formula to the front."""
    matrix, variables = matrix_of(term)
    if not variables:
        return matrix
    # Deduplicate parameters by name while preserving order.
    seen: set[str] = set()
    params: list[tuple[str, object]] = []
    for var in variables:
        if var.name not in seen:
            seen.add(var.name)
            params.append((var.name, var.sort))
    return Binder(FORALL, tuple(params), matrix)


def matrix_of(term: Term) -> tuple[Term, list[Var]]:
    """Strip outer/inner universal quantifiers of a Skolemized NNF formula.

    Bound variables are renamed apart so the returned matrix together with
    the variable list represents the same universally quantified formula.
    """
    used = {v.name for v in free_vars(term)}
    fresh = FreshNameGenerator(used)
    collected: list[Var] = []
    matrix = _pull(term, fresh, collected)
    return matrix, collected


def _pull(term: Term, fresh: FreshNameGenerator, collected: list[Var]) -> Term:
    if isinstance(term, Binder) and term.kind == FORALL:
        mapping: dict[Var, Term] = {}
        for name, sort in term.params:
            new_name = fresh.fresh(name)
            new_var = Var(new_name, sort)
            mapping[Var(name, sort)] = new_var
            collected.append(new_var)
        body = substitute(term.body, mapping)
        return _pull(body, fresh, collected)
    if isinstance(term, App) and term.op in ("and", "or"):
        args = tuple(_pull(a, fresh, collected) for a in term.args)
        return term.rebuild(args)
    return term
