"""Pretty printers for the specification logic.

Two renderings are provided:

* :func:`to_ascii` -- a parseable ASCII notation (the inverse of
  :mod:`repro.logic.parser`), in the spirit of Jahob's X-Symbol ASCII input
  syntax;
* :func:`to_unicode` -- mathematical notation (``∀``, ``∈``, ``∧``, ...)
  matching the way formulas are displayed in the paper.
"""

from __future__ import annotations

from .terms import (
    COMPREHENSION,
    EXISTS,
    FORALL,
    LAMBDA,
    App,
    Binder,
    BoolLit,
    Const,
    IntLit,
    Term,
    Var,
)

# Precedence levels (higher binds tighter).
_PREC_IFF = 10
_PREC_IMPLIES = 20
_PREC_OR = 30
_PREC_AND = 40
_PREC_NOT = 50
_PREC_CMP = 60
_PREC_ADD = 70
_PREC_MUL = 80
_PREC_UNARY = 90
_PREC_POSTFIX = 100
_PREC_ATOM = 110


class _Style:
    """Rendering style: tokens used for each operator."""

    def __init__(self, unicode: bool) -> None:
        if unicode:
            self.and_tok = " ∧ "
            self.or_tok = " ∨ "
            self.not_tok = "¬"
            self.implies_tok = " → "
            self.iff_tok = " ↔ "
            self.forall_tok = "∀"
            self.exists_tok = "∃"
            self.member_tok = " ∈ "
            self.union_tok = " ∪ "
            self.inter_tok = " ∩ "
            self.setminus_tok = " ∖ "
            self.subseteq_tok = " ⊆ "
            self.le_tok = " ≤ "
            self.neq_tok = " ≠ "
            self.lambda_tok = "λ"
        else:
            self.and_tok = " & "
            self.or_tok = " | "
            self.not_tok = "~"
            self.implies_tok = " --> "
            self.iff_tok = " <-> "
            self.forall_tok = "ALL "
            self.exists_tok = "EX "
            self.member_tok = " in "
            self.union_tok = " Un "
            self.inter_tok = " Int "
            self.setminus_tok = " \\ "
            self.subseteq_tok = " subseteq "
            self.le_tok = " <= "
            self.neq_tok = " ~= "
            self.lambda_tok = "lam "


_ASCII = _Style(unicode=False)
_UNICODE = _Style(unicode=True)


# The provers use ``str(term)`` as a canonical key (EUF interning, clause
# canonicalisation), so the ASCII rendering of an interned node is memoized.
_ASCII_MEMO_LIMIT = 1 << 16
_ASCII_MEMO: dict[Term, str] = {}


def to_ascii(term: Term) -> str:
    """Render ``term`` in the parseable ASCII notation."""
    cached = _ASCII_MEMO.get(term)
    if cached is not None:
        return cached
    rendered = _render(term, _ASCII, 0)
    if len(_ASCII_MEMO) > _ASCII_MEMO_LIMIT:
        _ASCII_MEMO.clear()
    _ASCII_MEMO[term] = rendered
    return rendered


def to_unicode(term: Term) -> str:
    """Render ``term`` in mathematical (unicode) notation."""
    return _render(term, _UNICODE, 0)


def _paren(text: str, prec: int, outer: int) -> str:
    return f"({text})" if prec < outer else text


def _render(term: Term, style: _Style, outer: int) -> str:
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Const):
        return term.name
    if isinstance(term, IntLit):
        if term.value < 0:
            return _paren(str(term.value), _PREC_UNARY, outer)
        return str(term.value)
    if isinstance(term, BoolLit):
        return "true" if term.value else "false"
    if isinstance(term, Binder):
        return _render_binder(term, style, outer)
    if isinstance(term, App):
        return _render_app(term, style, outer)
    raise TypeError(f"unknown term type {type(term)!r}")


def _render_binder(term: Binder, style: _Style, outer: int) -> str:
    params = " ".join(
        f"({name} : {sort})" if not _simple_sort(sort) else f"{name} : {sort}"
        for name, sort in term.params
    )
    body = _render(term.body, style, 0)
    if term.kind == FORALL:
        text = f"{style.forall_tok}{params}. {body}"
        return _paren(text, _PREC_IFF, outer + 1)
    if term.kind == EXISTS:
        text = f"{style.exists_tok}{params}. {body}"
        return _paren(text, _PREC_IFF, outer + 1)
    if term.kind == LAMBDA:
        text = f"{style.lambda_tok}{params}. {body}"
        return _paren(text, _PREC_IFF, outer + 1)
    if term.kind == COMPREHENSION:
        names = ", ".join(name for name, _ in term.params)
        sorts = " ".join(f": {sort}" for _, sort in term.params)
        if len(term.params) == 1:
            header = f"{names} {sorts}".strip()
        else:
            header = "(" + ", ".join(
                f"{name} : {sort}" for name, sort in term.params
            ) + ")"
        return "{" + header + ". " + body + "}"
    raise ValueError(f"unknown binder kind {term.kind}")


def _simple_sort(sort) -> bool:
    return sort.is_atomic


def _render_nary(term: App, style: _Style, sep: str, prec: int, outer: int) -> str:
    parts = [_render(a, style, prec + 1) for a in term.args]
    return _paren(sep.join(parts), prec, outer)


def _render_binary(term: App, style: _Style, sep: str, prec: int, outer: int) -> str:
    left = _render(term.args[0], style, prec + 1)
    right = _render(term.args[1], style, prec + 1)
    return _paren(f"{left}{sep}{right}", prec, outer)


def _render_app(term: App, style: _Style, outer: int) -> str:
    op = term.op
    if op == "and":
        return _render_nary(term, style, style.and_tok, _PREC_AND, outer)
    if op == "or":
        return _render_nary(term, style, style.or_tok, _PREC_OR, outer)
    if op == "not":
        inner = _render(term.args[0], style, _PREC_NOT)
        return _paren(f"{style.not_tok}{inner}", _PREC_NOT, outer)
    if op == "implies":
        left = _render(term.args[0], style, _PREC_IMPLIES + 1)
        right = _render(term.args[1], style, _PREC_IMPLIES)
        return _paren(f"{left}{style.implies_tok}{right}", _PREC_IMPLIES, outer)
    if op == "iff":
        return _render_binary(term, style, style.iff_tok, _PREC_IFF, outer)
    if op == "ite":
        cond, then, other = (_render(a, style, 0) for a in term.args)
        return _paren(f"if {cond} then {then} else {other}", _PREC_IFF, outer)
    if op == "eq":
        return _render_binary(term, style, " = ", _PREC_CMP, outer)
    if op == "lt":
        return _render_binary(term, style, " < ", _PREC_CMP, outer)
    if op == "le":
        return _render_binary(term, style, style.le_tok, _PREC_CMP, outer)
    if op == "add":
        return _render_nary(term, style, " + ", _PREC_ADD, outer)
    if op == "sub":
        return _render_binary(term, style, " - ", _PREC_ADD, outer)
    if op == "neg":
        inner = _render(term.args[0], style, _PREC_UNARY)
        return _paren(f"-{inner}", _PREC_UNARY, outer)
    if op == "mul":
        return _render_binary(term, style, " * ", _PREC_MUL, outer)
    if op == "div":
        return _render_binary(term, style, " div ", _PREC_MUL, outer)
    if op == "mod":
        return _render_binary(term, style, " mod ", _PREC_MUL, outer)
    if op == "select":
        base = _render(term.args[0], style, _PREC_POSTFIX)
        key = _render(term.args[1], style, 0)
        return f"{base}[{key}]"
    if op == "store":
        base = _render(term.args[0], style, _PREC_POSTFIX)
        key = _render(term.args[1], style, 0)
        val = _render(term.args[2], style, 0)
        return f"{base}[{key} := {val}]"
    if op == "union":
        return _render_binary(term, style, style.union_tok, _PREC_ADD, outer)
    if op == "inter":
        return _render_binary(term, style, style.inter_tok, _PREC_MUL, outer)
    if op == "setminus":
        return _render_binary(term, style, style.setminus_tok, _PREC_ADD, outer)
    if op == "member":
        return _render_binary(term, style, style.member_tok, _PREC_CMP, outer)
    if op == "subseteq":
        return _render_binary(term, style, style.subseteq_tok, _PREC_CMP, outer)
    if op == "card":
        inner = _render(term.args[0], style, _PREC_ATOM)
        return _paren(f"card {inner}", _PREC_UNARY, outer)
    if op == "setenum":
        inner = ", ".join(_render(a, style, 0) for a in term.args)
        return "{" + inner + "}"
    if op == "tuple":
        inner = ", ".join(_render(a, style, 0) for a in term.args)
        return f"({inner})"
    if op == "proj":
        index = term.args[0]
        tup = _render(term.args[1], style, _PREC_POSTFIX)
        assert isinstance(index, IntLit)
        return f"{tup}#{index.value}"
    if op == "old":
        inner = _render(term.args[0], style, _PREC_ATOM)
        return _paren(f"old {inner}", _PREC_UNARY, outer)
    # Uninterpreted function application.
    if not term.args:
        return term.op
    inner = ", ".join(_render(a, style, 0) for a in term.args)
    return f"{term.op}({inner})"
