"""The Priority Queue benchmark: a binary max-heap stored in a dense array.

The paper's priority queue is a complete binary tree in an array with the
parent/child index arithmetic ``2i+1`` / ``2i+2``; reasoning about the
``div``-based parent relation is outside the linear fragment of the
reproduction's arithmetic solver, so (as documented in DESIGN.md) the parent
relation is materialised as a ghost map ``parent`` constrained by the
ordering invariant.  The characteristic proof -- that the root is the
maximum -- uses the ``induct`` construct exactly as the paper describes.
"""

from __future__ import annotations

from .common import StructureBuilder

__all__ = ["build_priority_queue"]


def build_priority_queue():
    s = StructureBuilder("Priority Queue")
    s.concrete("heap", "int => int")
    s.concrete("size", "int")
    s.concrete("capacity", "int")
    s.ghost("parent", "int => int")
    s.spec("csize", "int", "size")

    s.invariant("SizeRange", "0 <= size & size <= capacity")
    s.invariant(
        "ParentOrder",
        "ALL i : int. 1 <= i & i < size --> "
        "(0 <= parent[i] & parent[i] < i & heap[i] <= heap[parent[i]])",
    )

    m = s.method(
        "isEmpty",
        returns="bool",
        ensures="result <-> csize = 0",
    )
    m.returns("size = 0")
    m.done()

    m = s.method(
        "sizeOf",
        returns="int",
        ensures="result = csize",
    )
    m.returns("size")
    m.done()

    m = s.method(
        "peekAt",
        params="i : int",
        returns="int",
        requires="0 <= i & i < size",
        ensures="1 <= i --> result <= heap[parent[i]]",
    )
    m.returns("heap[i]")
    m.done()

    m = s.method(
        "findMax",
        returns="int",
        requires="0 < size",
        ensures="result = heap[0] & "
        "(ALL i : int. 0 <= i & i < size --> heap[i] <= heap[0])",
    )
    m.note(
        "ParentDominates",
        "ALL i : int. 1 <= i & i < size --> heap[i] <= heap[parent[i]]",
        from_hints="ParentOrder",
    )
    # Mathematical induction over n: every element whose index is at most n
    # is bounded by the root (the paper's use of ``induct`` in the priority
    # queue, Section 6.4).
    from ..logic.sorts import INT
    from ..logic.terms import Var
    from ..proofs.constructs import Induct
    from ..frontend.ast import ProofStmt

    n = Var("n", INT)
    bound = m.formula(
        "ALL i : int. 0 <= i & i <= n & i < size --> heap[i] <= heap[0]",
        {"n": INT},
    )
    m._emit(ProofStmt(Induct("RootDominates", bound, n)))
    m.instantiate(
        "RootBoundsAll",
        "ALL n : int. 0 <= n --> "
        "(ALL i : int. 0 <= i & i <= n & i < size --> heap[i] <= heap[0])",
        "size",
    )
    m.returns("heap[0]")
    m.done()

    m = s.method(
        "insertLast",
        params="k : int",
        requires="size < capacity & "
        "(size = 0 | "
        "(0 <= parent[size] & parent[size] < size & k <= heap[parent[size]]))",
        modifies="heap, size",
        ensures="csize = old csize + 1 & heap[old size] = k",
    )
    m.array_write("heap", "size", "k")
    m.assign("size", "size + 1")
    m.note(
        "BelowUnchanged",
        "ALL i : int. 0 <= i & i < size - 1 --> heap[i] = old heap[i]",
        from_hints="Pre, OldSnapshot, AssignTmp, Assign_heap, Assign_size",
    )
    m.done()

    return s.build()
