"""The Binary Tree benchmark: a binary tree storing a set of integer keys.

The paper's binary search tree is the structure where the integrated proof
language is used to let several provers cooperate: note statements expose
shape facts to the structure reasoner and arithmetic/abstraction facts to
the SMT back-ends.  The reproduction keeps that flavour with a ghost
``nodes`` set (shape), a ``keys`` set (abstraction) and ``note`` lemmas
relating the two after each mutation; the full ordering invariant of a BST
requires reachability reasoning that is out of scope for the from-scratch
portfolio (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from .common import StructureBuilder

__all__ = ["build_binary_tree"]


def build_binary_tree():
    s = StructureBuilder("Binary Tree")
    s.concrete("root", "obj")
    s.concrete("left", "obj => obj")
    s.concrete("right", "obj => obj")
    s.concrete("key", "obj => int")
    s.ghost("nodes", "obj set")
    s.ghost("keySet", "int set")
    s.spec("content", "int set", "keySet")

    s.invariant("NullNotNode", "~(null in nodes)")
    s.invariant("RootInNodes", "root ~= null --> root in nodes")
    s.invariant("EmptyRoot", "root = null --> card nodes = 0")
    s.invariant(
        "LeftClosed",
        "ALL n : obj. n in nodes --> (left[n] in nodes | left[n] = null)",
    )
    s.invariant(
        "RightClosed",
        "ALL n : obj. n in nodes --> (right[n] in nodes | right[n] = null)",
    )
    s.invariant("KeysSound", "ALL n : obj. n in nodes --> key[n] in keySet")

    m = s.method(
        "makeEmpty",
        modifies="root, nodes, keySet",
        ensures="content = {}",
    )
    m.assign("root", "null")
    m.ghost_assign("nodes", "{}")
    m.ghost_assign("keySet", "{}")
    m.done()

    m = s.method(
        "isEmpty",
        returns="bool",
        ensures="result <-> root = null",
    )
    m.returns("root = null")
    m.done()

    m = s.method(
        "rootKey",
        returns="int",
        requires="root ~= null",
        ensures="result in content",
    )
    m.instantiate("RootHasKey", "ALL n : obj. n in nodes --> key[n] in keySet", "root")
    m.returns("key[root]")
    m.done()

    m = s.method(
        "plantRoot",
        params="n : obj",
        requires="root = null & n ~= null & ~(n in nodes)",
        modifies="root, left, right, nodes, keySet",
        ensures="content = old content Un {key[n]}",
    )
    m.field_write("left", "n", "null")
    m.field_write("right", "n", "null")
    m.assign("root", "n")
    m.ghost_assign("nodes", "nodes Un {n}")
    m.ghost_assign("keySet", "keySet Un {key[n]}")
    m.note(
        "OldTreeEmpty", "card (old nodes) = 0", from_hints="EmptyRoot, Pre, OldSnapshot"
    )
    m.note(
        "ShapeStillClosed",
        "ALL m : obj. m in nodes --> (left[m] in nodes | left[m] = null)",
        from_hints="LeftClosed, NullNotNode, Pre, AssignTmp, Assign_left, "
        "Assign_right, Assign_nodes, Assign_root",
    )
    m.done()

    m = s.method(
        "attachLeftLeaf",
        params="p : obj, n : obj",
        requires="p in nodes & left[p] = null & n ~= null & ~(n in nodes)",
        modifies="left, right, nodes, keySet",
        ensures="content = old content Un {key[n]} & n in nodes",
    )
    m.field_write("left", "n", "null")
    m.field_write("right", "n", "null")
    m.field_write("left", "p", "n")
    m.ghost_assign("nodes", "nodes Un {n}")
    m.ghost_assign("keySet", "keySet Un {key[n]}")
    m.note(
        "NewLeafIsolated",
        "left[n] = null & right[n] = null & left[p] = n",
        from_hints="Pre, AssignTmp, Assign_left, Assign_right",
    )
    m.note(
        "KeysStillSound",
        "ALL m : obj. m in nodes --> key[m] in keySet",
        from_hints="KeysSound, Pre, AssignTmp, Assign_nodes, Assign_keySet",
    )
    m.done()

    return s.build()
