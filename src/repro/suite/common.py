"""Helpers for writing the benchmark data structures.

Every data structure of Section 6 is a :class:`~repro.frontend.ast.ClassModel`
built with :class:`StructureBuilder`, which provides

* a formula/term parser whose environment automatically contains all state
  variables, method parameters and locals,
* shorthand constructors for specification statements and for every
  integrated proof language construct (``note``, ``witness``, ...), so the
  annotated method bodies read close to the paper's ``/*: ... */`` comments.

The modelling conventions (documented in DESIGN.md):

* each data structure is a module describing a single container instance;
  node fields (``next``, ``key`` ...) are map-valued state variables
  ``obj => T`` and Java arrays are map-valued variables ``int => T``,
  mirroring Jahob's function-update encoding of the heap;
* public abstract state is given either by ``spec`` variables with
  ``vardefs`` definitions (expanded abstraction functions) or by ``ghost``
  variables updated by specification assignments in method bodies.
"""

from __future__ import annotations

from ..frontend.ast import (
    ArrayWrite,
    Assign,
    AssertStmt,
    Call,
    ClassModel,
    FieldWrite,
    GhostAssign,
    If,
    Invariant,
    Method,
    MethodContract,
    ProofStmt,
    Return,
    StateVar,
    Stmt,
    While,
)
from ..gcl.extended import ExtendedCommand, Skip, eseq
from ..logic.parser import parse_formula, parse_sort, parse_term
from ..logic.sorts import Sort
from ..logic.terms import Term, Var
from ..proofs.constructs import (
    Assuming,
    Cases,
    Instantiate,
    Localize,
    Mp,
    Note,
    PickAny,
    Witness,
)

__all__ = ["StructureBuilder", "MethodBuilder"]


class StructureBuilder:
    """Builds one data-structure :class:`ClassModel`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._state: list[StateVar] = []
        self._invariants: list[Invariant] = []
        self._methods: list[Method] = []
        self._env: dict[str, Sort] = {}

    # -- declarations --------------------------------------------------------------

    def concrete(self, name: str, sort: str) -> None:
        """Declare a concrete (Java) state variable, e.g. ``size: int`` or a
        field map ``next: obj => obj``."""
        parsed = parse_sort(sort)
        self._state.append(StateVar(name, parsed, "concrete"))
        self._env[name] = parsed

    def ghost(self, name: str, sort: str) -> None:
        """Declare a ghost specification variable (Table 1's local spec vars)."""
        parsed = parse_sort(sort)
        self._state.append(StateVar(name, parsed, "ghost"))
        self._env[name] = parsed

    def spec(self, name: str, sort: str, definition: str) -> None:
        """Declare a public specification variable with a vardefs definition."""
        parsed = parse_sort(sort)
        self._env[name] = parsed
        defined = parse_term(definition, self._env)
        self._state.append(StateVar(name, parsed, "spec", defined, is_public=True))

    def invariant(self, name: str, formula: str) -> None:
        """Declare a named data-structure invariant."""
        self._invariants.append(Invariant(name, self.formula(formula), is_public=True))

    # -- formulas --------------------------------------------------------------------

    def formula(self, text: str, extra: dict[str, Sort] | None = None) -> Term:
        env = dict(self._env)
        if extra:
            env.update(extra)
        return parse_formula(text, env)

    def term(self, text: str, extra: dict[str, Sort] | None = None) -> Term:
        env = dict(self._env)
        if extra:
            env.update(extra)
        return parse_term(text, env)

    # -- methods ----------------------------------------------------------------------

    def method(
        self,
        name: str,
        params: str = "",
        returns: str = "",
        requires: str = "true",
        modifies: str = "",
        ensures: str = "true",
        public: bool = True,
    ) -> "MethodBuilder":
        """Start a method; parameters are ``"name: sort, name: sort"``."""
        return MethodBuilder(
            self, name, params, returns, requires, modifies, ensures, public
        )

    def _add_method(self, method: Method) -> None:
        self._methods.append(method)

    def build(self) -> ClassModel:
        """Finish and return the class model."""
        return ClassModel(
            name=self.name,
            state=tuple(self._state),
            invariants=tuple(self._invariants),
            methods=tuple(self._methods),
        )


class MethodBuilder:
    """Builds one annotated method; statements are added in program order."""

    def __init__(
        self,
        structure: StructureBuilder,
        name: str,
        params: str,
        returns: str,
        requires: str,
        modifies: str,
        ensures: str,
        public: bool,
    ) -> None:
        self.structure = structure
        self.name = name
        self.public = public
        self._params: list[Var] = []
        self._locals: list[Var] = []
        self._local_env: dict[str, Sort] = {}
        for declaration in _split_declarations(params):
            var_name, sort_text = declaration
            sort = parse_sort(sort_text)
            self._params.append(Var(var_name, sort))
            self._local_env[var_name] = sort
        self._return_var: Var | None = None
        if returns:
            sort = parse_sort(returns)
            self._return_var = Var("result", sort)
            self._local_env["result"] = sort
        self._requires_text = requires
        self._modifies = tuple(
            item.strip() for item in modifies.split(",") if item.strip()
        )
        self._ensures_text = ensures
        self._body: list[Stmt] = []
        self._block_stack: list[list[Stmt]] = [self._body]

    # -- formulas in method scope -----------------------------------------------------

    def local(self, name: str, sort: str) -> Var:
        """Declare a local variable usable in subsequent statements/formulas."""
        parsed = parse_sort(sort)
        var = Var(name, parsed)
        self._locals.append(var)
        self._local_env[name] = parsed
        return var

    def formula(self, text: str, extra: dict[str, Sort] | None = None) -> Term:
        env = dict(self._local_env)
        if extra:
            env.update(extra)
        return self.structure.formula(text, env)

    def term(self, text: str) -> Term:
        return self.structure.term(text, self._local_env)

    def var(self, name: str) -> Var:
        if name in self._local_env:
            return Var(name, self._local_env[name])
        if name in self.structure._env:
            return Var(name, self.structure._env[name])
        raise KeyError(f"unknown variable {name!r} in method {self.name}")

    # -- statements ------------------------------------------------------------------

    def _emit(self, statement: Stmt) -> None:
        self._block_stack[-1].append(statement)

    def assign(self, target: str, expr: str) -> None:
        """``target = expr;`` (scalar state variable or local)."""
        target_var = self.var(target)
        self._emit(Assign(target_var, self._coerced(expr, target_var)))

    def ghost_assign(self, target: str, expr: str) -> None:
        """``//: target := expr`` specification-state update."""
        target_var = self.var(target)
        self._emit(GhostAssign(target_var, self._coerced(expr, target_var)))

    def _coerced(self, expr: str, target: Var) -> Term:
        """Parse ``expr``, giving an untyped ``{}`` literal the target's sort."""
        from ..logic import builder as b
        from ..logic.sorts import SetSort
        from ..logic.terms import App

        term = self.term(expr)
        if (
            isinstance(term, App)
            and term.op == "setenum"
            and not term.args
            and isinstance(target.sort, SetSort)
            and term.sort != target.sort
        ):
            return b.EmptySet(target.sort.elem)
        return term

    def field_write(self, field_name: str, obj: str, value: str) -> None:
        """``obj.field = value;``."""
        self._emit(FieldWrite(field_name, self.term(obj), self.term(value)))

    def array_write(self, array_name: str, index: str, value: str) -> None:
        """``array[index] = value;``."""
        self._emit(ArrayWrite(array_name, self.term(index), self.term(value)))

    def call(self, method_name: str, args: str = "", target: str | None = None) -> None:
        """``target = method(args);``."""
        arg_terms = tuple(
            self.term(arg.strip()) for arg in args.split(",") if arg.strip()
        )
        target_var = self.var(target) if target else None
        self._emit(Call(method_name, arg_terms, target_var))

    def returns(self, expr: str | None = None) -> None:
        """``return expr;``."""
        self._emit(Return(self.term(expr) if expr is not None else None))

    def check(self, label: str, formula: str, from_hints: str = "") -> None:
        """A bare specification assertion."""
        hints = tuple(h.strip() for h in from_hints.split(",") if h.strip())
        self._emit(AssertStmt(self.formula(formula), label, hints))

    # -- structured statements ---------------------------------------------------------

    def if_(self, cond: str):
        """``if (cond) { ... }`` -- use as a context manager."""
        return _Block(self, If, {"cond": self.formula(cond)})

    def else_(self):
        """``else { ... }`` for the most recent ``if``."""
        return _ElseBlock(self)

    def while_(self, cond: str, invariant: str, label: str = "LoopInv"):
        """``while /*: inv invariant */ (cond) { ... }``."""
        return _Block(
            self,
            While,
            {
                "cond": self.formula(cond),
                "invariant": self.formula(invariant),
                "invariant_label": label,
            },
        )

    # -- proof language statements ---------------------------------------------------

    def note(self, label: str, formula: str, from_hints: str = "") -> None:
        hints = tuple(h.strip() for h in from_hints.split(",") if h.strip())
        self._emit(ProofStmt(Note(label, self.formula(formula), hints)))

    def witness(self, terms: str, label: str, existential: str) -> None:
        witness_terms = tuple(
            self.term(item.strip()) for item in terms.split(",") if item.strip()
        )
        self._emit(ProofStmt(Witness(witness_terms, label, self.formula(existential))))

    def instantiate(self, label: str, quantified: str, terms: str) -> None:
        instantiation = tuple(
            self.term(item.strip()) for item in terms.split(",") if item.strip()
        )
        self._emit(
            ProofStmt(Instantiate(label, self.formula(quantified), instantiation))
        )

    def mp(self, label: str, antecedent: str, consequent: str) -> None:
        self._emit(
            ProofStmt(Mp(label, self.formula(antecedent), self.formula(consequent)))
        )

    def cases(
        self, label: str, cases: list[str], goal: str, from_hints: str = ""
    ) -> None:
        hints = tuple(h.strip() for h in from_hints.split(",") if h.strip())
        self._emit(
            ProofStmt(
                Cases(
                    tuple(self.formula(c) for c in cases),
                    label,
                    self.formula(goal),
                    hints,
                )
            )
        )

    def assuming(
        self,
        hypothesis_label: str,
        hypothesis: str,
        conclusion_label: str,
        conclusion: str,
        proof: ExtendedCommand | None = None,
    ) -> None:
        self._emit(
            ProofStmt(
                Assuming(
                    hypothesis_label,
                    self.formula(hypothesis),
                    proof or Skip(),
                    conclusion_label,
                    self.formula(conclusion),
                )
            )
        )

    def pick_any(
        self,
        variables: str,
        label: str,
        goal: str,
        proof: ExtendedCommand | None = None,
    ) -> None:
        picked = []
        extra: dict[str, Sort] = {}
        for declaration in _split_declarations(variables):
            var_name, sort_text = declaration
            sort = parse_sort(sort_text)
            picked.append(Var(var_name, sort))
            extra[var_name] = sort
        self._emit(
            ProofStmt(
                PickAny(
                    tuple(picked),
                    proof or Skip(),
                    label,
                    self.formula(goal, extra),
                )
            )
        )

    def localize(self, label: str, formula: str, proof: ExtendedCommand) -> None:
        self._emit(ProofStmt(Localize(proof, label, self.formula(formula))))

    # -- nested proof command helpers (for proofs inside pickAny/assuming) ---------

    def inner_note(self, label: str, formula: str, from_hints: str = "",
                   extra: dict[str, Sort] | None = None) -> ExtendedCommand:
        """A ``note`` command for use inside another construct's proof body."""

        hints = tuple(h.strip() for h in from_hints.split(",") if h.strip())
        from ..proofs.constructs import Note as NoteConstruct

        return NoteConstruct(label, self.formula(formula, extra), hints)

    def sequence(self, *commands: ExtendedCommand) -> ExtendedCommand:
        return eseq(*commands)

    # -- finish ----------------------------------------------------------------------

    def done(self) -> Method:
        """Finish the method and register it with the structure."""
        contract = MethodContract(
            requires=self.formula(self._requires_text),
            modifies=self._modifies,
            ensures=self.formula(self._ensures_text),
        )
        method = Method(
            name=self.name,
            params=tuple(self._params),
            return_var=self._return_var,
            contract=contract,
            body=tuple(self._body),
            is_public=self.public,
            locals=tuple(self._locals),
        )
        self.structure._add_method(method)
        return method


class _Block:
    """Context manager collecting statements of a structured block."""

    def __init__(self, builder: MethodBuilder, kind, kwargs) -> None:
        self.builder = builder
        self.kind = kind
        self.kwargs = kwargs
        self.statements: list[Stmt] = []

    def __enter__(self):
        self.builder._block_stack.append(self.statements)
        return self.builder

    def __exit__(self, exc_type, exc, tb):
        self.builder._block_stack.pop()
        if exc_type is not None:
            return False
        if self.kind is If:
            statement = If(cond=self.kwargs["cond"], then_branch=tuple(self.statements))
        else:
            statement = While(
                cond=self.kwargs["cond"],
                invariant=self.kwargs["invariant"],
                body=tuple(self.statements),
                invariant_label=self.kwargs["invariant_label"],
            )
        self.builder._emit(statement)
        return False


class _ElseBlock:
    """Attaches an else branch to the most recent ``if`` statement."""

    def __init__(self, builder: MethodBuilder) -> None:
        self.builder = builder
        self.statements: list[Stmt] = []

    def __enter__(self):
        self.builder._block_stack.append(self.statements)
        return self.builder

    def __exit__(self, exc_type, exc, tb):
        self.builder._block_stack.pop()
        if exc_type is not None:
            return False
        block = self.builder._block_stack[-1]
        if not block or not isinstance(block[-1], If):
            raise ValueError("else_ must directly follow an if_ block")
        from dataclasses import replace

        block[-1] = replace(block[-1], else_branch=tuple(self.statements))
        return False


def _split_declarations(text: str) -> list[tuple[str, str]]:
    """Parse ``"x: int, n: obj"`` into [("x", "int"), ("n", "obj")]."""
    declarations: list[tuple[str, str]] = []
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        name, _, sort_text = piece.partition(":")
        declarations.append((name.strip(), sort_text.strip()))
    return declarations
