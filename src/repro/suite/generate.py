"""Seeded generation of catalogue classes (the "open the workload" path).

The five hand-written catalogue classes only ever exercise the stack on
programs we wrote.  This module turns the suite into a *workload
generator*: :func:`generate_class` builds a well-formed
:class:`~repro.frontend.ast.ClassModel` from nothing but
``(family, seed, size)`` -- deterministically, so any failure anywhere in
the pipeline is reproducible from a printed seed -- and
:func:`register_corpus` registers the result with
:mod:`repro.suite.catalog`, after which the suite scheduler, proof cache,
cost model and remote worker pools all treat it exactly like a paper
class (generated classes price at the cost model's ``default`` rung and
graduate to ``measured`` once a warm store has seen them).

The differential oracle harness over generated programs lives in
``tests/gensuite``; the shrinking entry point it uses on a failure is
:func:`shrink_class`, and :func:`regression_source` renders the shrunk
program as a standalone file that ``jahob-py verify FILE`` (and the
daemon's ``verify_file`` op) can replay forever after.
"""

from __future__ import annotations

import random
import textwrap

from ..frontend.ast import ClassModel
from .catalog import register_structure
from .families import build_arith_class, build_struct_class

__all__ = [
    "FAMILIES",
    "generate_class",
    "generate_corpus",
    "register_corpus",
    "shrink_class",
    "regression_source",
]

#: Family name -> builder.  Ordering is the round-robin order of
#: :func:`generate_corpus`.
FAMILIES = {
    "arith": build_arith_class,
    "struct": build_struct_class,
}


def generate_class(
    family: str,
    seed: int,
    size: int = 3,
    drop_methods: tuple[str, ...] = (),
) -> ClassModel:
    """The class model identified by ``(family, seed, size)``.

    Deterministic: the same triple always yields the same model (method
    for method, formula for formula), in this process or any other.
    ``drop_methods`` removes the named methods afterwards -- the shrinking
    knob; generated methods never call each other, so every subset is
    itself well-formed.
    """
    try:
        builder = FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown family {family!r}; available: {', '.join(FAMILIES)}"
        ) from None
    name = f"Gen-{family}-{int(seed)}"
    model = builder(name, random.Random(int(seed)), size=size)
    if drop_methods:
        dropped = set(drop_methods)
        unknown = dropped - {method.name for method in model.methods}
        if unknown:
            raise ValueError(f"{name} has no method(s) {sorted(unknown)}")
        model = ClassModel(
            name=model.name,
            state=model.state,
            invariants=model.invariants,
            methods=tuple(m for m in model.methods if m.name not in dropped),
        )
    return model


def generate_corpus(
    count: int,
    seed: int = 0,
    families: tuple[str, ...] | None = None,
    size: int = 3,
) -> list[ClassModel]:
    """``count`` generated classes, round-robin across ``families``.

    Class ``i`` uses seed ``seed + i``, so a corpus is fully described by
    ``(count, seed, families, size)`` and any single member can be
    regenerated alone with :func:`generate_class`.
    """
    chosen = tuple(families) if families is not None else tuple(FAMILIES)
    return [
        generate_class(chosen[i % len(chosen)], seed + i, size=size)
        for i in range(int(count))
    ]


def register_corpus(classes, replace: bool = False) -> list[ClassModel]:
    """Register every class with the catalogue and return them.

    After this, ``structure_by_name`` resolves them, so the CLI, the
    daemon's ``verify`` op, the suite scheduler and remote pools see the
    generated classes as first-class catalogue members.
    """
    for cls in classes:
        register_structure(cls, replace=replace)
    return list(classes)


def shrink_class(
    family: str,
    seed: int,
    size: int,
    still_fails,
) -> tuple[str, ...]:
    """Greedily shrink a failing generated class by dropping methods.

    ``still_fails(model)`` must return True when ``model`` still exhibits
    the failure.  Returns the ``drop_methods`` tuple of the smallest
    failing program found -- pass it back to :func:`generate_class` (or
    bake it into :func:`regression_source`) to reproduce.
    """
    model = generate_class(family, seed, size=size)
    dropped: list[str] = []
    for method in model.methods:
        candidate = tuple(dropped) + (method.name,)
        if len(candidate) == len(model.methods):
            break  # a class needs at least one method to mean anything
        try:
            shrunk = generate_class(family, seed, size=size, drop_methods=candidate)
            if still_fails(shrunk):
                dropped.append(method.name)
        except Exception:
            continue  # keep the method if dropping it breaks the check itself
    return tuple(dropped)


def regression_source(
    family: str,
    seed: int,
    size: int,
    drop_methods: tuple[str, ...] = (),
    note: str = "",
) -> str:
    """A standalone regression file reproducing one generated program.

    The file is an ordinary ``jahob-py verify FILE`` input (it exports
    ``MODEL``), so a shrunk fuzz failure replays through exactly the
    ingestion path users take.  Because generation is deterministic, the
    recipe *is* the program.  The rendered source is formatter-clean
    (double quotes, wrapped docstring) so persisted regressions pass the
    same lint gate as hand-written tests.
    """
    dropped = tuple(drop_methods)
    if len(dropped) == 1:
        rendered_drop = f'("{dropped[0]}",)'
    else:
        rendered_drop = "(" + ", ".join(f'"{name}"' for name in dropped) + ")"
    lines = [
        '"""Deep-fuzz regression: generated program pinned by its recipe.',
        "",
        f"family={family!r} seed={seed} size={size} drop_methods={dropped!r}",
    ]
    if note:
        lines += [""] + textwrap.wrap(note, width=79)
    lines += [
        "",
        "Replay with:  jahob-py verify <this file>  (or the gensuite oracle).",
        '"""',
        "",
        "from repro.suite.generate import generate_class",
        "",
        "MODEL = generate_class(",
        f'    "{family}",',
        f"    seed={int(seed)},",
        f"    size={int(size)},",
        f"    drop_methods={rendered_drop},",
        ")",
        "",
    ]
    return "\n".join(lines)
