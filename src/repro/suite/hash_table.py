"""The Hash Table benchmark: bucketed storage of a key/value relation.

The concrete state is an array of buckets (a map from bucket index to a set
of pairs) plus a hash function; the abstract state is the ``contents``
relation and the ``keys`` set.  As in the paper (Section 6.3), this is the
structure that leans hardest on the proof language: the mutators use
``note`` statements with ``from`` clauses to control the assumption base and
to relate the updated bucket to the abstract relation, plus ``instantiate``
and ``assuming``/``cases`` style steps for the invariant proofs.

The hash function is modelled as a map ``hash : obj => int`` constrained by
the ``HashRange`` invariant (the paper's ``h(k) mod n`` computation needs
non-linear arithmetic, so the range constraint is taken as the invariant the
bucket computation establishes -- see DESIGN.md, substitutions).
"""

from __future__ import annotations

from .common import StructureBuilder

__all__ = ["build_hash_table"]


def build_hash_table():
    s = StructureBuilder("Hash Table")
    s.concrete("buckets", "int => (obj * obj) set")
    s.concrete("capacity", "int")
    s.concrete("hash", "obj => int")
    s.ghost("contents", "(obj * obj) set")
    s.ghost("keys", "obj set")
    s.spec("content", "(obj * obj) set", "contents")
    s.spec("csize", "int", "card contents")

    s.invariant("CapacityPositive", "0 < capacity")
    s.invariant("HashRange", "ALL k : obj. 0 <= hash[k] & hash[k] < capacity")
    s.invariant(
        "BucketComplete",
        "ALL k : obj, v : obj. (k, v) in contents --> (k, v) in buckets[hash[k]]",
    )
    s.invariant(
        "BucketSound",
        "ALL i : int, k : obj, v : obj. "
        "0 <= i & i < capacity & (k, v) in buckets[i] --> "
        "((k, v) in contents & hash[k] = i)",
    )
    s.invariant(
        "KeysSound",
        "ALL k : obj, v : obj. (k, v) in contents --> k in keys",
    )

    m = s.method(
        "containsPair",
        params="k : obj, v : obj",
        returns="bool",
        ensures="result <-> (k, v) in content",
    )
    m.instantiate("HashOfKey", "ALL k2 : obj. 0 <= hash[k2] & hash[k2] < capacity", "k")
    m.note(
        "InBucketIffInContents",
        "(k, v) in buckets[hash[k]] <-> (k, v) in contents",
        from_hints="BucketComplete, BucketSound, HashOfKey, HashRange, "
        "CapacityPositive",
    )
    m.returns("(k, v) in buckets[hash[k]]")
    m.done()

    m = s.method(
        "put",
        params="k : obj, v : obj",
        modifies="buckets, contents, keys",
        ensures="content = old content Un {(k, v)} & keys = old keys Un {k}",
    )
    m.instantiate("HashOfKey", "ALL k2 : obj. 0 <= hash[k2] & hash[k2] < capacity", "k")
    m.array_write("buckets", "hash[k]", "buckets[hash[k]] Un {(k, v)}")
    m.ghost_assign("contents", "contents Un {(k, v)}")
    m.ghost_assign("keys", "keys Un {k}")
    m.note(
        "NewPairStored",
        "(k, v) in buckets[hash[k]]",
        from_hints="HashOfKey, AssignTmp, Assign_buckets",
    )
    m.note(
        "OtherBucketsUnchanged",
        "ALL i : int. 0 <= i & i < capacity & i ~= hash[k] --> "
        "buckets[i] = old buckets[i]",
        from_hints="HashOfKey, OldSnapshot, AssignTmp, Assign_buckets",
    )
    m.note(
        "BucketStillComplete",
        "ALL k2 : obj, v2 : obj. (k2, v2) in contents --> "
        "(k2, v2) in buckets[hash[k2]]",
        from_hints="BucketComplete, HashOfKey, NewPairStored, OldSnapshot, "
        "AssignTmp, Assign_buckets, Assign_contents",
    )
    m.note(
        "BucketStillSound",
        "ALL i : int, k2 : obj, v2 : obj. "
        "0 <= i & i < capacity & (k2, v2) in buckets[i] --> "
        "((k2, v2) in contents & hash[k2] = i)",
        from_hints="BucketSound, HashRange, HashOfKey, OldSnapshot, "
        "AssignTmp, Assign_buckets, Assign_contents",
    )
    m.note(
        "KeysStillSound",
        "ALL k2 : obj, v2 : obj. (k2, v2) in contents --> k2 in keys",
        from_hints="KeysSound, AssignTmp, Assign_contents, Assign_keys",
    )
    m.done()

    m = s.method(
        "removePair",
        params="k : obj, v : obj",
        modifies="buckets, contents",
        ensures="content = old content \\ {(k, v)}",
    )
    m.instantiate("HashOfKey", "ALL k2 : obj. 0 <= hash[k2] & hash[k2] < capacity", "k")
    m.array_write("buckets", "hash[k]", "buckets[hash[k]] \\ {(k, v)}")
    m.ghost_assign("contents", "contents \\ {(k, v)}")
    m.note(
        "PairGoneFromBucket",
        "~((k, v) in buckets[hash[k]])",
        from_hints="HashOfKey, AssignTmp, Assign_buckets",
    )
    m.note(
        "BucketStillComplete",
        "ALL k2 : obj, v2 : obj. (k2, v2) in contents --> "
        "(k2, v2) in buckets[hash[k2]]",
        from_hints="BucketComplete, BucketSound, HashRange, HashOfKey, "
        "OldSnapshot, AssignTmp, Assign_buckets, Assign_contents",
    )
    m.note(
        "BucketStillSound",
        "ALL i : int, k2 : obj, v2 : obj. "
        "0 <= i & i < capacity & (k2, v2) in buckets[i] --> "
        "((k2, v2) in contents & hash[k2] = i)",
        from_hints="BucketSound, HashRange, HashOfKey, OldSnapshot, "
        "AssignTmp, Assign_buckets, Assign_contents",
    )
    m.note(
        "KeysStillSound",
        "ALL k2 : obj, v2 : obj. (k2, v2) in contents --> k2 in keys",
        from_hints="KeysSound, AssignTmp, Assign_contents",
    )
    m.done()

    m = s.method(
        "sizeOf",
        returns="int",
        ensures="result = csize",
    )
    m.returns("card contents")
    m.done()

    return s.build()
