"""The Array List benchmark (the paper's running example, Section 2).

The abstract state is the ``content`` relation defined by the same
abstraction function as Figure 1::

    content == {(i, n). 0 <= i & i < size & n = elements[i]}

and ``csize == size``.  The methods exercise the integrated proof language:
``whereIs`` uses a ``witness`` statement to identify the witness of its
existentially quantified postcondition (the paper's witness identification),
and the mutators carry ``note`` lemmas that relate regions of the updated
array to the original one.
"""

from __future__ import annotations

from .common import StructureBuilder

__all__ = ["build_array_list"]


def build_array_list():
    s = StructureBuilder("Array List")
    s.concrete("elements", "int => obj")
    s.concrete("size", "int")
    s.concrete("capacity", "int")
    s.spec(
        "content",
        "(int * obj) set",
        "{(i : int, n : obj). 0 <= i & i < size & n = elements[i]}",
    )
    s.spec("csize", "int", "size")

    s.invariant("SizeRange", "0 <= size & size <= capacity")

    m = s.method(
        "get",
        params="i : int",
        returns="obj",
        requires="0 <= i & i < size",
        ensures="(i, result) in content",
    )
    m.returns("elements[i]")
    m.done()

    m = s.method(
        "set",
        params="i : int, o : obj",
        requires="0 <= i & i < size",
        modifies="elements",
        ensures="(i, o) in content & csize = old csize",
    )
    m.array_write("elements", "i", "o")
    m.note("Stored", "elements[i] = o")
    m.done()

    m = s.method(
        "add",
        params="o : obj",
        requires="size < capacity",
        modifies="elements, size",
        ensures="(old size, o) in content & csize = old csize + 1",
    )
    m.array_write("elements", "size", "o")
    m.assign("size", "size + 1")
    m.note("AppendedAtEnd", "elements[size - 1] = o & size = old size + 1")
    m.done()

    m = s.method(
        "removeLast",
        requires="0 < size",
        modifies="size",
        ensures="csize = old csize - 1 & "
        "(ALL j : int, e : obj. 0 <= j & j < csize --> "
        "((j, e) in content <-> (j, e) in old content))",
    )
    m.assign("size", "size - 1")
    m.note(
        "PrefixUnchanged",
        "ALL j : int. 0 <= j & j < size --> elements[j] = old elements[j]",
        from_hints="Pre, OldSnapshot, AssignTmp, Assign_size",
    )
    m.done()

    m = s.method(
        "whereIs",
        params="i : int, o : obj",
        returns="int",
        requires="(i, o) in content",
        ensures="EX j : int. (j, o) in old content & result = j",
    )
    m.witness("i", "Found", "EX j : int. (j, o) in content & i = j")
    m.returns("i")
    m.done()

    m = s.method(
        "isEmpty",
        returns="bool",
        ensures="result <-> csize = 0",
    )
    m.returns("size = 0")
    m.done()

    return s.build()
