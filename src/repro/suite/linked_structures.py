"""The four simpler linked structures of the benchmark suite.

Linked List, Association List, Cursor List and Circular List.  In the paper
these structures need no (or almost no) integrated proof language guidance
(Table 1 reports zero proof statements for Linked List, Association List and
Cursor List and a handful for Circular List); the point of including them is
to show that the automated portfolio handles them on its own, which the
Table 2 benchmark reproduces.

Modelling notes (see DESIGN.md): each structure describes one container
instance; node fields are map-valued state variables; the abstract content
is a ghost set updated by specification assignments, and the structural
invariants are the quantified facts the provers need to re-establish after
every mutation.
"""

from __future__ import annotations

from .common import StructureBuilder

__all__ = [
    "build_linked_list",
    "build_association_list",
    "build_cursor_list",
    "build_circular_list",
]


def build_linked_list():
    """A singly-linked list of nodes with a set interface."""
    s = StructureBuilder("Linked List")
    s.concrete("first", "obj")
    s.concrete("next", "obj => obj")
    s.concrete("csize", "int")
    s.ghost("nodes", "obj set")
    s.spec("content", "obj set", "nodes")

    s.invariant("NullNotNode", "~(null in nodes)")
    s.invariant("FirstInNodes", "first ~= null --> first in nodes")
    s.invariant("EmptyFirst", "first = null --> card nodes = 0")
    s.invariant("SizeCard", "csize = card nodes")
    s.invariant(
        "NextClosed",
        "ALL n : obj. n in nodes --> (next[n] in nodes | next[n] = null)",
    )

    m = s.method(
        "init",
        modifies="first, nodes, csize",
        ensures="content = {} & csize = 0",
    )
    m.assign("first", "null")
    m.ghost_assign("nodes", "{}")
    m.assign("csize", "0")
    m.done()

    m = s.method(
        "addFirst",
        params="n : obj",
        requires="n ~= null & ~(n in nodes)",
        modifies="first, next, nodes, csize",
        ensures="content = old content Un {n} & csize = old csize + 1",
    )
    m.field_write("next", "n", "first")
    m.assign("first", "n")
    m.ghost_assign("nodes", "nodes Un {n}")
    m.assign("csize", "csize + 1")
    m.done()

    m = s.method(
        "isEmpty",
        returns="bool",
        ensures="result <-> first = null",
    )
    m.returns("first = null")
    m.done()

    m = s.method(
        "getFirst",
        returns="obj",
        requires="first ~= null",
        ensures="result in content & result ~= null",
    )
    m.returns("first")
    m.done()

    m = s.method(
        "contains",
        params="n : obj",
        returns="bool",
        ensures="result <-> n in content",
    )
    m.returns("n in nodes")
    m.done()

    m = s.method(
        "size",
        returns="int",
        ensures="result = card content",
    )
    m.returns("csize")
    m.done()

    return s.build()


def build_association_list():
    """A key/value association list storing its relation in a ghost set."""
    s = StructureBuilder("Association List")
    s.concrete("first", "obj")
    s.concrete("next", "obj => obj")
    s.concrete("key", "obj => obj")
    s.concrete("value", "obj => obj")
    s.ghost("nodes", "obj set")
    s.ghost("keys", "obj set")
    s.ghost("pairs", "(obj * obj) set")
    s.spec("content", "(obj * obj) set", "pairs")

    s.invariant("NullNotNode", "~(null in nodes)")
    s.invariant("FirstInNodes", "first ~= null --> first in nodes")
    s.invariant(
        "NextClosed",
        "ALL n : obj. n in nodes --> (next[n] in nodes | next[n] = null)",
    )
    s.invariant(
        "PairsSound",
        "ALL n : obj. n in nodes --> (key[n], value[n]) in pairs",
    )
    s.invariant(
        "KeysSound",
        "ALL k : obj, v : obj. (k, v) in pairs --> k in keys",
    )

    m = s.method(
        "init",
        modifies="first, nodes, keys, pairs",
        ensures="content = {} & keys = {}",
    )
    m.assign("first", "null")
    m.ghost_assign("nodes", "{}")
    m.ghost_assign("keys", "{}")
    m.ghost_assign("pairs", "{}")
    m.done()

    m = s.method(
        "put",
        params="k : obj, v : obj, node : obj",
        requires="node ~= null & ~(node in nodes) & k ~= null",
        modifies="first, next, key, value, nodes, keys, pairs",
        ensures="content = old content Un {(k, v)} & keys = old keys Un {k}",
    )
    m.field_write("key", "node", "k")
    m.field_write("value", "node", "v")
    m.field_write("next", "node", "first")
    m.assign("first", "node")
    m.ghost_assign("nodes", "nodes Un {node}")
    m.ghost_assign("keys", "keys Un {k}")
    m.ghost_assign("pairs", "pairs Un {(k, v)}")
    m.note(
        "PairsStillSound",
        "ALL n : obj. n in nodes --> (key[n], value[n]) in pairs",
        from_hints="PairsSound, NullNotNode, Pre, AssignTmp, Assign_key, "
        "Assign_value, Assign_nodes, Assign_pairs, Assign_next, Assign_first",
    )
    m.done()

    m = s.method(
        "containsKey",
        params="k : obj",
        returns="bool",
        ensures="result <-> k in keys",
    )
    m.returns("k in keys")
    m.done()

    m = s.method(
        "isEmpty",
        returns="bool",
        ensures="result <-> first = null",
    )
    m.returns("first = null")
    m.done()

    m = s.method(
        "headPair",
        returns="bool",
        requires="first ~= null",
        ensures="result --> (key[first], value[first]) in content",
    )
    m.returns("first in nodes")
    m.done()

    return s.build()


def build_cursor_list():
    """A list with an iteration cursor (the paper's Cursor List)."""
    s = StructureBuilder("Cursor List")
    s.concrete("first", "obj")
    s.concrete("current", "obj")
    s.concrete("next", "obj => obj")
    s.ghost("nodes", "obj set")
    s.ghost("toVisit", "obj set")
    s.spec("content", "obj set", "nodes")

    s.invariant("NullNotNode", "~(null in nodes)")
    s.invariant("FirstInNodes", "first ~= null --> first in nodes")
    s.invariant("CurrentValid", "current ~= null --> current in nodes")
    s.invariant("ToVisitSubset", "toVisit subseteq nodes")
    s.invariant(
        "NextClosed",
        "ALL n : obj. n in nodes --> (next[n] in nodes | next[n] = null)",
    )

    m = s.method(
        "init",
        modifies="first, current, nodes, toVisit",
        ensures="content = {}",
    )
    m.assign("first", "null")
    m.assign("current", "null")
    m.ghost_assign("nodes", "{}")
    m.ghost_assign("toVisit", "{}")
    m.done()

    m = s.method(
        "add",
        params="n : obj",
        requires="n ~= null & ~(n in nodes)",
        modifies="first, next, nodes, toVisit",
        ensures="content = old content Un {n}",
    )
    m.field_write("next", "n", "first")
    m.assign("first", "n")
    m.ghost_assign("nodes", "nodes Un {n}")
    m.ghost_assign("toVisit", "toVisit Un {n}")
    m.done()

    m = s.method(
        "reset",
        modifies="current, toVisit",
        ensures="toVisit = content",
    )
    m.assign("current", "first")
    m.ghost_assign("toVisit", "nodes")
    m.done()

    m = s.method(
        "advance",
        requires="current ~= null & current in toVisit",
        modifies="current, toVisit",
        ensures="toVisit = old toVisit \\ {old current}",
    )
    m.ghost_assign("toVisit", "toVisit \\ {current}")
    m.assign("current", "next[current]")
    m.done()

    m = s.method(
        "hasCurrent",
        returns="bool",
        ensures="result <-> current ~= null",
    )
    m.returns("current ~= null")
    m.done()

    m = s.method(
        "getCurrent",
        returns="obj",
        requires="current ~= null",
        ensures="result in content",
    )
    m.returns("current")
    m.done()

    return s.build()


def build_circular_list():
    """A circular doubly-linked list; a few notes guide the prev/next proofs."""
    s = StructureBuilder("Circular List")
    s.concrete("head", "obj")
    s.concrete("next", "obj => obj")
    s.concrete("prev", "obj => obj")
    s.concrete("csize", "int")
    s.ghost("nodes", "obj set")
    s.spec("content", "obj set", "nodes \\ {head}")

    s.invariant("NullNotNode", "~(null in nodes)")
    s.invariant("HeadNotNull", "head ~= null")
    s.invariant("HeadInNodes", "head in nodes")
    s.invariant("NextClosed", "ALL n : obj. n in nodes --> next[n] in nodes")
    s.invariant("PrevClosed", "ALL n : obj. n in nodes --> prev[n] in nodes")
    s.invariant("SizeCard", "csize = card nodes - 1")

    m = s.method(
        "initEmpty",
        params="sentinel : obj",
        requires="sentinel ~= null",
        modifies="head, next, prev, nodes, csize",
        ensures="content = {} & csize = 0",
    )
    m.assign("head", "sentinel")
    m.field_write("next", "sentinel", "sentinel")
    m.field_write("prev", "sentinel", "sentinel")
    m.ghost_assign("nodes", "{sentinel}")
    m.assign("csize", "0")
    m.note("HeadIsOnlyNode", "nodes = {sentinel}")
    m.done()

    m = s.method(
        "insertAfterHead",
        params="n : obj",
        requires="n ~= null & ~(n in nodes)",
        modifies="next, prev, nodes, csize",
        ensures="content = old content Un {n} & csize = old csize + 1",
    )
    m.note("NewNodeNotHead", "n ~= head")
    m.field_write("prev", "next[head]", "n")
    m.field_write("next", "n", "next[head]")
    m.field_write("prev", "n", "head")
    m.field_write("next", "head", "n")
    m.ghost_assign("nodes", "nodes Un {n}")
    m.assign("csize", "csize + 1")
    m.note("ContentGrew", "nodes \\ {head} = (old nodes \\ {head}) Un {n}")
    m.done()

    m = s.method(
        "isEmpty",
        returns="bool",
        ensures="result <-> card content = 0",
    )
    m.note("HeadCounted", "card (nodes \\ {head}) = card nodes - 1")
    m.returns("csize = 0")
    m.done()

    m = s.method(
        "sizeOf",
        returns="int",
        ensures="result = card content",
    )
    m.returns("csize")
    m.done()

    return s.build()
