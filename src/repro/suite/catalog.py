"""The benchmark catalogue: the eight data structures of Section 6."""

from __future__ import annotations

from functools import lru_cache

from ..frontend.ast import ClassModel
from .linked_structures import (
    build_association_list,
    build_circular_list,
    build_cursor_list,
    build_linked_list,
)

__all__ = ["all_structures", "structure_by_name", "STRUCTURE_ORDER"]

#: Table order used by the paper (most complex first).
STRUCTURE_ORDER = (
    "Hash Table",
    "Priority Queue",
    "Binary Tree",
    "Array List",
    "Circular List",
    "Cursor List",
    "Association List",
    "Linked List",
)


@lru_cache(maxsize=1)
def _catalogue() -> dict[str, ClassModel]:
    from .array_list import build_array_list
    from .binary_tree import build_binary_tree
    from .hash_table import build_hash_table
    from .priority_queue import build_priority_queue

    structures = [
        build_hash_table(),
        build_priority_queue(),
        build_binary_tree(),
        build_array_list(),
        build_circular_list(),
        build_cursor_list(),
        build_association_list(),
        build_linked_list(),
    ]
    return {cls.name: cls for cls in structures}


def all_structures() -> list[ClassModel]:
    """All benchmark data structures, in the paper's table order."""
    catalogue = _catalogue()
    return [catalogue[name] for name in STRUCTURE_ORDER]


def structure_by_name(name: str) -> ClassModel:
    """Look up a benchmark data structure by (case-insensitive) name."""
    catalogue = _catalogue()
    for key, value in catalogue.items():
        if key.lower().replace(" ", "") == name.lower().replace(" ", ""):
            return value
    raise KeyError(
        f"unknown data structure {name!r}; available: {', '.join(catalogue)}"
    )
