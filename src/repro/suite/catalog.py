"""The benchmark catalogue: the eight data structures of Section 6."""

from __future__ import annotations

from functools import lru_cache

from ..frontend.ast import ClassModel
from .linked_structures import (
    build_association_list,
    build_circular_list,
    build_cursor_list,
    build_linked_list,
)

__all__ = [
    "all_structures",
    "structure_by_name",
    "register_structure",
    "registered_structures",
    "unregister_structure",
    "STRUCTURE_ORDER",
    "CLASS_COST_HINTS",
    "DEFAULT_COST_HINT",
    "cost_hint",
]

#: Table order used by the paper (most complex first).
STRUCTURE_ORDER = (
    "Hash Table",
    "Priority Queue",
    "Binary Tree",
    "Array List",
    "Circular List",
    "Cursor List",
    "Association List",
    "Linked List",
)

#: Relative single-run verification cost per class (measured seconds on the
#: reference container at benchmark-scaled timeouts).  The suite scheduler
#: (:mod:`repro.verifier.scheduler`) dispatches shards longest-class-first
#: so the expensive classes cannot serialize the tail of a whole-catalog
#: run.  Since PR 5 these static numbers are only the *third* rung of the
#: cost fallback chain (:mod:`repro.verifier.costmodel`):
#:
#: 1. ``measured`` -- per-sequent prover timings from the warm persistent
#:    cache (or from dispatches earlier in this process);
#: 2. ``profile``  -- a persisted per-class cost profile from an earlier
#:    run (covers classes whose individual sequent timings were evicted);
#: 3. ``static``   -- this table;
#: 4. ``default``  -- :data:`DEFAULT_COST_HINT`, for classes in none of
#:    the above (e.g. ad-hoc structures verified via ``examples/``, which
#:    graduate to ``measured`` the first time a warm store has seen them).
#:
#: Only the *ordering* matters for correctness; stale absolute numbers
#: merely cost a little load balance.
CLASS_COST_HINTS: dict[str, float] = {
    "Priority Queue": 17.0,
    "Hash Table": 12.0,
    "Binary Tree": 10.0,
    "Association List": 6.5,
    "Circular List": 1.2,
    "Linked List": 0.6,
    "Array List": 0.4,
    "Cursor List": 0.3,
}

#: Scheduling cost assumed for classes without a measured or static hint
#: (a mid-pack value: unknown work should start neither first nor last).
#: The last rung of the fallback chain documented on CLASS_COST_HINTS.
DEFAULT_COST_HINT = 5.0


def cost_hint(name: str) -> float:
    """The *static* scheduling cost hint for class ``name``.

    This is only the static tail of the fallback chain documented on
    :data:`CLASS_COST_HINTS`; schedulers with an engine at hand should
    ask :meth:`repro.verifier.costmodel.CostModel.class_cost`, which
    prefers measured profiles and reports which source answered.
    """
    if name in CLASS_COST_HINTS:
        return CLASS_COST_HINTS[name]
    if name in _REGISTERED_HINTS:
        return _REGISTERED_HINTS[name]
    return DEFAULT_COST_HINT


@lru_cache(maxsize=1)
def _catalogue() -> dict[str, ClassModel]:
    from .array_list import build_array_list
    from .binary_tree import build_binary_tree
    from .hash_table import build_hash_table
    from .priority_queue import build_priority_queue

    structures = [
        build_hash_table(),
        build_priority_queue(),
        build_binary_tree(),
        build_array_list(),
        build_circular_list(),
        build_cursor_list(),
        build_association_list(),
        build_linked_list(),
    ]
    return {cls.name: cls for cls in structures}


#: Classes registered at runtime (generated programs, ingested files),
#: in registration order.  They resolve through :func:`structure_by_name`
#: exactly like the paper catalogue -- which is what makes a generated
#: class first-class for the scheduler, the caches, the cost model, the
#: daemon's ``verify`` op and the remote worker pools -- but they are
#: deliberately *not* part of :func:`all_structures`: Table 1 is the
#: paper's table, and a registered class must never punch holes in it.
_REGISTERED: dict[str, ClassModel] = {}
_REGISTERED_HINTS: dict[str, float] = {}


def _normalize(name: str) -> str:
    return name.lower().replace(" ", "")


def register_structure(
    cls: ClassModel,
    cost_hint: float | None = None,
    replace: bool = False,
) -> ClassModel:
    """Register ``cls`` so :func:`structure_by_name` resolves it.

    ``cost_hint`` optionally seeds the *static* rung of the scheduling
    cost chain for the class (without it, registered classes price at
    :data:`DEFAULT_COST_HINT` until a warm store has measured them).
    Collisions -- with the paper catalogue or an earlier registration --
    raise unless ``replace`` is set; the paper catalogue itself can never
    be replaced.
    """
    key = _normalize(cls.name)
    if any(_normalize(name) == key for name in STRUCTURE_ORDER):
        raise ValueError(f"{cls.name!r} collides with a paper catalogue class")
    if key in {_normalize(name) for name in _REGISTERED} and not replace:
        raise ValueError(f"{cls.name!r} is already registered")
    _REGISTERED.pop(
        next((n for n in _REGISTERED if _normalize(n) == key), cls.name), None
    )
    _REGISTERED[cls.name] = cls
    if cost_hint is not None:
        _REGISTERED_HINTS[cls.name] = float(cost_hint)
    return cls


def registered_structures() -> list[ClassModel]:
    """Runtime-registered classes, in registration order."""
    return list(_REGISTERED.values())


def unregister_structure(name: str | None = None) -> None:
    """Remove one registered class (or, with ``name=None``, all of them).

    Test hygiene: suites that register generated corpora drop them again
    so catalogue state never leaks between tests.
    """
    if name is None:
        _REGISTERED.clear()
        _REGISTERED_HINTS.clear()
        return
    key = _normalize(name)
    for registered in list(_REGISTERED):
        if _normalize(registered) == key:
            del _REGISTERED[registered]
            _REGISTERED_HINTS.pop(registered, None)
            return
    raise KeyError(f"no registered structure {name!r}")


def all_structures() -> list[ClassModel]:
    """All benchmark data structures, in the paper's table order."""
    catalogue = _catalogue()
    return [catalogue[name] for name in STRUCTURE_ORDER]


def structure_by_name(name: str) -> ClassModel:
    """Look up a data structure -- paper catalogue first, then classes
    registered at runtime (:func:`register_structure`) -- by
    (case-insensitive, space-insensitive) name."""
    catalogue = _catalogue()
    key = _normalize(name)
    for source in (catalogue, _REGISTERED):
        for candidate, value in source.items():
            if _normalize(candidate) == key:
                return value
    raise KeyError(
        f"unknown data structure {name!r}; available: "
        f"{', '.join([*catalogue, *_REGISTERED])}"
    )
