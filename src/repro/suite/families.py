"""Program families for the generated catalogue.

Two :class:`~repro.frontend.ast.ClassModel` generators, each producing
well-formed annotated modules *by construction* (every requires/ensures/
invariant is emitted together with a body that maintains it, so a
generated class is expected to verify fully):

* :func:`build_arith_class` -- **arithmetic-heavy**: integer counters
  with lower/upper-bound invariants, loops with invariants and
  conditional updates; the sequents lean on the LIA prover.
* :func:`build_struct_class` -- **structure-heavy**: an ``obj``-typed
  head pointer, map-valued node fields (``next: obj => obj``,
  ``val: obj => int``), a ghost node set and null checks; the sequents
  lean on EUF / function-update / set reasoning.

Both are driven by a caller-supplied :class:`random.Random`, so a class
is a pure function of ``(family, seed, size)`` -- the property the
differential fuzz harness (``tests/gensuite``) relies on to reproduce
and shrink failures from nothing but a printed seed.

Generation is template-based: each family owns a pool of method
templates; a class draws ``size`` of them (with replacement, under
per-template caps) and every template randomizes its own constants.
Templates never call each other (no ``Call`` statements), so any subset
of a generated class's methods is itself a well-formed class -- which is
what makes shrinking by dropping methods sound
(:func:`repro.suite.generate.shrink_class`).
"""

from __future__ import annotations

import random

from ..frontend.ast import ClassModel
from .common import StructureBuilder

__all__ = ["build_arith_class", "build_struct_class"]


# ---------------------------------------------------------------------------
# Arithmetic-heavy family
# ---------------------------------------------------------------------------


def _arith_reset(s: StructureBuilder, rng: random.Random, index: int) -> None:
    m = s.method(
        f"reset{index}",
        modifies="count, total",
        ensures="count = 0 & total = 0",
    )
    m.assign("count", "0")
    m.assign("total", "0")
    m.done()


def _arith_bump(s: StructureBuilder, rng: random.Random, index: int) -> None:
    m = s.method(
        f"bump{index}",
        params="k: int",
        requires="0 <= k & count + k <= cap",
        modifies="count, total",
        ensures="count = old count + k & total = old total + k",
    )
    m.assign("count", "count + k")
    m.assign("total", "total + k")
    m.done()


def _arith_dec(s: StructureBuilder, rng: random.Random, index: int) -> None:
    step = rng.randint(1, 3)
    m = s.method(
        f"dec{index}",
        requires=f"{step} <= count",
        modifies="count",
        ensures=f"count = old count - {step}",
    )
    m.assign("count", f"count - {step}")
    m.done()


def _arith_clamp(s: StructureBuilder, rng: random.Random, index: int) -> None:
    step = rng.randint(1, 2)
    m = s.method(
        f"clamp{index}",
        modifies="count",
        ensures="count <= cap & old count <= count",
    )
    with m.if_(f"count + {step} <= cap"):
        m.assign("count", f"count + {step}")
    m.done()


def _arith_scale(s: StructureBuilder, rng: random.Random, index: int) -> None:
    factor = rng.randint(2, 4)
    m = s.method(
        f"scale{index}",
        modifies="total",
        ensures=f"total = old total * {factor}",
    )
    m.assign("total", f"total * {factor}")
    m.done()


def _arith_fill(s: StructureBuilder, rng: random.Random, index: int) -> None:
    m = s.method(
        f"fill{index}",
        modifies="count",
        ensures="count = cap",
    )
    with m.while_("count < cap", "0 <= count & count <= cap"):
        m.assign("count", "count + 1")
    m.done()


def _arith_sum(s: StructureBuilder, rng: random.Random, index: int) -> None:
    bound = rng.randint(2, 6)
    m = s.method(
        f"sum{index}",
        params="n: int",
        returns="int",
        requires=f"0 <= n & n <= {bound}",
        ensures="0 <= result",
    )
    m.local("i", "int")
    m.local("acc", "int")
    m.assign("i", "0")
    m.assign("acc", "0")
    with m.while_("i < n", "0 <= i & i <= n & 0 <= acc"):
        m.assign("acc", "acc + i")
        m.assign("i", "i + 1")
    m.returns("acc")
    m.done()


def _arith_get(s: StructureBuilder, rng: random.Random, index: int) -> None:
    m = s.method(
        f"current{index}",
        returns="int",
        ensures="result = count & 0 <= result",
    )
    m.returns("count")
    m.done()


#: ``(template, cap)`` -- how many instances of each template one class
#: may draw.  Loop templates are capped at one instance each: loops
#: dominate a generated class's proving cost, and the corpus must stay
#: tier-1 fast.
_ARITH_TEMPLATES = (
    (_arith_reset, 1),
    (_arith_bump, 2),
    (_arith_dec, 2),
    (_arith_clamp, 2),
    (_arith_scale, 2),
    (_arith_fill, 1),
    (_arith_sum, 1),
    (_arith_get, 1),
)


def build_arith_class(name: str, rng: random.Random, size: int = 3) -> ClassModel:
    """An arithmetic-heavy class with ``size`` generated methods."""
    s = StructureBuilder(name)
    s.concrete("count", "int")
    s.concrete("cap", "int")
    s.concrete("total", "int")
    s.invariant("CapLower", "0 <= cap")
    s.invariant("CountLower", "0 <= count")
    s.invariant("CountUpper", "count <= cap")
    s.invariant("TotalLower", "0 <= total")
    _draw_templates(s, rng, size, _ARITH_TEMPLATES)
    return s.build()


# ---------------------------------------------------------------------------
# Structure-heavy family
# ---------------------------------------------------------------------------


def _struct_clear(s: StructureBuilder, rng: random.Random, index: int) -> None:
    m = s.method(
        f"clear{index}",
        modifies="first, nodes, size",
        ensures="first = null & size = 0",
    )
    m.assign("first", "null")
    m.ghost_assign("nodes", "{}")
    m.assign("size", "0")
    m.done()


def _struct_insert(s: StructureBuilder, rng: random.Random, index: int) -> None:
    m = s.method(
        f"insert{index}",
        params="n: obj",
        requires="n ~= null & n ~in nodes",
        modifies="first, next, nodes, size",
        ensures="n in nodes & first = n & size = old size + 1",
    )
    m.field_write("next", "n", "first")
    m.assign("first", "n")
    m.ghost_assign("nodes", "nodes Un {n}")
    m.assign("size", "size + 1")
    m.done()


def _struct_tag(s: StructureBuilder, rng: random.Random, index: int) -> None:
    m = s.method(
        f"tag{index}",
        params="n: obj, k: int",
        requires="n in nodes & 0 <= k",
        modifies="val",
        ensures="val[n] = k",
    )
    m.field_write("val", "n", "k")
    m.done()


def _struct_relink(s: StructureBuilder, rng: random.Random, index: int) -> None:
    m = s.method(
        f"relink{index}",
        params="a: obj, b: obj",
        requires="a in nodes & b in nodes",
        modifies="next",
        ensures="next[a] = b",
    )
    m.field_write("next", "a", "b")
    m.done()


def _struct_drop(s: StructureBuilder, rng: random.Random, index: int) -> None:
    m = s.method(
        f"drop{index}",
        modifies="first, nodes, size",
        ensures="first = null",
    )
    with m.if_("first ~= null & 0 < size"):
        m.ghost_assign("nodes", "nodes \\ {first}")
        m.assign("first", "null")
        m.assign("size", "size - 1")
    with m.else_():
        m.assign("first", "null")
    m.done()


def _struct_adopt(s: StructureBuilder, rng: random.Random, index: int) -> None:
    m = s.method(
        f"adopt{index}",
        params="n: obj",
        requires="n ~= null",
        modifies="nodes, size",
        ensures="n in nodes",
    )
    with m.if_("n ~in nodes"):
        m.ghost_assign("nodes", "nodes Un {n}")
        m.assign("size", "size + 1")
    m.done()


def _struct_head(s: StructureBuilder, rng: random.Random, index: int) -> None:
    m = s.method(
        f"head{index}",
        returns="obj",
        ensures="result = first & (first ~= null --> result in nodes)",
    )
    m.returns("first")
    m.done()


_STRUCT_TEMPLATES = (
    (_struct_clear, 1),
    (_struct_insert, 2),
    (_struct_tag, 2),
    (_struct_relink, 2),
    (_struct_drop, 1),
    (_struct_adopt, 2),
    (_struct_head, 1),
)


def build_struct_class(name: str, rng: random.Random, size: int = 3) -> ClassModel:
    """A structure-heavy class with ``size`` generated methods."""
    s = StructureBuilder(name)
    s.concrete("first", "obj")
    s.concrete("next", "obj => obj")
    s.concrete("val", "obj => int")
    s.concrete("size", "int")
    s.ghost("nodes", "obj set")
    s.invariant("NullOut", "null ~in nodes")
    s.invariant("FirstIn", "first ~= null --> first in nodes")
    s.invariant("SizeLower", "0 <= size")
    _draw_templates(s, rng, size, _STRUCT_TEMPLATES)
    return s.build()


# ---------------------------------------------------------------------------
# Template drawing
# ---------------------------------------------------------------------------


def _draw_templates(
    s: StructureBuilder,
    rng: random.Random,
    size: int,
    pool: tuple,
) -> None:
    """Emit ``size`` methods drawn from ``pool`` (template, cap) entries.

    Drawing is with replacement under the per-template cap; method names
    carry the draw index so repeated templates never collide.  ``size``
    is clamped to the pool's total capacity.
    """
    budget = {template: cap for template, cap in pool}
    size = max(1, min(int(size), sum(budget.values())))
    templates = [template for template, _ in pool]
    for index in range(size):
        open_templates = [t for t in templates if budget[t] > 0]
        template = rng.choice(open_templates)
        budget[template] -= 1
        template(s, rng, index)
