"""The benchmark suite: the paper's eight linked data structures."""

from .catalog import STRUCTURE_ORDER, all_structures, structure_by_name
from .common import MethodBuilder, StructureBuilder

__all__ = [
    "MethodBuilder",
    "STRUCTURE_ORDER",
    "StructureBuilder",
    "all_structures",
    "structure_by_name",
]
