"""File ingestion: load class models from a standalone Python file.

``jahob-py verify FILE`` (and the daemon's ``verify_file`` op) accept an
ordinary Python file and verify every class model it exports, which turns
``examples/`` -- and any user-written or generated program -- into live
verifier inputs rather than ad-hoc scripts.

A file can export models three ways, checked in this order:

1. a ``MODEL`` attribute (one :class:`~repro.frontend.ast.ClassModel`) or
   a ``MODELS`` attribute (an iterable of them) -- the explicit spelling,
   and the one generated regression files use;
2. module-level :class:`~repro.frontend.ast.ClassModel` instances bound
   to any name;
3. zero-argument module-level callables whose name starts with ``build``
   returning a :class:`~repro.frontend.ast.ClassModel` -- the idiom every
   ``examples/`` file already follows.

Discovery is cumulative across 2 and 3 when no explicit ``MODEL(S)`` is
given, models are deduplicated by class name (first wins), and the
result order is deterministic (definition order for attributes, name
order for builders), so repeated loads of the same file verify the same
classes in the same order.
"""

from __future__ import annotations

import hashlib
import importlib.util
import inspect
import itertools
import sys
from pathlib import Path

from .ast import ClassModel

__all__ = ["ProgramLoadError", "load_class_models"]


class ProgramLoadError(Exception):
    """The file could not be loaded or exports no class models."""


#: Monotonic per-process load counter: every import gets a module name of
#: its own, so repeated loads of the same path (watch mode re-ingests a
#: file on every save) and concurrent loads from daemon request threads
#: never collide in ``sys.modules``.  ``itertools.count`` is atomic under
#: the GIL, so no lock is needed.
_LOAD_COUNTER = itertools.count()


def _import_file(path: Path):
    """Import ``path`` as an anonymous module (not registered by a
    path-derived name alone, so loading ``a/model.py`` and ``b/model.py``
    -- or the same file twice -- never collide)."""
    digest = hashlib.sha1(str(path).encode("utf-8")).hexdigest()[:12]
    name = f"_jahob_program_{digest}_{next(_LOAD_COUNTER)}"
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise ProgramLoadError(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    # Visible under its anonymous name while executing so dataclasses /
    # pickling inside the file resolve their defining module.
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    except ProgramLoadError:
        raise
    except Exception as exc:
        raise ProgramLoadError(f"error executing {path}: {exc}") from exc
    finally:
        # Pop only our own entry: a concurrent load of the same path owns
        # a different name, and an unrelated module must never be evicted.
        if sys.modules.get(name) is module:
            del sys.modules[name]
    return module


def _explicit_models(module, path: Path) -> list[ClassModel] | None:
    """The ``MODEL`` / ``MODELS`` exports, or None when absent."""
    found: list[ClassModel] = []
    if hasattr(module, "MODEL"):
        model = module.MODEL
        if not isinstance(model, ClassModel):
            raise ProgramLoadError(
                f"{path}: MODEL must be a ClassModel, got {type(model).__name__}"
            )
        found.append(model)
    if hasattr(module, "MODELS"):
        models = list(module.MODELS)
        bad = [m for m in models if not isinstance(m, ClassModel)]
        if bad:
            raise ProgramLoadError(
                f"{path}: MODELS must contain only ClassModels, "
                f"got {type(bad[0]).__name__}"
            )
        found.extend(models)
    return found if found else None


def _discovered_models(module, path: Path) -> list[ClassModel]:
    """Module-level ClassModel bindings plus zero-arg ``build*`` callables."""
    found = [value for value in vars(module).values() if isinstance(value, ClassModel)]
    builders = sorted(
        (name, value)
        for name, value in vars(module).items()
        if name.startswith("build") and callable(value)
    )
    for name, builder in builders:
        try:
            signature = inspect.signature(builder)
        except (TypeError, ValueError):
            continue
        required = [
            p
            for p in signature.parameters.values()
            if p.default is p.empty
            and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
        ]
        if required:
            continue
        try:
            built = builder()
        except Exception as exc:
            raise ProgramLoadError(f"{path}: {name}() raised: {exc}") from exc
        if isinstance(built, ClassModel):
            found.append(built)
    return found


def load_class_models(path: str | Path) -> list[ClassModel]:
    """All class models exported by the Python file at ``path``.

    Raises :class:`ProgramLoadError` if the file is missing, fails to
    execute, or exports no models.  The result is deduplicated by class
    name and deterministically ordered.
    """
    path = Path(path)
    if not path.is_file():
        raise ProgramLoadError(f"no such file: {path}")
    module = _import_file(path)
    models = _explicit_models(module, path)
    if models is None:
        models = _discovered_models(module, path)
    unique: dict[str, ClassModel] = {}
    for model in models:
        unique.setdefault(model.name, model)
    if not unique:
        raise ProgramLoadError(
            f"{path} exports no class models (define MODEL/MODELS, bind a "
            "ClassModel at module level, or provide a zero-argument build* "
            "function returning one)"
        )
    return list(unique.values())
