"""The surface program model (classes, contracts, statements) and lowering."""

from .ast import (
    ArrayWrite,
    Assign,
    AssertStmt,
    AssumeStmt,
    Call,
    ClassModel,
    FieldWrite,
    GhostAssign,
    If,
    Invariant,
    Method,
    MethodContract,
    ProofStmt,
    Return,
    StateVar,
    Stmt,
    While,
    count_proof_constructs,
    count_statements,
)
from .lower import LoweringError, MethodLowering, lower_method

__all__ = [name for name in dir() if not name.startswith("_")]
