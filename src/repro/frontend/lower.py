"""Lowering surface methods into extended guarded commands.

For a method ``m`` of a class model the lowering builds the command

    assume Inv_1 ; ... ; assume Inv_k ;          (class invariants)
    assume Pre ;                                  (requires clause)
    assume old_x = x ;  ...                       (pre-state snapshot)
    [[body]] ;
    assert Post ; assert Inv_1 Restored ; ...     (exit obligations)

with the following statement translations (mirroring Section 3 of the
paper):

* field and array assignments become function-update assignments of the
  corresponding map-valued state variable (``next := next[n := v]``),
  preceded by automatically inserted null-dereference / array-bounds
  assertions;
* ``return e`` assigns the result variable, asserts the exit obligations and
  cuts the path with ``assume false``;
* calls to sibling methods are verified modularly: assert the callee's
  precondition, havoc its frame, assume its postcondition (with ``old``
  referring to the pre-call snapshot) -- the assumed postcondition is named
  ``<callee>_Post`` so that proof annotations can reference it in ``from``
  clauses exactly like the paper's ``shift Postcondition``;
* specification variables with ``vardefs`` definitions are *expanded*: every
  occurrence in contracts, invariants and proof annotations is replaced by
  its defining formula over the concrete state (Jahob's abstraction
  functions);
* ``old(e)`` in postconditions refers to the renamed pre-state snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gcl import extended as gc
from ..gcl.extended import ExtendedCommand, eseq
from ..logic import builder as b
from ..logic.sorts import OBJ, MapSort
from ..logic.subst import substitute
from ..logic.terms import (
    NULL,
    App,
    Binder,
    Term,
    Var,
    free_vars,
    subterms,
)
from .ast import (
    ArrayWrite,
    Assign,
    AssertStmt,
    AssumeStmt,
    Call,
    ClassModel,
    FieldWrite,
    GhostAssign,
    If,
    Method,
    ProofStmt,
    Return,
    Stmt,
    While,
)

__all__ = ["LoweringError", "MethodLowering", "lower_method"]


class LoweringError(ValueError):
    """Raised when a method body cannot be lowered."""


@dataclass
class MethodLowering:
    """The result of lowering one method."""

    command: ExtendedCommand
    exit_asserts: tuple[tuple[str, Term], ...]
    old_snapshot: dict[str, Var]


def lower_method(
    cls: ClassModel,
    method: Method,
    check_invariants: bool = True,
    runtime_checks: bool = True,
) -> MethodLowering:
    """Lower ``method`` of ``cls`` into an extended guarded command."""
    lowering = _Lowerer(cls, method, check_invariants, runtime_checks)
    return lowering.run()


class _Lowerer:
    def __init__(
        self,
        cls: ClassModel,
        method: Method,
        check_invariants: bool,
        runtime_checks: bool,
    ) -> None:
        self.cls = cls
        self.method = method
        self.check_invariants = check_invariants
        self.runtime_checks = runtime_checks
        self.spec_definitions = {
            sv.name: sv.definition for sv in cls.spec_vars if sv.definition is not None
        }
        self.state_names = {sv.name for sv in cls.state}
        self.field_maps = {
            sv.name
            for sv in cls.state
            if isinstance(sv.sort, MapSort) and sv.sort.dom == OBJ
        }
        self.array_maps = {
            sv.name
            for sv in cls.state
            if isinstance(sv.sort, MapSort) and sv.sort.dom != OBJ
        }
        self.old_snapshot: dict[str, Var] = {}
        self.counter = 0

    # -- small helpers -------------------------------------------------------------

    def _fresh_name(self, base: str) -> str:
        self.counter += 1
        return f"{base}__{self.counter}"

    def _state_var(self, name: str) -> Var:
        return self.cls.state_var(name).var

    def expand(self, formula: Term) -> Term:
        """Expand spec-variable definitions (vardefs) in a formula."""
        mapping: dict[Var, Term] = {}
        for var in free_vars(formula):
            if var.name in self.spec_definitions:
                mapping[var] = self.expand(self.spec_definitions[var.name])
        if not mapping:
            return formula
        return substitute(formula, mapping)

    def eliminate_old(self, formula: Term) -> Term:
        """Replace ``old(e)`` by ``e`` with state variables renamed to their
        pre-state snapshot."""
        return self._eliminate_old(self.expand(formula))

    def _eliminate_old(self, term: Term) -> Term:
        if isinstance(term, App) and term.op == "old":
            return self._rename_to_old(self._eliminate_old(term.args[0]))
        if isinstance(term, App):
            return term.rebuild(tuple(self._eliminate_old(a) for a in term.args))
        if isinstance(term, Binder):
            return term.rebuild((self._eliminate_old(term.body),))
        return term

    def _rename_to_old(self, term: Term) -> Term:
        mapping: dict[Var, Term] = {}
        for var in free_vars(term):
            if var.name in self.state_names:
                mapping[var] = self._old_var(var)
        if not mapping:
            return term
        return substitute(term, mapping)

    def _old_var(self, var: Var) -> Var:
        snapshot = self.old_snapshot.get(var.name)
        if snapshot is None:
            snapshot = Var(f"old_{var.name}", var.sort)
            self.old_snapshot[var.name] = snapshot
        return snapshot

    # -- runtime checks ------------------------------------------------------------

    def _runtime_checks(self, *terms: Term) -> list[ExtendedCommand]:
        """Null-dereference checks for field reads occurring in ``terms``."""
        if not self.runtime_checks:
            return []
        checks: list[ExtendedCommand] = []
        seen: set[Term] = set()
        for term in terms:
            for sub in subterms(term):
                if (
                    isinstance(sub, App)
                    and sub.op == "select"
                    and isinstance(sub.args[0], Var)
                    and sub.args[0].name in self.field_maps
                    and sub.args[1].sort == OBJ
                ):
                    receiver = sub.args[1]
                    if receiver in seen or receiver == NULL:
                        continue
                    seen.add(receiver)
                    checks.append(gc.Assert(b.Neq(receiver, NULL), "NullCheck"))
        return checks

    # -- entry / exit --------------------------------------------------------------

    def _entry(self) -> list[ExtendedCommand]:
        commands: list[ExtendedCommand] = []
        for invariant in self.cls.invariants:
            commands.append(gc.Assume(self.expand(invariant.formula), invariant.name))
        commands.append(gc.Assume(self.expand(self.method.contract.requires), "Pre"))
        # Snapshot the entire concrete + ghost state so ``old`` can refer to it.
        for state_var in self.cls.state:
            if state_var.kind == "spec":
                continue
            snapshot = self._old_var(state_var.var)
            commands.append(gc.Assume(b.Eq(snapshot, state_var.var), "OldSnapshot"))
        return commands

    def _exit_asserts(self) -> list[tuple[str, Term]]:
        obligations: list[tuple[str, Term]] = [
            ("Post", self.eliminate_old(self.method.contract.ensures))
        ]
        if self.check_invariants and self.method.is_public:
            for invariant in self.cls.invariants:
                obligations.append(
                    (f"{invariant.name}Restored", self.expand(invariant.formula))
                )
        return obligations

    def _exit_commands(self) -> list[ExtendedCommand]:
        return [gc.Assert(formula, label) for label, formula in self._exit_asserts()]

    # -- statements -----------------------------------------------------------------

    def _lower_block(self, statements: tuple[Stmt, ...]) -> ExtendedCommand:
        return eseq(*(self._lower_stmt(stmt) for stmt in statements))

    def _lower_stmt(self, stmt: Stmt) -> ExtendedCommand:
        if isinstance(stmt, (Assign, GhostAssign)):
            expr = self.eliminate_old(stmt.expr)
            return eseq(*self._runtime_checks(expr), gc.Assign(stmt.target, expr))
        if isinstance(stmt, FieldWrite):
            if stmt.field_name not in self.field_maps:
                raise LoweringError(f"{stmt.field_name} is not a reference field")
            field_var = self._state_var(stmt.field_name)
            obj = self.eliminate_old(stmt.obj)
            value = self.eliminate_old(stmt.value)
            checks = self._runtime_checks(obj, value)
            checks.append(gc.Assert(b.Neq(obj, NULL), "NullCheck"))
            return eseq(
                *checks,
                gc.Assign(field_var, b.Store(field_var, obj, value)),
            )
        if isinstance(stmt, ArrayWrite):
            if stmt.array_name not in self.array_maps:
                raise LoweringError(f"{stmt.array_name} is not an array variable")
            array_var = self._state_var(stmt.array_name)
            index = self.eliminate_old(stmt.index)
            value = self.eliminate_old(stmt.value)
            return eseq(
                *self._runtime_checks(index, value),
                gc.Assign(array_var, b.Store(array_var, index, value)),
            )
        if isinstance(stmt, If):
            cond = self.eliminate_old(stmt.cond)
            return eseq(
                *self._runtime_checks(cond),
                gc.If(
                    cond,
                    self._lower_block(stmt.then_branch),
                    self._lower_block(stmt.else_branch),
                ),
            )
        if isinstance(stmt, While):
            cond = self.expand(stmt.cond)
            invariant = self.eliminate_old(stmt.invariant)
            return gc.Loop(
                invariant=invariant,
                before=gc.Skip(),
                cond=cond,
                body=self._lower_block(stmt.body),
                invariant_label=stmt.invariant_label,
            )
        if isinstance(stmt, Return):
            commands: list[ExtendedCommand] = []
            if stmt.expr is not None:
                if self.method.return_var is None:
                    raise LoweringError(
                        f"{self.method.name} returns a value but declares none"
                    )
                expr = self.eliminate_old(stmt.expr)
                commands.extend(self._runtime_checks(expr))
                commands.append(gc.Assign(self.method.return_var, expr))
            commands.extend(self._exit_commands())
            commands.append(gc.Assume(b.Bool(False), "ReturnCut"))
            return eseq(*commands)
        if isinstance(stmt, Call):
            return self._lower_call(stmt)
        if isinstance(stmt, AssertStmt):
            return gc.Assert(
                self.eliminate_old(stmt.formula), stmt.label, stmt.from_hints
            )
        if isinstance(stmt, AssumeStmt):
            return gc.Assume(self.eliminate_old(stmt.formula), stmt.label)
        if isinstance(stmt, ProofStmt):
            return self._expand_proof(stmt.construct)
        raise LoweringError(f"unknown statement {type(stmt)!r}")

    # -- proof constructs -------------------------------------------------------------

    def _expand_proof(self, construct) -> ExtendedCommand:
        """Expand vardefs and ``old`` inside the formulas of a proof construct."""
        from dataclasses import fields as dc_fields, replace

        updates = {}
        for fld in dc_fields(construct):
            value = getattr(construct, fld.name)
            if isinstance(value, Term):
                updates[fld.name] = self.eliminate_old(value)
            elif isinstance(value, tuple) and value and all(
                isinstance(item, Term) for item in value
            ):
                if fld.name in ("variables",) or all(
                    isinstance(item, Var) for item in value
                ) and fld.name == "variables":
                    continue
                updates[fld.name] = tuple(self.eliminate_old(item) for item in value)
            elif isinstance(value, ExtendedCommand):
                updates[fld.name] = self._expand_command(value)
        return replace(construct, **updates) if updates else construct

    def _expand_command(self, command: ExtendedCommand) -> ExtendedCommand:
        from ..gcl.extended import ProofConstruct

        if isinstance(command, ProofConstruct):
            return self._expand_proof(command)
        if isinstance(command, gc.Seq):
            return eseq(*(self._expand_command(sub) for sub in command.commands))
        if isinstance(command, gc.Assume):
            return gc.Assume(self.eliminate_old(command.formula), command.label)
        if isinstance(command, gc.Assert):
            return gc.Assert(
                self.eliminate_old(command.formula), command.label, command.from_hints
            )
        if isinstance(command, gc.Skip):
            return command
        raise LoweringError(
            f"unsupported command {type(command)!r} inside a proof construct"
        )

    # -- calls -----------------------------------------------------------------------

    def _lower_call(self, stmt: Call) -> ExtendedCommand:
        callee = self.cls.method(stmt.method_name)
        if len(stmt.args) != len(callee.params):
            raise LoweringError(
                f"call to {stmt.method_name} passes {len(stmt.args)} arguments, "
                f"expected {len(callee.params)}"
            )
        binding: dict[Var, Term] = {
            param: self.expand(arg) for param, arg in zip(callee.params, stmt.args)
        }
        commands: list[ExtendedCommand] = []
        commands.extend(self._runtime_checks(*binding.values()))
        requires = substitute(self.expand(callee.contract.requires), binding)
        commands.append(gc.Assert(requires, f"{callee.name}_Pre"))
        # Pre-call snapshot for the callee's ``old``.
        call_old: dict[Var, Term] = {}
        modified_vars = [
            self._state_var(name)
            for name in callee.contract.modifies
            if self.cls.has_state_var(name)
        ]
        snapshot_commands: list[ExtendedCommand] = []
        for var in modified_vars:
            snapshot = Var(
                self._fresh_name(f"{var.name}_before_{callee.name}"), var.sort
            )
            call_old[var] = snapshot
            snapshot_commands.append(gc.Assume(b.Eq(snapshot, var), "CallSnapshot"))
        commands.extend(snapshot_commands)
        if modified_vars:
            commands.append(gc.Havoc(tuple(modified_vars)))
        # Build the assumed postcondition.
        result_binding = dict(binding)
        if callee.return_var is not None:
            if stmt.target is not None:
                result_binding[callee.return_var] = stmt.target
            else:
                fresh_result = Var(
                    self._fresh_name(f"{callee.name}_result"), callee.return_var.sort
                )
                result_binding[callee.return_var] = fresh_result
        if stmt.target is not None and callee.return_var is None:
            raise LoweringError(f"{callee.name} does not return a value")
        if stmt.target is not None:
            commands.append(gc.Havoc((stmt.target,)))
        ensures = self._callee_ensures(callee, result_binding, call_old)
        commands.append(gc.Assume(ensures, f"{callee.name}_Post"))
        if callee.is_public:
            for invariant in self.cls.invariants:
                commands.append(
                    gc.Assume(self.expand(invariant.formula), invariant.name)
                )
        return eseq(*commands)

    def _callee_ensures(
        self,
        callee: Method,
        binding: dict[Var, Term],
        call_old: dict[Var, Term],
    ) -> Term:
        expanded = self.expand(callee.contract.ensures)
        eliminated = self._eliminate_old_with(expanded, call_old)
        return substitute(eliminated, binding)

    def _eliminate_old_with(self, term: Term, snapshot: dict[Var, Term]) -> Term:
        if isinstance(term, App) and term.op == "old":
            inner = self._eliminate_old_with(term.args[0], snapshot)
            mapping = {
                var: snapshot[var]
                for var in free_vars(inner)
                if var in snapshot
            }
            return substitute(inner, mapping) if mapping else inner
        if isinstance(term, App):
            return term.rebuild(
                tuple(self._eliminate_old_with(a, snapshot) for a in term.args)
            )
        if isinstance(term, Binder):
            return term.rebuild((self._eliminate_old_with(term.body, snapshot),))
        return term

    # -- driver -----------------------------------------------------------------------

    def run(self) -> MethodLowering:
        commands = self._entry()
        commands.append(self._lower_block(self.method.body))
        commands.extend(self._exit_commands())
        command = eseq(*commands)
        return MethodLowering(
            command=command,
            exit_asserts=tuple(self._exit_asserts()),
            old_snapshot=dict(self.old_snapshot),
        )
