"""The surface program model: classes, state, contracts and statements.

The reproduction verifies data-structure *modules*: a class is modelled as a
set of global state variables (one module instance, the common style for
verifying a container implementation) together with methods.  State
variables come in three kinds, mirroring Jahob:

* ``concrete``  -- the Java fields of the implementation.  Reference fields
  of the nodes (``next``, ``prev``, ``key`` ...) are map-valued variables
  ``obj => T`` exactly as Jahob encodes instance fields; scalar fields of
  the container itself (``size``, ``first`` ...) are plain variables, and
  Java arrays are map-valued variables ``int => T``.
* ``spec``      -- public specification variables with a ``vardefs``
  abstraction function (e.g. ``content == {(i, n). ...}``).
* ``ghost``     -- specification variables updated explicitly by ghost
  assignments in method bodies.

Method bodies are ordinary imperative statements (assignment, field/array
update, conditionals, loops with invariants, calls, returns) plus embedded
specification statements: ghost assignments, assert/assume and every
integrated proof language construct of Figure 3 (wrapped in
:class:`ProofStmt`).

The paper presents these annotations as ``/*: ... */`` comments in Java
source; here they are nodes of the same statement list, which is the same
information in abstract-syntax form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gcl.extended import ProofConstruct
from ..logic.sorts import Sort
from ..logic.terms import TRUE, Term, Var

__all__ = [
    "StateVar",
    "Invariant",
    "MethodContract",
    "Method",
    "ClassModel",
    "Stmt",
    "Assign",
    "FieldWrite",
    "ArrayWrite",
    "GhostAssign",
    "If",
    "While",
    "Return",
    "Call",
    "AssertStmt",
    "AssumeStmt",
    "ProofStmt",
    "count_statements",
    "count_proof_constructs",
]


# ---------------------------------------------------------------------------
# Class-level declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StateVar:
    """A state variable of the module (concrete field, spec var or ghost)."""

    name: str
    sort: Sort
    kind: str = "concrete"  # "concrete" | "spec" | "ghost"
    definition: Term | None = None  # vardefs abstraction function (spec vars)
    is_public: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("concrete", "spec", "ghost"):
            raise ValueError(f"unknown state variable kind {self.kind!r}")
        if self.kind == "spec" and self.definition is None:
            raise ValueError(f"spec variable {self.name} needs a vardefs definition")

    @property
    def var(self) -> Var:
        return Var(self.name, self.sort)


@dataclass(frozen=True)
class Invariant:
    """A named data-structure (class) invariant."""

    name: str
    formula: Term
    is_public: bool = False


@dataclass(frozen=True)
class MethodContract:
    """requires / modifies / ensures."""

    requires: Term = TRUE
    modifies: tuple[str, ...] = ()
    ensures: Term = TRUE

    def __post_init__(self) -> None:
        object.__setattr__(self, "modifies", tuple(self.modifies))


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class of surface statements."""

    __slots__ = ()

    def substatements(self) -> tuple["Stmt", ...]:
        return ()


@dataclass(frozen=True)
class Assign(Stmt):
    """``x = expr;`` for a local variable or a scalar state variable."""

    target: Var
    expr: Term


@dataclass(frozen=True)
class FieldWrite(Stmt):
    """``obj.field = value;`` -- a heap field update (function update)."""

    field_name: str
    obj: Term
    value: Term


@dataclass(frozen=True)
class ArrayWrite(Stmt):
    """``array[index] = value;`` on an array-valued state variable."""

    array_name: str
    index: Term
    value: Term


@dataclass(frozen=True)
class GhostAssign(Stmt):
    """``//: ghostvar := expr`` -- specification-only state update."""

    target: Var
    expr: Term


@dataclass(frozen=True)
class If(Stmt):
    """``if (cond) { ... } else { ... }``."""

    cond: Term
    then_branch: tuple[Stmt, ...] = ()
    else_branch: tuple[Stmt, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "then_branch", tuple(self.then_branch))
        object.__setattr__(self, "else_branch", tuple(self.else_branch))

    def substatements(self) -> tuple[Stmt, ...]:
        return self.then_branch + self.else_branch


@dataclass(frozen=True)
class While(Stmt):
    """``while /*: inv I */ (cond) { ... }``."""

    cond: Term
    invariant: Term
    body: tuple[Stmt, ...] = ()
    invariant_label: str = "LoopInv"

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))

    def substatements(self) -> tuple[Stmt, ...]:
        return self.body


@dataclass(frozen=True)
class Return(Stmt):
    """``return expr;`` (``expr`` may be None for void methods)."""

    expr: Term | None = None


@dataclass(frozen=True)
class Call(Stmt):
    """``target = this.method(args);`` -- a call to a sibling method,
    verified modularly against the callee's contract."""

    method_name: str
    args: tuple[Term, ...] = ()
    target: Var | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))


@dataclass(frozen=True)
class AssertStmt(Stmt):
    """``//: assert l: F from h`` -- a bare specification assertion."""

    formula: Term
    label: str = "Assert"
    from_hints: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "from_hints", tuple(self.from_hints))


@dataclass(frozen=True)
class AssumeStmt(Stmt):
    """``//: assume l: F`` -- used by the translation machinery and tests;
    developer-supplied assumes are unsound in general (Section 3)."""

    formula: Term
    label: str = "Assume"


@dataclass(frozen=True)
class ProofStmt(Stmt):
    """A statement wrapping one integrated proof language construct."""

    construct: ProofConstruct


# ---------------------------------------------------------------------------
# Methods and classes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Method:
    """A method: parameters, contract and body."""

    name: str
    params: tuple[Var, ...] = ()
    return_var: Var | None = None
    contract: MethodContract = field(default_factory=MethodContract)
    body: tuple[Stmt, ...] = ()
    is_public: bool = True
    locals: tuple[Var, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(self.params))
        object.__setattr__(self, "body", tuple(self.body))
        object.__setattr__(self, "locals", tuple(self.locals))


@dataclass(frozen=True)
class ClassModel:
    """A data-structure module: state variables, invariants and methods."""

    name: str
    state: tuple[StateVar, ...] = ()
    invariants: tuple[Invariant, ...] = ()
    methods: tuple[Method, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "state", tuple(self.state))
        object.__setattr__(self, "invariants", tuple(self.invariants))
        object.__setattr__(self, "methods", tuple(self.methods))

    # -- lookup helpers ------------------------------------------------------------

    def state_var(self, name: str) -> StateVar:
        for var in self.state:
            if var.name == name:
                return var
        raise KeyError(f"{self.name} has no state variable {name!r}")

    def has_state_var(self, name: str) -> bool:
        return any(var.name == name for var in self.state)

    def method(self, name: str) -> Method:
        for method in self.methods:
            if method.name == name:
                return method
        raise KeyError(f"{self.name} has no method {name!r}")

    @property
    def spec_vars(self) -> tuple[StateVar, ...]:
        return tuple(v for v in self.state if v.kind == "spec")

    @property
    def ghost_vars(self) -> tuple[StateVar, ...]:
        return tuple(v for v in self.state if v.kind == "ghost")

    @property
    def concrete_vars(self) -> tuple[StateVar, ...]:
        return tuple(v for v in self.state if v.kind == "concrete")


# ---------------------------------------------------------------------------
# Statistics helpers (Table 1 columns)
# ---------------------------------------------------------------------------


def _walk(statements: tuple[Stmt, ...]):
    for statement in statements:
        yield statement
        yield from _walk(statement.substatements())


def count_statements(method: Method) -> int:
    """Number of executable (Java) statements in a method body.

    Specification-only statements (ghost assignments, asserts, assumes and
    proof constructs) are not counted, matching the paper's "Java
    Statements" column.
    """
    executable = 0
    for statement in _walk(method.body):
        if isinstance(statement, (GhostAssign, AssertStmt, AssumeStmt, ProofStmt)):
            continue
        executable += 1
    return executable


def count_proof_constructs(method: Method) -> dict[str, int]:
    """Count of each proof construct kind used in a method body, plus the
    number of ``note`` statements carrying a ``from`` clause."""
    from ..proofs.constructs import construct_name

    counts: dict[str, int] = {}
    for statement in _walk(method.body):
        if isinstance(statement, ProofStmt):
            _count_construct(statement.construct, counts)
    return counts


def _count_construct(construct, counts: dict[str, int]) -> None:
    from ..proofs.constructs import Note, construct_name

    name = construct_name(construct)
    counts[name] = counts.get(name, 0) + 1
    if isinstance(construct, Note) and construct.from_hints:
        counts["note_with_from"] = counts.get("note_with_from", 0) + 1
    for child in construct.children():
        if isinstance(child, ProofConstruct):
            _count_construct(child, counts)
        else:
            _count_nested_commands(child, counts)


def _count_nested_commands(command, counts: dict[str, int]) -> None:
    from ..gcl.extended import ExtendedCommand

    if isinstance(command, ProofConstruct):
        _count_construct(command, counts)
        return
    if isinstance(command, ExtendedCommand):
        for child in command.children():
            _count_nested_commands(child, counts)
