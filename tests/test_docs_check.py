"""Tier-1 docs check: the README quickstarts must run, links must resolve.

Three guards against documentation drift:

* every README code block marked ``<!-- docs-check: execute -->`` is
  executed verbatim, command by command (a renamed flag or subcommand
  breaks this test, not a user's first contact with the repo).  Blocks
  may set ``VAR=value`` environment prefixes, and a trailing ``&``
  backgrounds a long-running command (the daemon of the HTTP
  quickstart) exactly like a shell would;
* every CLI option and subcommand the argument parser actually defines
  must be mentioned in the README's CLI reference;
* every relative markdown link in ``README.md`` and ``docs/*.md`` must
  point at an existing file.
"""

from __future__ import annotations

import os
import re
import shlex
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"
DOCS = REPO_ROOT / "docs"

_EXECUTE_MARKER = "<!-- docs-check: execute -->"

_ENV_PREFIX = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*=")


def quickstart_blocks() -> list[list[str]]:
    """The ``$``-prefixed commands of every marked README block, in order."""
    text = README.read_text(encoding="utf-8")
    assert _EXECUTE_MARKER in text, "README lost its executable quickstart blocks"
    blocks = []
    for part in text.split(_EXECUTE_MARKER)[1:]:
        match = re.search(r"```console\n(.*?)```", part, re.DOTALL)
        assert match, "no ```console block after a docs-check marker"
        commands = []
        for line in match.group(1).splitlines():
            line = line.strip()
            if line.startswith("$ "):
                commands.append(line[2:].split("  #", 1)[0].strip())
        assert commands, "a marked quickstart block contains no commands"
        blocks.append(commands)
    return blocks


def quickstart_commands() -> list[str]:
    """The first (original) quickstart block."""
    return quickstart_blocks()[0]


def _prepare(command: str) -> tuple[list[str], dict]:
    """Split one documented command into ``(argv, env)``.

    Leading ``VAR=value`` words become environment entries, exactly as a
    shell would treat them.  The remaining command must be the generic
    CLI spelling; the test supplies the interpreter actually running the
    suite and ``PYTHONPATH=src``.
    """
    argv = shlex.split(command)
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    while argv and _ENV_PREFIX.match(argv[0]):
        key, _, value = argv.pop(0).partition("=")
        env[key] = value
    assert argv[:3] == ["python", "-m", "repro.verifier.cli"], command
    argv[0] = sys.executable
    return argv, env


def run_cli(command: str) -> subprocess.CompletedProcess:
    argv, env = _prepare(command)
    return subprocess.run(
        argv, cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=300
    )


def run_block(commands: list[str]) -> None:
    """Execute one quickstart block, shell-style: ``&`` backgrounds.

    Backgrounded processes must exit on their own by the end of the
    block (the HTTP quickstart ends with a ``shutdown`` command); one
    still running afterwards means the documented sequence does not
    actually stop what it starts.
    """
    background: list[tuple[str, subprocess.Popen]] = []
    try:
        for command in commands:
            if command.endswith("&"):
                argv, env = _prepare(command.rstrip("&").strip())
                background.append(
                    (
                        command,
                        subprocess.Popen(
                            argv,
                            cwd=REPO_ROOT,
                            env=env,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE,
                            text=True,
                        ),
                    )
                )
                continue
            result = run_cli(command)
            assert result.returncode == 0, (
                f"README quickstart command failed: {command}\n"
                f"stdout: {result.stdout}\nstderr: {result.stderr}"
            )
        for command, process in background:
            try:
                process.wait(timeout=60)
            except subprocess.TimeoutExpired:
                raise AssertionError(
                    f"backgrounded quickstart command still running after "
                    f"the block finished: {command}"
                ) from None
    finally:
        for _, process in background:
            if process.poll() is None:
                process.kill()
            process.communicate(timeout=30)


def test_readme_quickstart_commands_execute():
    commands = quickstart_commands()
    # The quickstart must exercise --help and a fast-class verify.
    assert any("--help" in command for command in commands)
    assert any("verify" in command for command in commands)
    run_block(commands)
    # Spot-check the advertised outputs.
    listing = run_cli("python -m repro.verifier.cli list")
    assert "Linked List" in listing.stdout


def test_readme_watch_quickstart_executes():
    """The 'Watch mode' block: a --watch subscription that terminates on
    its own (--watch-max caps the event budget at the baseline run)."""
    blocks = [
        block
        for block in quickstart_blocks()
        if any("--watch" in command for command in block)
    ]
    assert blocks, "README lost its watch-mode quickstart block"
    (commands,) = blocks
    assert all("--watch-max" in c for c in commands if "--watch" in c), (
        "the executed watch command must self-terminate via --watch-max"
    )
    run_block(commands)


def test_readme_http_quickstart_executes():
    """The 'Serve it over HTTP' block: daemon in the background, loadgen
    and --connect against it, shutdown at the end."""
    blocks = [
        block
        for block in quickstart_blocks()
        if any("loadgen" in command for command in block)
    ]
    assert blocks, "README lost its HTTP quickstart block"
    (commands,) = blocks
    assert any("serve" in command and command.endswith("&") for command in commands)
    assert "shutdown" in commands[-1], "the block must stop what it starts"
    run_block(commands)


def test_readme_documents_every_cli_flag():
    from repro.verifier.cli import _build_parser

    text = README.read_text(encoding="utf-8")
    parser = _build_parser()
    for action in parser._actions:
        for option in action.option_strings:
            if option in ("-h",):
                continue
            assert option in text, f"README does not document {option}"
        if action.choices and not action.option_strings:
            # The subparsers action: every subcommand must be documented.
            for name, subparser in action.choices.items():
                assert f"`{name}`" in text or f"`{name} " in text or (
                    f" {name}`" in text
                ), f"README does not document the {name!r} subcommand"
                for sub_action in subparser._actions:
                    for option in sub_action.option_strings:
                        if option == "-h":
                            continue
                        assert option in text, (
                            f"README does not document {name} {option}"
                        )


_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files() -> list[Path]:
    return [README, *sorted(DOCS.glob("*.md"))]


@pytest.mark.parametrize("path", markdown_files(), ids=lambda p: p.name)
def test_no_dead_relative_links(path: Path):
    text = path.read_text(encoding="utf-8")
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        assert resolved.exists(), f"{path.name}: dead link {target}"


def test_docs_mention_current_entry_points():
    """The architecture/cache docs must track the modules they describe."""
    architecture = (DOCS / "architecture.md").read_text(encoding="utf-8")
    for module in ("engine.py", "parallel.py", "scheduler.py", "daemon.py", "cli.py"):
        assert module in architecture, f"architecture.md lost {module}"
    cache_format = (DOCS / "cache-format.md").read_text(encoding="utf-8")
    from repro.provers.cache import CACHE_FORMAT_VERSION, FINGERPRINT_VERSION

    assert f'"format": {CACHE_FORMAT_VERSION}' in cache_format, (
        "cache-format.md shows a stale CACHE_FORMAT_VERSION"
    )
    assert f'"fingerprint_version": {FINGERPRINT_VERSION}' in cache_format, (
        "cache-format.md shows a stale FINGERPRINT_VERSION"
    )
