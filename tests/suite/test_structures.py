"""The benchmark suite: construction, statistics and verification.

Full verification of every structure is exercised by the benchmarks
(``benchmarks/bench_table1.py`` / ``bench_table2.py``); the tests here keep
the default ``pytest`` run fast by fully verifying the quick structures and
only spot-checking representative methods of the heavier ones.
"""

import pytest

from repro.suite import STRUCTURE_ORDER, all_structures, structure_by_name
from repro.suite.array_list import build_array_list
from repro.suite.linked_structures import build_circular_list, build_linked_list
from repro.verifier import VerificationEngine, class_statistics


class TestCatalogue:
    def test_all_eight_structures_present(self):
        structures = all_structures()
        assert len(structures) == 8
        assert [cls.name for cls in structures] == list(STRUCTURE_ORDER)

    def test_lookup_by_name(self):
        assert structure_by_name("linked list").name == "Linked List"
        assert structure_by_name("HashTable").name == "Hash Table"
        with pytest.raises(KeyError):
            structure_by_name("skip list")

    def test_every_structure_produces_sequents(self):
        engine = VerificationEngine()
        for cls in all_structures():
            total = sum(
                len(engine.method_sequents(cls, method)) for method in cls.methods
            )
            assert total > 0, cls.name

    def test_construct_usage_shape_matches_paper(self):
        """Complex structures use the proof language, simple ones barely do."""
        by_name = {cls.name: class_statistics(cls) for cls in all_structures()}
        assert by_name["Linked List"].total_proof_statements == 0
        assert by_name["Cursor List"].total_proof_statements == 0
        assert by_name["Hash Table"].total_proof_statements >= 5
        assert by_name["Hash Table"].notes_with_from >= 5
        assert by_name["Priority Queue"].construct("induct") == 1
        assert by_name["Array List"].construct("witness") == 1

    def test_spec_variable_counts(self):
        for cls in all_structures():
            stats = class_statistics(cls)
            assert stats.spec_vars >= 1
            assert stats.invariants >= 1


class TestVerification:
    def test_linked_list_verifies_fully(self):
        engine = VerificationEngine()
        report = engine.verify_class(build_linked_list())
        assert report.verified, [
            (m.method_name, o.sequent.label)
            for m in report.methods
            for o in m.failed_sequents
        ]
        # Both the SMT-lite prover and the set reasoner contribute.
        assert set(report.provers_used) >= {"smt", "sets"}

    def test_circular_list_verifies_fully(self):
        engine = VerificationEngine()
        report = engine.verify_class(build_circular_list())
        assert report.verified

    def test_array_list_witness_method(self):
        array_list = build_array_list()
        engine = VerificationEngine()
        report = engine.verify_method(array_list, array_list.method("whereIs"))
        assert report.verified

    def test_array_list_get(self):
        array_list = build_array_list()
        engine = VerificationEngine()
        report = engine.verify_method(array_list, array_list.method("get"))
        assert report.verified

    def test_stripping_proofs_never_increases_proved_sequents(self):
        engine = VerificationEngine()
        structure = build_circular_list()
        with_proofs = engine.verify_class(structure)
        without = engine.verify_class(structure, strip_proofs=True)
        assert with_proofs.sequents_proved >= without.sequents_proved
