"""The example programs are live verifier inputs, not just scripts.

Every ``examples/*.py`` file must verify through the real ingestion path
-- ``jahob-py verify FILE`` -- exactly as a user would run it (the CLI's
``main`` is called in-process with the file path as the operand).  The
two richest examples keep their script-level smoke tests on top, since
their printed narratives (prover cooperation, soundness sweep) are part
of what they demonstrate.
"""

import pathlib
import sys

import pytest

from repro.verifier.cli import main as cli_main

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[path.stem for path in EXAMPLE_FILES]
)
def test_example_verifies_through_the_file_path(path, capsys):
    exit_code = cli_main(["--timeout-scale", "0.4", "verify", str(path)])
    output = capsys.readouterr().out
    assert exit_code == 0, output
    summary = output.splitlines()[-1]
    assert summary.startswith(str(path)) and "class models verified" in summary
    assert "FAILED" not in output


@pytest.fixture()
def _examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


def test_soundness_example_checks_every_construct(_examples_on_path, capsys):
    import soundness_check

    soundness_check.main()
    output = capsys.readouterr().out
    assert "all constructs verified" in output
    assert "NOT PROVED" not in output


def test_example_scripts_exist_and_are_documented():
    scripts = sorted(p.name for p in EXAMPLE_FILES)
    assert {
        "quickstart.py",
        "arraylist_remove.py",
        "multi_prover_cooperation.py",
        "soundness_check.py",
    } <= set(scripts)
    for script in scripts:
        text = (EXAMPLES_DIR / script).read_text()
        assert text.lstrip().startswith('"""'), f"{script} lacks a docstring"
