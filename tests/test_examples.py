"""Smoke tests: the example scripts run and report success."""

import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


def test_quickstart_verifies_counter(capsys):
    import quickstart

    quickstart.main()
    output = capsys.readouterr().out
    assert "increment" in output and "FAILED" not in output


def test_soundness_example_checks_every_construct(capsys):
    import soundness_check

    soundness_check.main()
    output = capsys.readouterr().out
    assert "all constructs verified" in output
    assert "NOT PROVED" not in output


def test_example_scripts_exist_and_are_documented():
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert {
        "quickstart.py",
        "arraylist_remove.py",
        "multi_prover_cooperation.py",
        "soundness_check.py",
    } <= set(scripts)
    for script in scripts:
        text = (EXAMPLES_DIR / script).read_text()
        assert text.lstrip().startswith('"""'), f"{script} lacks a docstring"
