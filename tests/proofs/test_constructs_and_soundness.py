"""The integrated proof language: translation (Figure 8) and soundness.

The soundness test mechanically reproduces Appendix A: for every construct,
``wlp([[p]], H) --> H`` is discharged by the prover portfolio, and
additionally cross-checked against the finite-model evaluator.
"""

import pytest

from repro.gcl import SAssert, SAssume, SChoice, SSeq, Skip, desugar
from repro.gcl.wlp import wlp
from repro.logic import INT, Var
from repro.logic.evaluator import all_interpretations, holds
from repro.logic.parser import parse_formula
from repro.logic.terms import free_vars
from repro.proofs import (
    Assuming,
    ByContradiction,
    Cases,
    Contradiction,
    Fix,
    Induct,
    Instantiate,
    Localize,
    Mp,
    Note,
    PickAny,
    PickWitness,
    ProofTranslationError,
    ShowedCase,
    Witness,
    construct_name,
    soundness_obligation,
)
from repro.proofs.soundness import SoundnessChecker

ENV = {"x": INT, "y": INT, "n": INT}
F = lambda text: parse_formula(text, ENV)  # noqa: E731
n = Var("n", INT)


def all_constructs():
    return [
        Note("L", F("x <= x")),
        Note("L", F("x <= x + 1"), ("Pre", "Inv")),
        Localize(Note("inner", F("x <= x + 1")), "L", F("x <= x + 2")),
        Mp("L", F("x <= y"), F("x <= y + 1")),
        Assuming("h", F("x <= y"), Skip(), "c", F("x <= y + 1")),
        Cases((F("x <= y"), F("y <= x")), "L", F("x <= y | y <= x")),
        ShowedCase(1, "L", (F("x <= x"), F("x < 0"))),
        ByContradiction("L", F("x <= x"), Skip()),
        Contradiction("L", F("x = x")),
        Instantiate("L", F("ALL k : int. k <= k"), (Var("x", INT),)),
        Witness((Var("x", INT),), "L", F("EX k : int. k <= x")),
        PickWitness((Var("w", INT),), "h", F("w = w"), Skip(), "c", F("x = x")),
        PickAny((Var("z", INT),), Skip(), "L", F("z <= z")),
        Induct("L", F("0 <= n"), n, Skip()),
        Fix((Var("z", INT),), F("z = x"), Skip(), "L", F("z = x")),
    ]


class TestTranslation:
    def test_note_is_assert_then_assume(self):
        command = desugar(Note("L", F("x <= x"), ("Pre",)))
        assert isinstance(command, SSeq)
        first, second = command.commands
        assert isinstance(first, SAssert) and first.from_hints == ("Pre",)
        assert isinstance(second, SAssume) and second.label == "L"

    def test_local_base_pattern(self):
        command = desugar(Assuming("h", F("x <= y"), Skip(), "c", F("x <= y + 1")))
        assert isinstance(command, SSeq)
        assert isinstance(command.commands[0], SChoice)
        assert isinstance(command.commands[-1], SAssume)

    def test_cases_emits_coverage_and_per_case_obligations(self):
        command = desugar(Cases((F("x <= y"), F("y <= x")), "L", F("x <= y | y <= x")))
        asserts = [c for c in command.commands if isinstance(c, SAssert)]
        assert len(asserts) == 3  # coverage + 2 cases

    def test_instantiate_requires_universal(self):
        with pytest.raises(ProofTranslationError):
            desugar(Instantiate("L", F("x <= y"), (Var("x", INT),)))

    def test_witness_arity_checked(self):
        with pytest.raises(ProofTranslationError):
            desugar(Witness((), "L", F("EX k : int. k <= x")))

    def test_pickwitness_freshness_condition(self):
        w = Var("w", INT)
        with pytest.raises(ProofTranslationError):
            desugar(PickWitness((w,), "h", F("w = w"), Skip(), "c",
                                parse_formula("w <= w", {"w": INT})))

    def test_fix_rejects_modified_fixed_variables(self):
        from repro.gcl.extended import Assign

        z = Var("z", INT)
        with pytest.raises(ProofTranslationError):
            desugar(Fix((z,), F("z = x"), Assign(z, F("x = x")), "L", F("x = x")))

    def test_construct_names(self):
        names = {construct_name(c) for c in all_constructs()}
        assert {"note", "witness", "pickAny", "induct", "fix"} <= names


class TestSoundness:
    @pytest.fixture(scope="class")
    def checker(self):
        return SoundnessChecker()

    @pytest.mark.parametrize(
        "construct", all_constructs(), ids=lambda c: construct_name(c)
    )
    def test_every_construct_is_stronger_than_skip(self, checker, construct):
        post = F("x <= y | y <= x")
        report = checker.check(construct, post)
        assert report.proved, f"{report.construct}: {report.obligation}"

    @pytest.mark.parametrize(
        "construct",
        [
            c
            for c in all_constructs()
            if construct_name(c)
            in ("note", "mp", "witness", "cases", "contradiction")
        ],
        ids=lambda c: construct_name(c),
    )
    def test_soundness_obligation_valid_in_finite_models(self, construct):
        post = F("x <= y | y <= x")
        obligation = soundness_obligation(construct, post)
        free = sorted(free_vars(obligation), key=lambda v: v.name)
        for interp in all_interpretations(
            free, int_values=(-1, 0, 1), int_range=(-1, 1)
        ):
            assert holds(obligation, interp)

    def test_wlp_of_note_adds_lemma(self):
        command = desugar(Note("L", F("x <= x + 1")))
        post = F("x <= x + 1")
        obligation = wlp(command, post)
        for interp in all_interpretations(sorted(free_vars(obligation), key=str),
                                          int_values=(-2, 0, 2), int_range=(-2, 2)):
            assert holds(obligation, interp)
