"""Tests for the term AST and the smart constructors."""

import pytest

from repro.logic import (
    BOOL,
    INT,
    OBJ,
    And,
    App,
    Eq,
    ForAll,
    Implies,
    Int,
    IntVar,
    Le,
    Lt,
    Member,
    Not,
    ObjVar,
    Or,
    Plus,
    Select,
    SetEnum,
    SortError,
    Store,
    Tuple,
    Var,
    free_var_names,
    free_vars,
    map_of,
    set_of,
)
from repro.logic.terms import TRUE, FALSE, contains_quantifier, subterms, term_size

x, y = IntVar("x"), IntVar("y")
a, b = ObjVar("a"), ObjVar("b")
nodes = Var("nodes", set_of(OBJ))
next_field = Var("next", map_of(OBJ, OBJ))


class TestConstruction:
    def test_var_sorts(self):
        assert x.sort == INT and a.sort == OBJ

    def test_formula_flag(self):
        assert Lt(x, y).is_formula
        assert not Plus(x, y).is_formula

    def test_and_flattens(self):
        formula = And(Lt(x, y), And(Le(y, x), Eq(x, y)))
        assert isinstance(formula, App) and formula.op == "and"
        assert len(formula.args) == 3

    def test_and_units(self):
        assert And() == TRUE
        assert And(TRUE, Lt(x, y)) == Lt(x, y)
        assert And(FALSE, Lt(x, y)) == FALSE

    def test_or_units(self):
        assert Or() == FALSE
        assert Or(TRUE, Lt(x, y)) == TRUE
        assert Or(FALSE, Lt(x, y)) == Lt(x, y)

    def test_not_involution(self):
        assert Not(Not(Lt(x, y))) == Lt(x, y)
        assert Not(TRUE) == FALSE

    def test_implies_simplification(self):
        assert Implies(TRUE, Lt(x, y)) == Lt(x, y)
        assert Implies(FALSE, Lt(x, y)) == TRUE

    def test_eq_same_term(self):
        assert Eq(x, x) == TRUE

    def test_eq_sort_mismatch(self):
        with pytest.raises(SortError):
            Eq(x, a)

    def test_select_store_sorts(self):
        read = Select(next_field, a)
        assert read.sort == OBJ
        updated = Store(next_field, a, b)
        assert updated.sort == next_field.sort
        with pytest.raises(SortError):
            Select(next_field, x)

    def test_member_sort_check(self):
        assert Member(a, nodes).sort == BOOL
        with pytest.raises(SortError):
            Member(x, nodes)

    def test_set_literal(self):
        literal = SetEnum(a, b)
        assert literal.sort == set_of(OBJ)
        with pytest.raises(SortError):
            SetEnum(a, x)

    def test_tuple_sort(self):
        pair = Tuple(Int(1), a)
        assert pair.sort.items == (INT, OBJ)

    def test_plus_flattens_and_identity(self):
        assert Plus(x) == x
        total = Plus(x, Plus(y, Int(1)))
        assert total.op == "add" and len(total.args) == 3


class TestInspection:
    def test_free_vars(self):
        formula = ForAll(x, Implies(Lt(x, y), Member(a, nodes)))
        names = free_var_names(formula)
        assert names == {"y", "a", "nodes"}

    def test_free_vars_shadowing(self):
        formula = ForAll(x, Lt(x, Int(3)))
        assert free_vars(formula) == frozenset()

    def test_subterms_and_size(self):
        formula = And(Lt(x, y), Eq(a, b))
        listed = list(subterms(formula))
        assert formula in listed and x in listed and b in listed
        assert term_size(formula) == 7

    def test_contains_quantifier(self):
        assert contains_quantifier(ForAll(x, Lt(x, y)))
        assert not contains_quantifier(Lt(x, y))

    def test_hashable_and_equal(self):
        assert And(Lt(x, y), Eq(a, b)) == And(Lt(x, y), Eq(a, b))
        assert {Lt(x, y): 1}[Lt(x, y)] == 1
