"""Substitution, alpha-equivalence and the finite-model evaluator."""

from hypothesis import given, settings, strategies as st

from repro.logic import (
    And,
    Eq,
    Exists,
    ForAll,
    Implies,
    Int,
    IntVar,
    Lt,
    Not,
    Or,
    Plus,
    alpha_equal,
    instantiate_binder,
    substitute,
)
from repro.logic.evaluator import Interpretation, holds
from repro.logic.terms import Binder

x, y, z = IntVar("x"), IntVar("y"), IntVar("z")


class TestSubstitution:
    def test_basic(self):
        formula = Lt(x, y)
        assert substitute(formula, {x: Int(3)}) == Lt(Int(3), y)

    def test_untouched_returns_equal(self):
        formula = Lt(x, y)
        assert substitute(formula, {z: Int(0)}) == formula

    def test_bound_variable_not_replaced(self):
        formula = ForAll(x, Lt(x, y))
        assert substitute(formula, {x: Int(3)}) == formula

    def test_capture_avoidance(self):
        # [y := x] in (ALL x. y < x) must not capture the free x.
        formula = ForAll(x, Lt(y, x))
        replaced = substitute(formula, {y: x})
        assert isinstance(replaced, Binder)
        bound_name = replaced.params[0][0]
        assert bound_name != "x"
        # Semantics: the result must mean "ALL fresh. x < fresh".
        interp = Interpretation(int_range=(-2, 2), variables={"x": 2})
        assert not holds(replaced, interp)

    def test_instantiate_binder(self):
        formula = ForAll([x, y], Lt(x, y))
        assert isinstance(formula, Binder)
        instance = instantiate_binder(formula, [Int(1), Int(2)])
        assert instance == Lt(Int(1), Int(2))


class TestAlphaEquivalence:
    def test_renamed_bound_variables(self):
        left = ForAll(x, Lt(x, y))
        right = ForAll(z, Lt(z, y))
        assert alpha_equal(left, right)

    def test_different_free_variables(self):
        assert not alpha_equal(ForAll(x, Lt(x, y)), ForAll(x, Lt(x, z)))

    def test_mixed_binders(self):
        assert not alpha_equal(ForAll(x, Lt(x, y)), Exists(x, Lt(x, y)))


class TestEvaluator:
    def test_arithmetic(self):
        interp = Interpretation(variables={"x": 3, "y": 5})
        assert holds(Lt(Plus(x, Int(1)), y), interp)
        assert not holds(Lt(y, x), interp)

    def test_quantifiers(self):
        interp = Interpretation(int_range=(0, 3))
        assert holds(ForAll(x, Lt(x, Int(10))), interp)
        assert holds(Exists(x, Eq(x, Int(2))), interp)
        assert not holds(Exists(x, Eq(x, Int(9))), interp)

    def test_implication_truth_table(self):
        interp = Interpretation(variables={"x": 1, "y": 0})
        assert holds(Implies(Lt(x, y), Lt(y, x)), interp)


# -- property-based: substitution respects evaluation ------------------------

_int_terms = st.sampled_from([x, y, Int(0), Int(1), Int(-2), Plus(x, Int(1))])


@st.composite
def _formulas(draw, depth=2):
    if depth == 0:
        left, right = draw(_int_terms), draw(_int_terms)
        return draw(st.sampled_from([Lt(left, right), Eq(left, right)]))
    kind = draw(st.sampled_from(["atom", "and", "or", "not", "implies"]))
    if kind == "atom":
        return draw(_formulas(depth=0))
    if kind == "not":
        return Not(draw(_formulas(depth=depth - 1)))
    left = draw(_formulas(depth=depth - 1))
    right = draw(_formulas(depth=depth - 1))
    if kind == "and":
        return And(left, right)
    if kind == "or":
        return Or(left, right)
    return Implies(left, right)


@given(formula=_formulas(), value=st.integers(-3, 3), x_val=st.integers(-3, 3),
       y_val=st.integers(-3, 3))
@settings(max_examples=120, deadline=None)
def test_substitution_commutes_with_evaluation(formula, value, x_val, y_val):
    """eval(F[x := c], env) == eval(F, env[x := c])."""
    substituted = substitute(formula, {x: Int(value)})
    env = Interpretation(variables={"x": x_val, "y": y_val})
    env_with = Interpretation(variables={"x": value, "y": y_val})
    assert holds(substituted, env) == holds(formula, env_with)
