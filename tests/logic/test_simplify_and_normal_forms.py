"""Simplification (comprehension elimination) and normal forms."""

from hypothesis import given, settings, strategies as st

from repro.logic import INT, OBJ, map_of, set_of, tuple_of
from repro.logic.clauses import cnf_clauses, formula_of_clause
from repro.logic.evaluator import Interpretation, all_interpretations, holds
from repro.logic.nnf import eliminate_sugar, prenex, skolemize, to_nnf
from repro.logic.parser import parse_formula
from repro.logic import builder as b
from repro.logic.simplify import simplify
from repro.logic.terms import App, BoolLit, contains_quantifier, free_vars

ENV = {
    "size": INT,
    "i": INT,
    "o": OBJ,
    "elements": map_of(INT, OBJ),
    "content": set_of(tuple_of(INT, OBJ)),
    "nodes": set_of(OBJ),
    "S": set_of(OBJ),
    "T": set_of(OBJ),
    "a": OBJ,
    "x": INT,
    "y": INT,
    "p": INT,
}


class TestSimplify:
    def test_membership_in_comprehension(self):
        formula = parse_formula("(3, null) in {(i, n). 0 <= i & i < 5 & n = null}", ENV)
        assert simplify(formula) == BoolLit(True)

    def test_membership_in_union(self):
        formula = parse_formula("a in S Un {a}", ENV)
        assert simplify(formula) == BoolLit(True)

    def test_set_equality_becomes_extensionality(self):
        formula = parse_formula("S = T Un {a}", ENV)
        simplified = simplify(formula)
        assert contains_quantifier(simplified)

    def test_subseteq_becomes_universal(self):
        simplified = simplify(parse_formula("S subseteq T", ENV))
        assert contains_quantifier(simplified)

    def test_select_of_store_same_key(self):
        formula = parse_formula("elements[i := o][i] = o", ENV)
        assert simplify(formula) == BoolLit(True)

    def test_select_of_store_distinct_literals(self):
        formula = parse_formula("elements[0 := o][1] = elements[1]", ENV)
        assert simplify(formula) == BoolLit(True)

    def test_constant_folding(self):
        assert simplify(parse_formula("1 + 2 < 4", ENV)) == BoolLit(True)
        assert simplify(parse_formula("2 * 3 = 7", ENV)) == BoolLit(False)

    def test_tuple_equality_componentwise(self):
        formula = parse_formula("(x, a) = (y, a)", ENV)
        simplified = simplify(formula)
        assert simplified == parse_formula("x = y", ENV)

    def test_comprehension_equality_with_spec_variable(self):
        formula = parse_formula(
            "content = {(i, n). 0 <= i & i < size & n = elements[i]}", ENV
        )
        simplified = simplify(formula)
        assert contains_quantifier(simplified)


def _random_small_formulas():
    texts = [
        "x <= y --> x < y + 1",
        "~(x = y) <-> (x < y | y < x)",
        "(x < y & y < p) --> x < p",
        "x = y | x ~= y",
        "(x < y --> y < x) --> x = y | y < x",
    ]
    return st.sampled_from([parse_formula(t, ENV) for t in texts])


@given(formula=_random_small_formulas(), x_val=st.integers(-2, 2),
       y_val=st.integers(-2, 2), p_val=st.integers(-2, 2))
@settings(max_examples=100, deadline=None)
def test_simplify_preserves_semantics(formula, x_val, y_val, p_val):
    interp = Interpretation(variables={"x": x_val, "y": y_val, "p": p_val})
    assert holds(simplify(formula), interp) == holds(formula, interp)


@given(formula=_random_small_formulas(), x_val=st.integers(-2, 2),
       y_val=st.integers(-2, 2), p_val=st.integers(-2, 2))
@settings(max_examples=100, deadline=None)
def test_nnf_preserves_semantics(formula, x_val, y_val, p_val):
    interp = Interpretation(variables={"x": x_val, "y": y_val, "p": p_val})
    assert holds(to_nnf(formula), interp) == holds(formula, interp)
    assert holds(to_nnf(b.Not(formula)), interp) != holds(formula, interp)


@given(formula=_random_small_formulas(), x_val=st.integers(-2, 2),
       y_val=st.integers(-2, 2), p_val=st.integers(-2, 2))
@settings(max_examples=60, deadline=None)
def test_cnf_preserves_semantics(formula, x_val, y_val, p_val):
    interp = Interpretation(variables={"x": x_val, "y": y_val, "p": p_val})
    clauses = cnf_clauses(to_nnf(formula))
    value = all(holds(formula_of_clause(c), interp) for c in clauses)
    assert value == holds(formula, interp)


class TestSkolemization:
    def test_skolem_constant_for_outer_existential(self):
        formula = to_nnf(parse_formula("EX k : int. k < size", ENV))
        skolemized = skolemize(formula)
        assert not contains_quantifier(skolemized)

    def test_skolem_function_under_universal(self):
        formula = to_nnf(parse_formula("ALL k : int. EX m : int. k < m", ENV))
        skolemized = prenex(skolemize(formula))
        # One universal remains; the existential became a Skolem application.
        assert contains_quantifier(skolemized)
        body = skolemized.body
        apps = [t for t in [body] if isinstance(t, App)]
        assert apps

    def test_eliminate_sugar_removes_iff(self):
        formula = parse_formula("x = 0 <-> y = 0", ENV)
        desugared = eliminate_sugar(formula)
        assert all(
            not (isinstance(t, App) and t.op in ("iff", "implies"))
            for t in [desugared]
        )


def test_validity_oracle_on_free_variables():
    formula = parse_formula("x <= y | y <= x", ENV)
    assert all(
        holds(formula, interp)
        for interp in all_interpretations(sorted(free_vars(formula), key=str))
    )
