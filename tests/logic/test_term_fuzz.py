"""Property-based fuzzing of the hash-consed term kernel.

Random well-sorted formulas are generated with Hypothesis and checked
against the finite-model evaluator: interning must be stable (pickling a
term back into the same process returns the *same object*), and the
rewriting passes (substitute / simplify / eliminate_sugar / to_nnf) must
preserve evaluator semantics.  Fingerprints must be pure literal data --
no ids, no process-dependent hashes -- which is what makes them safe to
share across worker processes and persist across runs; a subprocess test
pins that down under different ``PYTHONHASHSEED`` values.

``derandomize=True`` keeps tier 1 deterministic (seeded-random rather
than time-seeded exploration).
"""

from __future__ import annotations

import json
import pickle
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.logic import builder as b
from repro.logic.evaluator import Interpretation, evaluate
from repro.logic.nnf import eliminate_sugar, to_nnf
from repro.logic.parser import parse_formula
from repro.logic.printer import to_ascii
from repro.logic.simplify import simplify
from repro.logic.subst import substitute
from repro.logic.terms import IntLit, Var
from repro.logic.sorts import BOOL, INT
from repro.provers.cache import (
    fingerprint_from_json,
    fingerprint_to_json,
    term_fingerprint,
)

SETTINGS = settings(max_examples=40, deadline=None, derandomize=True)

#: ``x`` / ``y`` stay free; quantifiers bind ``i`` / ``j`` (so shadowing and
#: capture cases are generated naturally).
FREE_INT_VARS = ("x", "y")
BOUND_INT_VARS = ("i", "j")
BOOL_VARS = ("p", "q")

int_expr = st.recursive(
    st.one_of(
        st.integers(-3, 3).map(b.Int),
        st.sampled_from(FREE_INT_VARS + BOUND_INT_VARS).map(b.IntVar),
    ),
    lambda children: st.one_of(
        st.tuples(children, children).map(lambda p: b.Plus(*p)),
        st.tuples(children, children).map(lambda p: b.Minus(*p)),
        st.tuples(children, children).map(lambda p: b.Times(*p)),
        children.map(b.Neg),
    ),
    max_leaves=6,
)

atom = st.one_of(
    st.booleans().map(b.Bool),
    st.sampled_from(BOOL_VARS).map(b.BoolVar),
    st.tuples(int_expr, int_expr).map(lambda p: b.Lt(*p)),
    st.tuples(int_expr, int_expr).map(lambda p: b.Le(*p)),
    st.tuples(int_expr, int_expr).map(lambda p: b.Eq(*p)),
)

formula = st.recursive(
    atom,
    lambda children: st.one_of(
        st.tuples(children, children).map(lambda p: b.And(*p)),
        st.tuples(children, children).map(lambda p: b.Or(*p)),
        children.map(b.Not),
        st.tuples(children, children).map(lambda p: b.Implies(*p)),
        st.tuples(children, children).map(lambda p: b.Iff(*p)),
        st.tuples(st.sampled_from(BOUND_INT_VARS), children).map(
            lambda p: b.ForAll([b.IntVar(p[0])], p[1])
        ),
        st.tuples(st.sampled_from(BOUND_INT_VARS), children).map(
            lambda p: b.Exists([b.IntVar(p[0])], p[1])
        ),
    ),
    max_leaves=8,
)

environments = st.fixed_dictionaries(
    {
        **{name: st.integers(-2, 2) for name in FREE_INT_VARS + BOUND_INT_VARS},
        **{name: st.booleans() for name in BOOL_VARS},
    }
)


def interp(env) -> Interpretation:
    # A small quantifier range keeps finite-model evaluation fast; the
    # transforms under test must agree under *every* interpretation, so a
    # small one loses no generality as a differential check.
    return Interpretation(int_range=(-2, 2), variables=dict(env))


@SETTINGS
@given(term=formula)
def test_pickle_reinterns_to_the_same_object(term):
    assert pickle.loads(pickle.dumps(term)) is term


@SETTINGS
@given(term=formula, env=environments)
def test_simplify_preserves_semantics(term, env):
    assert evaluate(simplify(term), interp(env)) == evaluate(term, interp(env))


@SETTINGS
@given(term=formula)
def test_simplify_is_a_fixpoint(term):
    simplified = simplify(term)
    assert simplify(simplified) is simplified


@SETTINGS
@given(term=formula, env=environments)
def test_nnf_preserves_semantics(term, env):
    desugared = eliminate_sugar(term)
    assert evaluate(desugared, interp(env)) == evaluate(term, interp(env))
    assert evaluate(to_nnf(desugared), interp(env)) == evaluate(term, interp(env))


@SETTINGS
@given(term=formula, env=environments, value=st.integers(-2, 2))
def test_substitute_matches_environment_update(term, env, value):
    # Substituting a literal for the always-free ``x`` must equal updating
    # the environment -- the definition of capture-avoiding substitution.
    substituted = substitute(term, {Var("x", INT): IntLit(value)})
    assert evaluate(substituted, interp(env)) == evaluate(
        term, interp({**env, "x": value})
    )


#: Sort environment for re-parsing printed strategy terms (every variable
#: the strategies can mention, plus the fresh ``z`` the renaming property
#: introduces).
PARSE_ENV = {
    **{name: INT for name in FREE_INT_VARS + BOUND_INT_VARS + ("z",)},
    **{name: BOOL for name in BOOL_VARS},
}


def reparse(term):
    return parse_formula(to_ascii(term), PARSE_ENV)


@SETTINGS
@given(term=formula)
def test_printer_parser_round_trip_reinterns(term):
    """``parse(print(t))`` is ``t`` -- the same interned object.

    Strategy terms are built through the builder API, so they are in
    builder normal form; the parser builds through the same API, and the
    hash-consing kernel makes "the same formula" mean object identity.
    Covers binders (the strategies quantify over ``i``/``j``, with
    shadowing generated naturally).
    """
    assert reparse(term) is term


@SETTINGS
@given(term=formula)
def test_round_trip_survives_renaming_substitution(term):
    """Renaming a free variable to a fresh one preserves the round trip.

    Substitution rebuilds interned nodes directly (no builder pass), so
    this pins down that the rebuilt terms still print to something the
    parser maps back to the very same objects -- including under binders,
    where substitution must avoid capture.
    """
    renamed = substitute(term, {Var("x", INT): Var("z", INT)})
    assert reparse(renamed) is renamed


@SETTINGS
@given(term=formula, env=environments, value=st.integers(-2, 2))
def test_round_trip_of_literal_substitution_is_stable_and_semantic(term, env, value):
    """Substituting a literal can leave non-normal-form nodes (e.g. a raw
    ``0 = 0`` the builder would fold to ``true``), so the printed text may
    re-parse to a *different* interned term.  What must still hold: one
    round trip reaches a fixpoint (printing is injective on what the
    parser produces), and the reparse is semantically identical.
    """
    substituted = substitute(term, {Var("x", INT): IntLit(value)})
    reparsed = reparse(substituted)
    assert reparse(reparsed) is reparsed
    interpretation = interp(env)
    assert evaluate(reparsed, interpretation) == evaluate(substituted, interpretation)


def _assert_literal_data(value) -> None:
    if isinstance(value, tuple):
        for item in value:
            _assert_literal_data(item)
    else:
        assert isinstance(value, (str, int, bool)), repr(value)


@SETTINGS
@given(term=formula)
def test_fingerprints_are_pure_literal_data(term):
    fingerprint = term_fingerprint(term)
    _assert_literal_data(fingerprint)
    # ...which is exactly why the persistent store's JSON codec
    # round-trips them losslessly.
    wire = json.loads(json.dumps(fingerprint_to_json(fingerprint)))
    assert fingerprint_from_json(wire) == fingerprint


_FINGERPRINT_SCRIPT = """
import pickle, sys
from repro.provers.cache import term_fingerprint
with open(sys.argv[1], "rb") as handle:
    terms = pickle.load(handle)
for term in terms:
    print(repr(term_fingerprint(term)))
"""


def test_fingerprints_stable_across_processes(tmp_path):
    """The same terms fingerprint identically under different hash seeds."""
    terms = [
        b.ForAll([b.IntVar("i")], b.Lt(b.IntVar("i"), b.IntVar("n"))),
        b.And(b.BoolVar("p"), b.Not(b.BoolVar("q"))),
        b.Exists(
            [b.IntVar("i")],
            b.And(
                b.Le(b.Int(0), b.IntVar("i")),
                b.ForAll([b.IntVar("i")], b.Eq(b.IntVar("i"), b.IntVar("x"))),
            ),
        ),
    ]
    blob = tmp_path / "terms.pickle"
    blob.write_bytes(pickle.dumps(terms))
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    outputs = []
    for seed in ("0", "424242"):
        result = subprocess.run(
            [sys.executable, "-c", _FINGERPRINT_SCRIPT, str(blob)],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": src_root, "PYTHONHASHSEED": seed, "PATH": ""},
        )
        outputs.append(result.stdout)
    assert outputs[0] == outputs[1]
    assert [line for line in outputs[0].splitlines() if line] == [
        repr(term_fingerprint(term)) for term in terms
    ]
