"""Property tests for the hash-consed term kernel and the memoized passes.

The kernel's contract:

* structurally equal terms are the *same object* (interning),
* every node carries its structural hash and free-variable names,
* the rewriting passes (`substitute`, `simplify`, `to_nnf`) are
  share-preserving: a fixpoint input comes back as the identical object.
"""

from __future__ import annotations

import copy
import pickle
import random

import pytest

from repro.logic import builder as b
from repro.logic.nnf import to_nnf
from repro.logic.simplify import simplify
from repro.logic.sorts import BOOL, INT, OBJ, set_of
from repro.logic.subst import FreshNameGenerator, alpha_equal, substitute
from repro.logic.terms import (
    FALSE,
    TRUE,
    App,
    Binder,
    BoolLit,
    Const,
    IntLit,
    Term,
    Var,
    dag_size,
    free_var_names,
    mk_app,
    mk_binder,
    mk_bool,
    mk_const,
    mk_int,
    mk_var,
    term_size,
    term_stats,
)


def random_formula(rng: random.Random, depth: int) -> Term:
    """A random well-sorted formula over a small vocabulary."""
    ints = [b.IntVar(n) for n in ("x", "y", "z")]
    objs = [b.ObjVar(n) for n in ("a", "bb")]
    nodes = Var("nodes", set_of(OBJ))

    def int_term(d: int) -> Term:
        if d <= 0 or rng.random() < 0.3:
            return rng.choice(ints + [b.Int(rng.randint(-3, 3))])
        op = rng.choice(["add", "sub", "mul_const"])
        if op == "add":
            return b.Plus(int_term(d - 1), int_term(d - 1))
        if op == "sub":
            return b.Minus(int_term(d - 1), int_term(d - 1))
        return b.Times(b.Int(rng.randint(1, 3)), int_term(d - 1))

    def formula(d: int) -> Term:
        if d <= 0 or rng.random() < 0.25:
            choice = rng.random()
            if choice < 0.4:
                return b.Lt(int_term(0), int_term(0))
            if choice < 0.7:
                return b.Member(rng.choice(objs), nodes)
            return b.Bool(rng.random() < 0.5)
        op = rng.randrange(6)
        if op == 0:
            return b.And(formula(d - 1), formula(d - 1))
        if op == 1:
            return b.Or(formula(d - 1), formula(d - 1))
        if op == 2:
            return b.Not(formula(d - 1))
        if op == 3:
            return b.Implies(formula(d - 1), formula(d - 1))
        if op == 4:
            var = b.IntVar(f"q{rng.randrange(3)}")
            return b.ForAll([var], b.Or(b.Lt(var, int_term(0)), formula(d - 1)))
        return b.Eq(int_term(d - 1), int_term(d - 1))

    return formula(depth)


class TestInterning:
    def test_vars_interned(self):
        assert Var("x", INT) is Var("x", INT)
        assert mk_var("x", INT) is Var("x", INT)
        assert Var("x", INT) is not Var("x", OBJ)

    def test_literals_and_consts_interned(self):
        assert IntLit(42) is IntLit(42) is mk_int(42)
        assert BoolLit(True) is TRUE is mk_bool(True)
        assert BoolLit(False) is FALSE
        assert Const("null", OBJ) is mk_const("null", OBJ)

    def test_apps_interned(self):
        x = Var("x", INT)
        left = App("add", (x, IntLit(1)), INT)
        right = mk_app("add", [x, IntLit(1)], INT)
        assert left is right

    def test_binders_interned(self):
        body = b.Lt(b.IntVar("x"), b.Int(3))
        one = Binder("forall", (("x", INT),), body)
        two = mk_binder("forall", [("x", INT)], body)
        assert one is two

    def test_structurally_equal_random_formulas_are_identical(self):
        for seed in range(20):
            first = random_formula(random.Random(seed), 4)
            second = random_formula(random.Random(seed), 4)
            assert first is second

    def test_builder_roundtrip_preserves_identity(self):
        # Reassembling a formula from its own pieces yields the same object.
        formula = b.And(b.Lt(b.IntVar("x"), b.IntVar("y")), b.Bool(True))
        assert isinstance(formula, App)
        rebuilt = App(formula.op, formula.args, formula.sort)
        assert rebuilt is formula

    def test_stats_track_allocations_and_hits(self):
        before = term_stats()
        App("mystats_op", (Var("x", INT),), BOOL)
        mid = term_stats()
        assert mid.allocated >= before.allocated + 1
        App("mystats_op", (Var("x", INT),), BOOL)
        after = term_stats()
        assert after.interned_hits > mid.interned_hits

    def test_copy_and_pickle_preserve_identity(self):
        formula = random_formula(random.Random(7), 4)
        assert copy.copy(formula) is formula
        assert copy.deepcopy(formula) is formula
        assert pickle.loads(pickle.dumps(formula)) is formula

    def test_terms_immutable(self):
        x = Var("imm_x", INT)
        with pytest.raises(AttributeError):
            x.name = "other"

    def test_validation_still_enforced(self):
        with pytest.raises(ValueError):
            Var("", INT)
        with pytest.raises(ValueError):
            Binder("nope", (("x", INT),), TRUE)
        with pytest.raises(ValueError):
            Binder("forall", (), TRUE)


class TestCachedFreeNames:
    def test_matches_recomputation(self):
        for seed in range(20):
            formula = random_formula(random.Random(seed), 4)
            assert free_var_names(formula) == _recompute_free_names(formula)

    def test_dag_size_not_larger_than_tree_size(self):
        formula = random_formula(random.Random(3), 5)
        assert dag_size(formula) <= term_size(formula)


def _recompute_free_names(term: Term) -> frozenset[str]:
    if isinstance(term, Var):
        return frozenset((term.name,))
    if isinstance(term, (Const, IntLit, BoolLit)):
        return frozenset()
    if isinstance(term, App):
        out: frozenset[str] = frozenset()
        for arg in term.args:
            out |= _recompute_free_names(arg)
        return out
    assert isinstance(term, Binder)
    return _recompute_free_names(term.body) - set(term.param_names)


class TestSharePreservingPasses:
    def test_substitute_fixpoint_is_identity(self):
        for seed in range(20):
            formula = random_formula(random.Random(seed), 4)
            # No variable named "unused" occurs, so nothing changes -- the
            # pass must return the identical object, not a rebuilt copy.
            mapping = {Var("unused", INT): b.Int(0)}
            assert substitute(formula, mapping) is formula
            assert substitute(formula, {}) is formula

    def test_substitute_shares_untouched_siblings(self):
        x, y = b.IntVar("x"), b.IntVar("y")
        untouched = b.Lt(y, b.Int(5))
        formula = b.And(b.Lt(x, y), untouched)
        result = substitute(formula, {Var("x", INT): b.Int(1)})
        assert result is not formula
        assert isinstance(result, App)
        assert result.args[1] is untouched

    def test_simplify_fixpoint_is_identity(self):
        for seed in range(20):
            formula = random_formula(random.Random(seed), 4)
            once = simplify(formula)
            assert simplify(once) is once

    def test_to_nnf_fixpoint_is_identity(self):
        for seed in range(20):
            formula = random_formula(random.Random(seed), 4)
            once = to_nnf(formula)
            assert to_nnf(once) is once

    def test_simplify_memo_consistent_across_calls(self):
        formula = random_formula(random.Random(11), 5)
        assert simplify(formula) is simplify(formula)


class TestFreshNameGenerator:
    def test_fresh_never_returns_its_own_base(self):
        # Regression: "x_1" strips to the stem "x"; when "x" is taken the
        # counter used to regenerate "x_1" itself, returning the very name
        # the caller asked to be freshened away from.
        gen = FreshNameGenerator({"x"})
        assert gen.fresh("x_1") != "x_1"

    def test_reserved_name_never_collides(self):
        gen = FreshNameGenerator()
        gen.reserve("x")
        gen.reserve("x_1")
        produced = {gen.fresh("x_1") for _ in range(5)}
        assert "x_1" not in produced
        assert "x" not in produced

    def test_empty_strip_base_avoids_reserved(self):
        # A base of digits/underscores strips to empty and falls back to the
        # "v" stem; explicitly reserved names must never be handed out.
        gen = FreshNameGenerator()
        gen.reserve("v")
        gen.reserve("v_1")
        name = gen.fresh("_1")
        assert name not in {"v", "v_1", "_1"}

    def test_deterministic_sequences_unchanged(self):
        gen = FreshNameGenerator()
        assert gen.fresh("x") == "x"
        assert gen.fresh("x") == "x_1"
        assert gen.fresh("x") == "x_2"

    def test_capture_avoidance_end_to_end(self):
        # ALL k_1. k_1 < y   with   y := k_1 + 1  must rename the binder.
        k1 = Var("k_1", INT)
        y = Var("y", INT)
        formula = b.ForAll([k1], b.Lt(k1, y))
        result = substitute(formula, {y: b.Plus(k1, b.Int(1))})
        assert isinstance(result, Binder)
        (param_name,) = result.param_names
        assert param_name != "k_1"
        assert "k_1" in free_var_names(result)
        assert not alpha_equal(result, b.ForAll([k1], b.Lt(k1, b.Plus(k1, b.Int(1)))))
