"""Additional coverage: evaluator data values, printers, clause utilities."""

import pytest

from repro.logic import (
    INT,
    OBJ,
    Card,
    Compr,
    EmptySet,
    Eq,
    Int,
    IntVar,
    Lambda,
    Le,
    Lt,
    Member,
    ObjVar,
    Select,
    SetEnum,
    Store,
    Tuple,
    Union,
    Var,
    map_of,
    set_of,
)
from repro.logic.clauses import Literal, cnf_clauses, formula_of_clause, literal_of
from repro.logic.evaluator import (
    EvaluationError,
    FiniteMap,
    Interpretation,
    evaluate,
    holds,
)
from repro.logic.parser import parse_formula
from repro.logic.printer import to_ascii, to_unicode
from repro.logic import builder as b

x, y = IntVar("x"), IntVar("y")
a = ObjVar("a")
nodes = Var("nodes", set_of(OBJ))
g = Var("g", map_of(INT, INT))


class TestFiniteMap:
    def test_get_set_roundtrip(self):
        empty = FiniteMap((), 0)
        updated = empty.set(1, 5).set(2, 7).set(1, 9)
        assert updated.get(1) == 9
        assert updated.get(2) == 7
        assert updated.get(3) == 0

    def test_from_dict(self):
        table = FiniteMap.from_dict({1: 2, 3: 4}, default=-1)
        assert table.get(3) == 4 and table.get(9) == -1


class TestEvaluator:
    def test_set_operations(self):
        interp = Interpretation(variables={"nodes": frozenset(["o0", "o1"]), "a": "o0"})
        assert holds(Member(a, nodes), interp)
        assert evaluate(Card(nodes), interp) == 2
        grown = Union(nodes, SetEnum(a))
        assert evaluate(grown, interp) == frozenset(["o0", "o1"])

    def test_map_select_store(self):
        interp = Interpretation(variables={"g": FiniteMap(((1, 10),), 0), "x": 1})
        assert evaluate(Select(g, x), interp) == 10
        stored = Store(g, Int(2), Int(20))
        assert evaluate(Select(stored, Int(2)), interp) == 20

    def test_comprehension_and_lambda(self):
        interp = Interpretation(int_range=(0, 3))
        squares_below = Compr([x], Lt(x, Int(2)))
        assert evaluate(squares_below, interp) == frozenset({0, 1})
        successor = Lambda([x], b.Plus(x, Int(1)))
        table = evaluate(successor, interp)
        assert isinstance(table, FiniteMap) and table.get(2) == 3

    def test_tuple_values(self):
        interp = Interpretation(variables={"x": 1, "a": "o0"})
        assert evaluate(Tuple(x, a), interp) == (1, "o0")

    def test_old_is_rejected(self):
        interp = Interpretation()
        with pytest.raises(EvaluationError):
            evaluate(b.Old(x), interp)

    def test_default_values(self):
        interp = Interpretation()
        assert holds(Eq(Card(EmptySet(OBJ)), Int(0)), interp)


class TestPrinter:
    @pytest.mark.parametrize(
        "text",
        [
            "x <= y & ~(x = y)",
            "ALL k : int. k in S --> 0 <= k",
            "card (S Un T) <= card S + card T",
            "g[x := y][x] = y",
        ],
    )
    def test_ascii_roundtrip(self, text):
        env = {
            "x": INT,
            "y": INT,
            "S": set_of(INT),
            "T": set_of(INT),
            "g": map_of(INT, INT),
        }
        formula = parse_formula(text, env)
        assert parse_formula(to_ascii(formula), env) == formula

    def test_unicode_symbols(self):
        env = {"S": set_of(INT), "T": set_of(INT)}
        rendered = to_unicode(parse_formula("S subseteq T & card S <= 3", env))
        assert "⊆" in rendered and "≤" in rendered


class TestClauses:
    def test_literal_negation(self):
        literal = literal_of(b.Not(Lt(x, y)))
        assert not literal.positive
        assert literal.negated().positive

    def test_tautology_removed(self):
        clauses = cnf_clauses(b.Or(Lt(x, y), b.Not(Lt(x, y))))
        assert clauses == []

    def test_formula_of_clause(self):
        clause = frozenset({Literal(Lt(x, y)), Literal(Le(y, x), False)})
        formula = formula_of_clause(clause)
        interp = Interpretation(variables={"x": 0, "y": 1})
        assert holds(formula, interp)
