"""Tests for the formula parser and sort elaboration."""

import pytest

from repro.logic import (
    BOOL,
    INT,
    OBJ,
    MapSort,
    SetSort,
    TupleSort,
    map_of,
    set_of,
    tuple_of,
)
from repro.logic.parser import ParseError, parse_formula, parse_sort, parse_term
from repro.logic.printer import to_ascii, to_unicode
from repro.logic.terms import Binder, FORALL

ENV = {
    "size": INT,
    "index": INT,
    "csize": INT,
    "o": OBJ,
    "first": OBJ,
    "elements": map_of(INT, OBJ),
    "next": map_of(OBJ, OBJ),
    "nodes": set_of(OBJ),
    "content": set_of(tuple_of(INT, OBJ)),
    "flag": BOOL,
}


class TestSorts:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("int", INT),
            ("bool", BOOL),
            ("obj", OBJ),
            ("obj set", SetSort(OBJ)),
            ("int => obj", MapSort(INT, OBJ)),
            ("obj => (int => obj)", MapSort(OBJ, MapSort(INT, OBJ))),
            ("(int * obj) set", SetSort(TupleSort((INT, OBJ)))),
        ],
    )
    def test_parse_sort(self, text, expected):
        assert parse_sort(text) == expected

    def test_bad_sort(self):
        with pytest.raises(ParseError):
            parse_sort("int +")


class TestFormulas:
    @pytest.mark.parametrize(
        "text",
        [
            "0 <= index & index < size",
            "ALL j. 0 <= j & j < index --> o ~= elements[j]",
            "EX i. (i, o) in content",
            "content = {(i, n). 0 <= i & i < size & n = elements[i]}",
            "nodes = old nodes Un {o}",
            "card nodes <= csize + 1",
            "next[o := first][o] = first",
            "flag <-> size = 0",
            "~(o in nodes) | o = null",
            "size mod 2 = 0 --> size ~= 1",
        ],
    )
    def test_parse_and_roundtrip(self, text):
        formula = parse_formula(text, ENV)
        assert formula.sort == BOOL
        reparsed = parse_formula(to_ascii(formula), ENV)
        assert reparsed == formula

    def test_bound_variable_sort_inference(self):
        formula = parse_formula("ALL j. 0 <= j --> elements[j] ~= null", ENV)
        assert isinstance(formula, Binder) and formula.kind == FORALL
        assert formula.params[0][1] == INT

    def test_bound_variable_annotation(self):
        formula = parse_formula("ALL n : obj. n in nodes --> n ~= null", ENV)
        assert formula.params[0][1] == OBJ

    def test_tuple_membership_sorts(self):
        formula = parse_formula("(index, o) in content", ENV)
        assert formula.sort == BOOL

    def test_term_parsing(self):
        term = parse_term("elements[index]", ENV)
        assert term.sort == OBJ

    def test_formula_requires_bool(self):
        with pytest.raises(ParseError):
            parse_formula("elements[index]", ENV)

    def test_strict_mode_rejects_unknowns(self):
        with pytest.raises(ParseError):
            parse_formula("mystery < 3", ENV, strict=True)

    def test_trailing_junk(self):
        with pytest.raises(ParseError):
            parse_formula("size = 0 size", ENV)

    def test_sort_mismatch_reported(self):
        with pytest.raises(ParseError):
            parse_formula("o < 3", ENV)

    def test_unicode_rendering(self):
        formula = parse_formula("ALL j. (j, o) in content --> 0 <= j", ENV)
        rendered = to_unicode(formula)
        assert "∀" in rendered and "∈" in rendered
