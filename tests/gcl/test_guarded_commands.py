"""Guarded commands: wlp rules, desugaring (Figure 6), write frames."""

from repro.gcl import (
    Assign,
    Assume,
    Havoc,
    If,
    Loop,
    SAssert,
    SAssume,
    SChoice,
    SHavoc,
    SSeq,
    SSkip,
    Skip,
    assigned_variables,
    desugar,
    eseq,
    modified_variables,
    sseq,
    sskip,
    wlp,
)
from repro.logic import And, Eq, Implies, Int, IntVar, Lt
from repro.logic.evaluator import Interpretation, holds
from repro.logic.terms import Binder, FORALL

x, y = IntVar("x"), IntVar("y")


class TestWlp:
    def test_skip(self):
        assert wlp(sskip(), Lt(x, y)) == Lt(x, y)

    def test_assume(self):
        assert wlp(SAssume(Lt(x, y)), Eq(x, y)) == Implies(Lt(x, y), Eq(x, y))

    def test_assert(self):
        assert wlp(SAssert(Lt(x, y)), Eq(x, y)) == And(Lt(x, y), Eq(x, y))

    def test_havoc_quantifies(self):
        result = wlp(SHavoc((x,)), Lt(x, y))
        assert isinstance(result, Binder) and result.kind == FORALL

    def test_choice_conjunction(self):
        command = SChoice(SAssume(Lt(x, y)), SAssume(Lt(y, x)))
        post = Eq(x, y)
        result = wlp(command, post)
        assert result == And(Implies(Lt(x, y), post), Implies(Lt(y, x), post))

    def test_sequence_composes(self):
        command = sseq(SAssume(Lt(x, y)), SAssert(Lt(x, Int(10))))
        result = wlp(command, Eq(y, y))
        interp = Interpretation(variables={"x": 3, "y": 5})
        assert holds(result, interp)
        interp_bad = Interpretation(variables={"x": 11, "y": 12})
        assert not holds(result, interp_bad)


class TestDesugar:
    def test_assignment_shape(self):
        command = desugar(Assign(x, Int(3)))
        assert isinstance(command, SSeq)
        kinds = [type(c) for c in command.commands]
        assert kinds == [SHavoc, SAssume, SHavoc, SAssume]

    def test_assignment_semantics(self):
        # wlp(x := 3, x = 3) must be valid.
        obligation = wlp(desugar(Assign(x, Int(3))), Eq(x, Int(3)))
        for value in (-1, 0, 5):
            assert holds(obligation, Interpretation(variables={"x": value}))

    def test_if_becomes_choice_of_assumes(self):
        command = desugar(If(Lt(x, y), Skip(), Skip()))
        assert isinstance(command, SChoice)
        assert isinstance(command.left, SAssume) or isinstance(command.left, SSeq)

    def test_loop_structure(self):
        loop = Loop(
            invariant=Lt(Int(0), x),
            before=Skip(),
            cond=Lt(x, y),
            body=Assign(x, Int(1)),
        )
        command = desugar(loop)
        assert isinstance(command, SSeq)
        # initial assert, havoc of modified vars, assume, then the choice
        assert isinstance(command.commands[0], SAssert)
        assert any(isinstance(c, SChoice) for c in command.commands)
        havocs = [c for c in command.commands if isinstance(c, SHavoc)]
        assert havocs and x in havocs[0].variables

    def test_havoc_such_that(self):
        command = desugar(Havoc((x,), such_that=Lt(Int(0), x)))
        assert isinstance(command, SSeq)
        assert isinstance(command.commands[0], SAssert)  # feasibility check

    def test_write_frames(self):
        body = eseq(Assign(x, Int(1)), If(Lt(x, y), Assign(y, Int(2)), Skip()))
        assert set(assigned_variables(body)) == {x, y}
        assert set(modified_variables(desugar(body))) >= {x, y}

    def test_sequence_flattening(self):
        assert eseq(Skip(), Skip()) == Skip()
        assert sseq(sskip(), sskip()) == SSkip()
        nested = eseq(Assume(Lt(x, y)), eseq(Assume(Lt(y, x))))
        assert len(nested.commands) == 2
