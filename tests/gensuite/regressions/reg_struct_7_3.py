"""Deep-fuzz regression: generated program pinned by its recipe.

family='struct' seed=7 size=3 drop_methods=()

Harness self-check, not a real past failure: pins the regression replay path
(recipe file -> loader -> oracle) so tier 1 exercises it even while the
regression set is empty.

Replay with:  jahob-py verify <this file>  (or the gensuite oracle).
"""

from repro.suite.generate import generate_class

MODEL = generate_class(
    "struct",
    seed=7,
    size=3,
    drop_methods=(),
)
