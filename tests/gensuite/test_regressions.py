"""Replay persisted deep-fuzz regressions (tier 1).

Every file under ``regressions/`` is a standalone recipe the nightly
fuzz wrote on a past failure (plus one seeded self-check): load it
through the same ingestion path users take (``jahob-py verify FILE``'s
:mod:`repro.frontend.loader`) and hold it to the full differential
oracle, so a once-found failure can never quietly return.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from oracle import run_oracle

from repro.frontend.loader import load_class_models

REGRESSIONS = sorted((Path(__file__).parent / "regressions").glob("*.py"))


@pytest.mark.parametrize("path", REGRESSIONS, ids=[path.stem for path in REGRESSIONS])
def test_regression_replays_clean(path, tmp_path):
    models = load_class_models(path)
    assert models, f"{path} exports no class models"
    run_oracle(models, tmp_path / "cache")
