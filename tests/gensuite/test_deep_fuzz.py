"""Nightly deep fuzz: unbounded exploration of the generator space.

Marked ``fuzz`` and deselected by default (see ``pytest.ini``); the
nightly CI job runs it with ``-m fuzz`` and a ``--hypothesis-seed``
echoed into the job log, so any failure reproduces locally from the
printed seed alone:

    python -m pytest tests/gensuite/test_deep_fuzz.py -m fuzz \\
        --hypothesis-seed=<seed from the log>

On a failing example the test shrinks the program by greedily dropping
methods (:func:`repro.suite.generate.shrink_class`) and persists the
shrunk recipe as a standalone regression file under ``regressions/`` --
an ordinary ``jahob-py verify FILE`` input that
``test_regressions_replay`` (tier 1) replays forever after.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from oracle import check_one_class

from repro.suite.generate import (
    FAMILIES,
    generate_class,
    regression_source,
    shrink_class,
)

REGRESSIONS = Path(__file__).parent / "regressions"

#: Depth knob for the nightly job; local runs default shallow so a manual
#: ``-m fuzz`` finishes in minutes.
MAX_EXAMPLES = int(os.environ.get("JAHOB_FUZZ_EXAMPLES", "25"))

DEEP_FUZZ = settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    # Exploration, not regression: fresh examples every run, reproducible
    # via the --hypothesis-seed the CI job prints.
    derandomize=False,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _persist_regression(family: str, seed: int, size: int, failure: str) -> Path:
    """Shrink the failing program and pin it as a replayable recipe."""

    def still_fails(model) -> bool:
        with tempfile.TemporaryDirectory() as scratch:
            try:
                check_one_class(model, Path(scratch) / "cache")
            except AssertionError:
                return True
        return False

    drop = shrink_class(family, seed, size, still_fails)
    REGRESSIONS.mkdir(exist_ok=True)
    path = REGRESSIONS / f"reg_{family}_{seed}_{size}.py"
    path.write_text(
        regression_source(
            family,
            seed,
            size,
            drop_methods=drop,
            note=f"Original failure: {failure}",
        )
    )
    return path


@pytest.mark.fuzz
@DEEP_FUZZ
@given(
    family=st.sampled_from(sorted(FAMILIES)),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    size=st.integers(min_value=2, max_value=5),
)
def test_deep_fuzz_differential_oracle(tmp_path_factory, family, seed, size):
    cls = generate_class(family, seed, size=size)
    cache_dir = tmp_path_factory.mktemp("fuzzcache") / "cache"
    try:
        check_one_class(cls, cache_dir)
    except AssertionError as exc:
        regression = _persist_regression(family, seed, size, str(exc))
        raise AssertionError(
            f"deep fuzz failure: family={family!r} seed={seed} size={size}\n"
            f"reproduce:  python -c \"from repro.suite.generate import "
            f"generate_class; generate_class({family!r}, {seed}, "
            f"size={size})\" then run the oracle, or\n"
            f"            jahob-py verify {regression}\n"
            f"(shrunk regression persisted at {regression})\n{exc}"
        ) from exc
