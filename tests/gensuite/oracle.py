"""The differential / metamorphic oracle for generated programs.

A generated class has no hand-written expected output, so correctness is
defined *relationally*: every configuration of the stack must tell the
same story about it.  :func:`run_oracle` verifies a corpus under four
configurations and cross-checks them:

* **baseline** -- sequential, cache on: the reference trace;
* **jobs parity** -- a suite-scheduled ``jobs=2`` run over the whole
  corpus (one pool, cross-class dedup, cost-model-driven order) must
  reproduce the baseline verdicts bit for bit;
* **cache parity** -- a cache-disabled sequential run, which re-proves
  every sequent, must reproduce them too;
* **warm/cold parity** -- a fresh engine reading the baseline's
  persistent store must reproduce them *without proving anything* (every
  outcome answered from cache, disk provenance present).

Independently, :func:`evaluator_counterexample` checks the portfolio
against the finite-model evaluator: a proved quantifier-free sequent
whose free variables are all ``int``/``bool`` must have no counterexample
under any sampled finite interpretation.  The evaluator knows nothing of
provers, caches or scheduling, so agreement here is evidence about the
whole pipeline, not one configuration against another.

Shared by the seeded tier-1 corpus test and the nightly deep fuzz
(``test_deep_fuzz.py``), which is why it lives in its own module.
"""

from __future__ import annotations

import random

from repro.logic.evaluator import Interpretation, evaluate
from repro.logic.sorts import BOOL, INT
from repro.logic.terms import Binder, free_vars
from repro.provers.dispatch import default_portfolio
from repro.verifier.engine import VerificationEngine

#: Benchmark-style timeout scaling (same value the verifier differential
#: tests use) keeps a multi-configuration corpus round tractable.
TIMEOUT_SCALE = 0.4

#: The tier-1 seeded corpus: 24 classes (12 per family) at size 3.
CORPUS_COUNT = 24
CORPUS_SEED = 0


def make_engine(jobs: int = 1, use_cache: bool = True, **kwargs) -> VerificationEngine:
    return VerificationEngine(
        default_portfolio(with_cache=use_cache).scaled(TIMEOUT_SCALE),
        use_proof_cache=use_cache,
        jobs=jobs,
        **kwargs,
    )


def verdict_trace(report) -> list[tuple]:
    """What every configuration must agree on, per sequent, in order.

    Cache provenance and elapsed times legitimately differ between
    configurations; verdicts, refutations and prover attribution may not.
    """
    return [
        (
            method.method_name,
            outcome.sequent.label,
            outcome.proved,
            outcome.dispatch.refuted,
            outcome.prover,
        )
        for method in report.methods
        for outcome in method.outcomes
    ]


def aggregate_trace(report) -> tuple:
    return (
        report.class_name,
        report.methods_total,
        report.methods_verified,
        report.sequents_total,
        report.sequents_proved,
        report.verified,
    )


# -- evaluator agreement ----------------------------------------------------------


def _quantifier_free(term) -> bool:
    if isinstance(term, Binder):
        return False
    return all(_quantifier_free(arg) for arg in getattr(term, "args", ()))


def evaluator_counterexample(sequent, samples: int = 8):
    """A falsifying assignment for a proved sequent, or None.

    Only quantifier-free sequents whose free variables are all ``int`` or
    ``bool`` are sampled (the finite-model evaluator would need a
    heap-shaped universe for the rest); returns None for sequents outside
    that fragment.  Sampling is seeded from the sequent's label, so a
    disagreement reproduces deterministically.
    """
    formula = sequent.formula()
    if not _quantifier_free(formula):
        return None
    variables = free_vars(formula)
    if any(var.sort not in (INT, BOOL) for var in variables):
        return None
    rng = random.Random(sequent.label)
    for _ in range(samples):
        env = {
            var.name: (rng.randint(-3, 3) if var.sort == INT else rng.random() < 0.5)
            for var in variables
        }
        if not evaluate(formula, Interpretation(int_range=(-4, 4), variables=env)):
            return env
    return None


def assert_evaluator_agreement(report) -> int:
    """Every proved in-fragment sequent must evaluate true; returns how
    many sequents the evaluator actually checked (so callers can assert
    the fragment is not empty)."""
    checked = 0
    for method in report.methods:
        for outcome in method.outcomes:
            if not outcome.proved:
                continue
            counterexample = evaluator_counterexample(outcome.sequent)
            if counterexample is not None:
                raise AssertionError(
                    f"{report.class_name}.{method.method_name} sequent "
                    f"{outcome.sequent.label!r}: proved by "
                    f"{outcome.prover!r} but falsified by the evaluator "
                    f"under {counterexample!r}"
                )
            checked += 1
    return checked


# -- the full oracle --------------------------------------------------------------


def run_oracle(corpus, cache_dir, require_verified: bool = True) -> dict:
    """Run every differential check over ``corpus``; returns run facts.

    ``cache_dir`` (a fresh directory) backs the warm/cold check.  The
    returned dict carries corpus-level numbers (sequent counts per class,
    evaluator coverage, warm-run provenance) for reporting; all
    correctness assertions happen inside.
    """
    baseline = make_engine(jobs=1, cache_dir=cache_dir)
    baseline_reports = [baseline.verify_class(cls) for cls in corpus]
    baseline.close()  # flush the persistent store for the warm engine
    if require_verified:
        unverified = [r.class_name for r in baseline_reports if not r.verified]
        assert not unverified, f"generated classes failed to verify: {unverified}"

    # Jobs parity: one suite-scheduled jobs=2 run over the whole corpus.
    suite_engine = make_engine(jobs=2)
    suite_reports = suite_engine.verify_suite(list(corpus))
    suite_engine.close()
    suite_by_name = {report.class_name: report for report in suite_reports}
    for reference in baseline_reports:
        parallel = suite_by_name[reference.class_name]
        assert verdict_trace(reference) == verdict_trace(parallel)
        assert aggregate_trace(reference) == aggregate_trace(parallel)

    # Cache parity: no cache anywhere, every sequent re-proved.
    uncached_engine = make_engine(jobs=1, use_cache=False)
    for reference in baseline_reports:
        cls = next(c for c in corpus if c.name == reference.class_name)
        uncached = uncached_engine.verify_class(cls)
        assert verdict_trace(reference) == verdict_trace(uncached)
        assert aggregate_trace(reference) == aggregate_trace(uncached)
    uncached_engine.close()

    # Warm/cold parity: a fresh engine over the baseline's store answers
    # everything from cache, with disk provenance for first encounters.
    warm_engine = make_engine(jobs=1, cache_dir=cache_dir)
    warm_hits = {"memory": 0, "disk": 0}
    for reference in baseline_reports:
        cls = next(c for c in corpus if c.name == reference.class_name)
        warm = warm_engine.verify_class(cls)
        assert verdict_trace(reference) == verdict_trace(warm)
        assert aggregate_trace(reference) == aggregate_trace(warm)
        for method in warm.methods:
            for outcome in method.outcomes:
                assert outcome.dispatch.cached, (
                    f"warm run re-proved {outcome.sequent.label!r} "
                    f"in {cls.name}"
                )
                warm_hits[outcome.dispatch.cache_origin] += 1
    warm_engine.close()
    assert warm_hits["disk"] > 0, "warm run never touched the persistent store"

    # Evaluator agreement, against the baseline outcomes.
    evaluator_checked = sum(
        assert_evaluator_agreement(report) for report in baseline_reports
    )

    per_family_sequents: dict[str, int] = {}
    for report in baseline_reports:
        family = report.class_name.split("-")[1]
        per_family_sequents[family] = (
            per_family_sequents.get(family, 0) + report.sequents_total
        )
    return {
        "classes": len(corpus),
        "sequents_total": sum(r.sequents_total for r in baseline_reports),
        "per_family_sequents": per_family_sequents,
        "evaluator_checked": evaluator_checked,
        "warm_hits": warm_hits,
    }


def check_one_class(cls, cache_dir) -> dict:
    """The per-class oracle the deep fuzz drives (same checks, corpus of
    one)."""
    return run_oracle([cls], cache_dir)
