"""Tier-1 seeded corpus: generation, registration, and the full oracle.

The corpus here is fixed (``CORPUS_COUNT`` classes from ``CORPUS_SEED``),
so this file is deterministic; the open-ended exploration of the same
generator/oracle pair lives in ``test_deep_fuzz.py`` (nightly).
"""

from __future__ import annotations

import pytest
from oracle import CORPUS_COUNT, CORPUS_SEED, make_engine, run_oracle

from repro.suite.catalog import (
    cost_hint,
    registered_structures,
    structure_by_name,
    unregister_structure,
)
from repro.suite.generate import (
    FAMILIES,
    generate_class,
    generate_corpus,
    register_corpus,
)


@pytest.fixture()
def clean_registry():
    yield
    unregister_structure()


def corpus():
    return generate_corpus(CORPUS_COUNT, seed=CORPUS_SEED)


def test_corpus_covers_both_families_at_acceptance_size():
    classes = corpus()
    assert len(classes) >= 20
    by_family = {family: 0 for family in FAMILIES}
    for cls in classes:
        by_family[cls.name.split("-")[1]] += 1
    assert all(count >= 10 for count in by_family.values()), by_family


def test_generation_is_deterministic():
    first, second = corpus(), corpus()
    for a, b in zip(first, second):
        assert a.name == b.name
        assert [m.name for m in a.methods] == [m.name for m in b.methods]
        # Formulas are hash-consed: deterministic regeneration means the
        # *same interned objects*, not merely equal ones.
        for inv_a, inv_b in zip(a.invariants, b.invariants):
            assert inv_a.formula is inv_b.formula
        for m_a, m_b in zip(a.methods, b.methods):
            assert m_a.contract.requires is m_b.contract.requires
            assert m_a.contract.ensures is m_b.contract.ensures


def test_drop_methods_shrinks_soundly():
    full = generate_class("arith", 5, size=3)
    victim = full.methods[0].name
    shrunk = generate_class("arith", 5, size=3, drop_methods=(victim,))
    assert [m.name for m in shrunk.methods] == [
        m.name for m in full.methods if m.name != victim
    ]
    with pytest.raises(ValueError):
        generate_class("arith", 5, size=3, drop_methods=("no_such_method",))
    with pytest.raises(ValueError):
        generate_class("nope", 0)


def test_registered_corpus_is_first_class(clean_registry):
    classes = register_corpus(corpus())
    assert len(registered_structures()) == len(classes)
    # Name resolution, the same path the CLI / daemon 'verify' op takes
    # (case- and space-insensitive, like the paper catalogue).
    assert structure_by_name("Gen-arith-0") is classes[0]
    assert structure_by_name("gen-struct-1") is classes[1]
    # Unknown classes price at the cost model's default rung.
    assert cost_hint("Gen-arith-0") == cost_hint("never-registered")
    with pytest.raises(ValueError):
        register_corpus(classes[:1])  # duplicate registration
    register_corpus(classes[:1], replace=True)
    unregister_structure("Gen-arith-0")
    with pytest.raises(KeyError):
        structure_by_name("Gen-arith-0")


def test_corpus_passes_full_differential_oracle(tmp_path, clean_registry):
    """The acceptance check: >= 20 generated classes, both families,
    bit-identical verdicts across jobs/cache/warm configurations, and
    evaluator agreement on the quantifier-free fragment."""
    classes = register_corpus(corpus())
    facts = run_oracle(classes, tmp_path / "cache")
    assert facts["classes"] >= 20
    assert set(facts["per_family_sequents"]) == {"arith", "struct"}
    assert all(count > 0 for count in facts["per_family_sequents"].values())
    assert facts["evaluator_checked"] > 0
    assert facts["warm_hits"]["disk"] > 0


def test_suite_scheduler_prices_generated_classes_at_default(clean_registry):
    """Generated classes flow through the cost model like any unknown
    class: the suite plan records them at the 'default' rung (they
    graduate to 'measured' once a warm store has seen them)."""
    classes = register_corpus(corpus()[:4])
    engine = make_engine(jobs=2)
    engine.verify_suite(list(classes))
    stats = engine.last_suite_stats
    engine.close()
    assert stats is not None
    sources = {cls.class_name: cls.hint_source for cls in stats.classes}
    assert set(sources) == {cls.name for cls in classes}
    assert set(sources.values()) == {"default"}
