"""Drift check: ``docs/service-api.md`` must match the served surface.

The service handbook promises its route table is asserted against the
code; this is that assertion.  Three directions:

* the markdown route table is exactly ``repro.verifier.http.ROUTES``
  (method, path, op and admission column, in order);
* the *admission* column agrees with the daemon's engine-op set, so the
  doc cannot claim an op is lock-free when it actually queues (or vice
  versa);
* every rejection code the admission layer can emit is documented, and
  the doc documents no others.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.verifier.admission import PRIORITY_LANES, REJECTION_CODES
from repro.verifier.daemon import _ENGINE_OPS
from repro.verifier.http import ROUTES

DOC = Path(__file__).resolve().parent.parent / "docs" / "service-api.md"

_ROUTE_ROW = re.compile(
    r"^\|\s*(GET|POST|PUT|DELETE)\s*"  # method
    r"\|\s*`([^`]+)`\s*"  # path
    r"\|\s*`([^`]+)`\s*"  # op
    r"\|\s*(yes|no)\s*\|",  # admission
    re.MULTILINE,
)


def documented_routes() -> list[tuple[str, str, str, bool]]:
    text = DOC.read_text(encoding="utf-8")
    rows = _ROUTE_ROW.findall(text)
    assert rows, "service-api.md lost its route table"
    return [
        (method, path, op, admission == "yes")
        for method, path, op, admission in rows
    ]


def test_route_table_matches_registered_routes():
    served = [(r.method, r.path, r.op, r.admission) for r in ROUTES]
    assert documented_routes() == served, (
        "docs/service-api.md route table is out of sync with "
        "repro.verifier.http.ROUTES -- update them together"
    )


def test_admission_column_matches_engine_ops():
    for route in ROUTES:
        assert route.admission == (route.op in _ENGINE_OPS), (
            f"route {route.path}: admission={route.admission} but the "
            f"daemon {'gates' if route.op in _ENGINE_OPS else 'does not gate'} "
            f"op {route.op!r}"
        )


def test_socket_only_ops_stay_unrouted_and_documented():
    routed_ops = {route.op for route in ROUTES}
    socket_only = _ENGINE_OPS - routed_ops
    assert socket_only == {"table1", "shutdown"}
    text = DOC.read_text(encoding="utf-8")
    for op in socket_only:
        assert f"`{op}`" in text, f"socket-only op {op!r} is undocumented"


def test_watch_stream_is_socket_only_and_documented():
    """``watch`` streams over one held connection; it must stay off the
    op table (and so off the HTTP front door) and the doc must say so."""
    assert "watch" not in _ENGINE_OPS
    assert "watch" not in {route.op for route in ROUTES}
    text = DOC.read_text(encoding="utf-8")
    assert "`watch`" in text and "socket-only" in text


def test_rejection_codes_are_exactly_documented():
    text = DOC.read_text(encoding="utf-8")
    # The codes table: | `busy` | ... |
    documented = set(re.findall(r"^\|\s*`(\w+)`\s*\|", text, re.MULTILINE))
    assert documented == set(REJECTION_CODES), (
        f"service-api.md documents rejection codes {sorted(documented)}, "
        f"the admission layer emits {sorted(REJECTION_CODES)}"
    )


def test_priority_lanes_are_documented():
    text = DOC.read_text(encoding="utf-8")
    for lane in PRIORITY_LANES:
        assert f'"{lane}"' in text, f"priority lane {lane!r} is undocumented"


def test_auth_headers_and_statuses_are_documented():
    text = DOC.read_text(encoding="utf-8")
    for header in ("X-Jahob-Client", "X-Jahob-Signature", "Retry-After"):
        assert header in text
    for status in ("200", "400", "401", "404", "405", "429"):
        assert f"| {status} " in text, f"status {status} missing from the table"
