"""Differential harness: parallel dispatch must equal the sequential path.

Every assertion here compares a fresh sequential engine against a fresh
parallel engine on the same classes: per-sequent verdicts, refutations,
prover attribution, cache provenance flags, report aggregates and the
portfolio counters must all be identical.  The fast variants (a subset of
quickly-verifying catalog classes) run in tier 1; the full-catalog sweep
over ``jobs in {1, 2, 4}`` is marked ``slow`` and deselected by default
(run it with ``pytest -m slow``).
"""

from __future__ import annotations

import pytest

from repro.provers.dispatch import default_portfolio
from repro.suite import all_structures
from repro.verifier.engine import ClassReport, VerificationEngine

#: Benchmark-style timeout scaling keeps a full differential round tractable.
TIMEOUT_SCALE = 0.4

#: Classes that verify fully in well under a second each -- their verdicts
#: are far from any prover timeout, so the differential comparison is
#: deterministic.
FAST_CLASSES = ("Array List", "Cursor List", "Linked List", "Circular List")


def structures(names=None):
    chosen = all_structures()
    if names is not None:
        chosen = [cls for cls in chosen if cls.name in names]
    return chosen


def make_engine(jobs: int, use_cache: bool) -> VerificationEngine:
    return VerificationEngine(
        default_portfolio(with_cache=use_cache).scaled(TIMEOUT_SCALE),
        use_proof_cache=use_cache,
        jobs=jobs,
    )


def sequent_trace(report: ClassReport) -> list[tuple]:
    """Everything observable about each sequent, in deterministic order."""
    return [
        (
            method.class_name,
            method.method_name,
            outcome.sequent.label,
            outcome.proved,
            outcome.dispatch.refuted,
            outcome.prover,
            outcome.dispatch.cached,
            outcome.dispatch.cache_origin,
        )
        for method in report.methods
        for outcome in method.outcomes
    ]


def aggregate_trace(report: ClassReport) -> tuple:
    return (
        report.class_name,
        report.methods_total,
        report.methods_verified,
        report.sequents_total,
        report.sequents_proved,
        report.verified,
        tuple(sorted(report.provers_used.items())),
    )


def statistics_trace(engine: VerificationEngine) -> tuple:
    stats = engine.portfolio.statistics
    return (
        stats.sequents_attempted,
        stats.sequents_proved,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_hits_disk,
        tuple(
            sorted(
                (name, per.attempts, per.proved)
                for name, per in stats.per_prover.items()
            )
        ),
    )


def assert_differential(classes, jobs: int, use_cache: bool) -> None:
    sequential = make_engine(jobs=1, use_cache=use_cache)
    parallel = make_engine(jobs=jobs, use_cache=use_cache)
    for cls in classes:
        seq_report = sequential.verify_class(cls)
        par_report = parallel.verify_class(cls)
        assert sequent_trace(seq_report) == sequent_trace(par_report)
        assert aggregate_trace(seq_report) == aggregate_trace(par_report)
    assert statistics_trace(sequential) == statistics_trace(parallel)


@pytest.mark.parametrize("jobs", [2, 4])
def test_fast_classes_differential_cache_on(jobs):
    assert_differential(structures(FAST_CLASSES), jobs=jobs, use_cache=True)


def test_fast_classes_differential_cache_off():
    # Without a cache the parallel scheduler must not deduplicate either:
    # every sequent ships to a worker, exactly as the sequential loop
    # re-proves every duplicate.
    assert_differential(structures(FAST_CLASSES[:2]), jobs=2, use_cache=False)


def test_parallel_run_stats_accounting():
    engine = make_engine(jobs=2, use_cache=True)
    (cls,) = structures(("Linked List",))
    report = engine.verify_class(cls)
    stats = engine.last_parallel_stats
    assert stats is not None
    assert stats.jobs == 2
    assert stats.sequents_total == report.sequents_total
    assert (
        stats.dispatched
        + stats.hits_memory
        + stats.hits_disk
        + stats.duplicates_folded
        == stats.sequents_total
    )
    assert sum(load.tasks for load in stats.workers) == stats.dispatched
    # A second run over the same class is answered fully from the warm
    # in-memory cache -- no worker pool is even started.
    engine.verify_class(cls)
    rerun = engine.last_parallel_stats
    assert rerun.dispatched == 0
    assert rerun.hits_memory == rerun.sequents_total
    assert rerun.workers == []


def test_jobs_one_is_the_sequential_path():
    engine = make_engine(jobs=1, use_cache=True)
    (cls,) = structures(("Array List",))
    engine.verify_class(cls)
    assert engine.last_parallel_stats is None


def test_parallel_override_per_call():
    engine = make_engine(jobs=1, use_cache=True)
    (cls,) = structures(("Array List",))
    engine.verify_class(cls, parallel=2)
    assert engine.last_parallel_stats is not None
    assert engine.last_parallel_stats.jobs == 2


@pytest.mark.slow
@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_full_catalog_differential_cache_on(jobs):
    """Acceptance sweep: identical verdicts for every catalog class."""
    assert_differential(structures(), jobs=jobs, use_cache=True)


@pytest.mark.slow
def test_full_catalog_differential_cache_off():
    assert_differential(structures(), jobs=2, use_cache=False)


@pytest.mark.slow
def test_full_catalog_differential_strip_proofs():
    """The Table 2 ablation (stripped proofs) is differential too."""
    sequential = make_engine(jobs=1, use_cache=True)
    parallel = make_engine(jobs=3, use_cache=True)
    for cls in structures():
        seq_report = sequential.verify_class(cls, strip_proofs=True)
        par_report = parallel.verify_class(cls, strip_proofs=True)
        assert sequent_trace(seq_report) == sequent_trace(par_report)
        assert aggregate_trace(seq_report) == aggregate_trace(par_report)
