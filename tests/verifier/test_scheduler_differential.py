"""Differential harness: suite scheduling must equal per-class sequential runs.

The suite scheduler (:mod:`repro.verifier.scheduler`) plans the whole
catalogue as one job graph and interleaves dispatch longest-class-first.
None of that may be observable in the results: for every ``jobs`` value, a
``verify_suite`` run must produce per-sequent verdicts, prover attribution,
cache provenance and portfolio counters bit-identical to a fresh engine
calling ``verify_class`` on the same classes in the same order.

Fast classes run in tier 1; the full catalogue at ``jobs in {1, 2, 4}`` is
marked ``slow`` (run it with ``pytest -m slow``).
"""

from __future__ import annotations

import pytest

from repro.provers.dispatch import default_portfolio
from repro.suite import all_structures
from repro.suite.catalog import CLASS_COST_HINTS, DEFAULT_COST_HINT, cost_hint
from repro.verifier.engine import VerificationEngine
from repro.verifier.scheduler import plan_dispatch_order

from test_parallel_differential import (
    FAST_CLASSES,
    TIMEOUT_SCALE,
    aggregate_trace,
    make_engine,
    sequent_trace,
    statistics_trace,
    structures,
)


def assert_suite_differential(classes, jobs: int, use_cache: bool = True) -> None:
    sequential = make_engine(jobs=1, use_cache=use_cache)
    seq_reports = [sequential.verify_class(cls) for cls in classes]
    suite = make_engine(jobs=jobs, use_cache=use_cache)
    suite_reports = suite.verify_suite(classes)
    for seq_report, suite_report in zip(seq_reports, suite_reports):
        assert sequent_trace(seq_report) == sequent_trace(suite_report)
        assert aggregate_trace(seq_report) == aggregate_trace(suite_report)
    assert statistics_trace(sequential) == statistics_trace(suite)
    stats = suite.last_suite_stats
    assert stats is not None
    assert stats.jobs == jobs
    # Every sequent is accounted for exactly once.
    assert (
        stats.dispatched
        + stats.hits_memory
        + stats.hits_disk
        + stats.duplicates_folded
        == stats.sequents_total
    )
    assert sum(cls.sequents for cls in stats.classes) == stats.sequents_total
    assert sum(cls.dispatched for cls in stats.classes) == stats.dispatched


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_fast_classes_suite_differential(jobs):
    assert_suite_differential(structures(FAST_CLASSES), jobs=jobs)


def test_fast_classes_suite_differential_cache_off():
    # Without a cache nothing may be deduplicated either -- the sequential
    # loop re-proves every duplicate, so the suite must ship them all.
    classes = structures(FAST_CLASSES[:2])
    sequential = make_engine(jobs=1, use_cache=False)
    seq_reports = [sequential.verify_class(cls) for cls in classes]
    suite = make_engine(jobs=2, use_cache=False)
    suite_reports = suite.verify_suite(classes)
    for seq_report, suite_report in zip(seq_reports, suite_reports):
        assert sequent_trace(seq_report) == sequent_trace(suite_report)
    stats = suite.last_suite_stats
    assert stats.duplicates_folded == 0
    assert stats.dispatched == stats.sequents_total


def test_suite_equals_per_class_parallel():
    """Suite scheduling and per-class sharding agree with each other too."""
    classes = structures(FAST_CLASSES)
    per_class = make_engine(jobs=2, use_cache=True)
    per_class_reports = [per_class.verify_class(cls) for cls in classes]
    suite = make_engine(jobs=2, use_cache=True)
    suite_reports = suite.verify_suite(classes)
    for a, b in zip(per_class_reports, suite_reports):
        assert sequent_trace(a) == sequent_trace(b)
    assert statistics_trace(per_class) == statistics_trace(suite)


def test_dispatch_order_is_longest_class_first():
    classes = all_structures()
    order = plan_dispatch_order(classes)
    hints = [cost_hint(classes[index].name) for index in order]
    assert hints == sorted(hints, reverse=True)
    # The catalogue stragglers lead the schedule.
    names = [classes[index].name for index in order]
    assert names[0] == "Priority Queue"
    assert set(names[:3]) == {"Priority Queue", "Hash Table", "Binary Tree"}


def test_cost_hints_cover_catalogue():
    for cls in all_structures():
        assert cls.name in CLASS_COST_HINTS
        assert cost_hint(cls.name) == CLASS_COST_HINTS[cls.name]
    assert cost_hint("No Such Structure") == DEFAULT_COST_HINT


def test_suite_report_order_is_input_order():
    classes = structures(FAST_CLASSES)
    engine = make_engine(jobs=2, use_cache=True)
    reports = engine.verify_suite(classes)
    assert [report.class_name for report in reports] == [cls.name for cls in classes]
    # The schedule order differs from the input order (cost-sorted), yet
    # the reports come back in input order.
    assert engine.last_suite_stats.schedule_order != [cls.name for cls in classes]


def test_suite_warm_second_run_dispatches_nothing():
    classes = structures(FAST_CLASSES[:2])
    engine = make_engine(jobs=2, use_cache=True)
    engine.verify_suite(classes)
    first = engine.last_suite_stats
    assert first.dispatched > 0
    reports = engine.verify_suite(classes)
    second = engine.last_suite_stats
    assert second.dispatched == 0
    assert second.hits_memory == second.sequents_total
    for report in reports:
        for method in report.methods:
            for outcome in method.outcomes:
                assert outcome.dispatch.cached
                assert outcome.dispatch.cache_origin == "memory"


def test_suite_cross_class_dedup_folds_repeats():
    """A sequent repeated across classes is proved exactly once.

    Scheduling the same class twice makes every sequent of the second
    copy a cross-class duplicate: it must fold onto the pending
    representative from the first copy (never dispatch), and the verdicts
    and counters must still match a sequential engine, which proves the
    first copy and answers the second from its warm cache.
    """
    cls = structures(FAST_CLASSES[:1])[0]
    assert_suite_differential([cls, cls], jobs=2)
    engine = make_engine(jobs=2, use_cache=True)
    engine.verify_suite([cls, cls])
    stats = engine.last_suite_stats
    first_copy, second_copy = stats.classes
    assert second_copy.dispatched == 0
    assert second_copy.duplicates_folded == second_copy.sequents > 0
    assert stats.duplicates_folded >= second_copy.sequents
    assert stats.dispatched <= first_copy.sequents


def test_suite_second_engine_serves_from_disk(tmp_path):
    """Verifying the same class list twice through a persistent store:
    the second engine answers everything from disk."""
    classes = structures(FAST_CLASSES[:2])
    first = VerificationEngine(
        default_portfolio().scaled(TIMEOUT_SCALE),
        jobs=2,
        cache_dir=tmp_path,
    )
    first.verify_suite(classes)
    second = VerificationEngine(
        default_portfolio().scaled(TIMEOUT_SCALE),
        jobs=2,
        cache_dir=tmp_path,
    )
    second.verify_suite(classes)
    stats = second.last_suite_stats
    assert stats.dispatched == 0
    assert stats.hits_disk == stats.sequents_total


@pytest.mark.slow
@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_full_catalogue_suite_differential(jobs):
    assert_suite_differential(all_structures(), jobs=jobs)
