"""Edge-case coverage for the report renderers.

``format_parallel`` / ``format_suite`` / ``format_verify`` were only
exercised on happy-path runs; these tests pin down the degenerate shapes a
serving system actually produces: empty classes, all-cache-hit runs that
never start a worker, and worker-crash runs whose surviving workers carry
requeued load (remote backend, string worker identities).
"""

from __future__ import annotations

import pytest

from repro.suite import structure_by_name
from repro.verifier.daemon import VerifierDaemon
from repro.verifier.engine import ClassReport, MethodReport, VerificationEngine
from repro.verifier.parallel import ParallelRunStats, WorkerLoad
from repro.verifier.report import format_parallel, format_suite, format_verify
from repro.verifier.scheduler import ClassScheduleStats, SuiteRunStats


class TestFormatParallel:
    def test_empty_run_renders(self):
        text = format_parallel(ParallelRunStats(jobs=2))
        assert "Parallel dispatch (2 jobs" in text
        assert "sequents total      0" in text
        assert "shipped to workers  0" in text

    def test_all_cache_hit_run_has_no_workers(self):
        stats = ParallelRunStats(jobs=4)
        stats.sequents_total = 40
        stats.hits_memory = 30
        stats.hits_disk = 10
        text = format_parallel(stats)
        assert "answered from cache 40 (memory 30, disk 10)" in text
        assert "worker " not in text  # nothing was dispatched

    def test_remote_worker_labels_render(self):
        stats = ParallelRunStats(jobs=2, backend="remote")
        stats.sequents_total = 12
        stats.dispatched = 12
        stats.fold_worker("host-a/101", 8, 1.5)
        stats.fold_worker("host-b/202", 4, 0.5)
        text = format_parallel(stats)
        assert "remote" in text
        assert "worker host-a/101" in text
        assert "worker host-b/202" in text

    def test_worker_crash_partial_results(self):
        # A remote run where one worker died mid-run: its partial load is
        # still attributed, the survivor carries the requeued rest.
        stats = ParallelRunStats(jobs=2, backend="remote")
        stats.sequents_total = 10
        stats.dispatched = 10
        stats.fold_worker("dead-host/1", 2, 0.3)
        stats.fold_worker("live-host/2", 8, 2.1)
        text = format_parallel(stats)
        assert "worker dead-host/1" in text and "2 sequents" in text
        assert "worker live-host/2" in text and "8 sequents" in text
        # Accounting still closes even though a worker vanished.
        assert sum(load.tasks for load in stats.workers) == stats.dispatched

    def test_fold_worker_accumulates_by_identity(self):
        stats = ParallelRunStats(jobs=2)
        stats.fold_worker(1234, 1, 0.1)
        stats.fold_worker(1234, 2, 0.2)
        stats.fold_worker("host/1234", 1, 0.1)  # a label is a new identity
        assert [load.pid for load in stats.workers] == [1234, "host/1234"]
        assert stats.workers[0].tasks == 3
        assert stats.workers[0].prover_time == pytest.approx(0.3)
        assert isinstance(stats.workers[0], WorkerLoad)

    def test_merge_keeps_remote_backend(self):
        total = ParallelRunStats(jobs=2)
        run = ParallelRunStats(jobs=2, backend="remote")
        run.sequents_total = 3
        total.merge(run)
        assert total.backend == "remote"
        assert total.sequents_total == 3


class TestFormatSuite:
    def test_empty_suite_renders(self):
        stats = SuiteRunStats(jobs=2)
        text = format_suite(stats)
        assert "Suite schedule (2 jobs" in text
        assert "dispatch order" in text

    def test_empty_class_row_renders(self):
        stats = SuiteRunStats(jobs=1)
        stats.schedule_order = ["Empty Thing"]
        stats.classes.append(
            ClassScheduleStats(class_name="Empty Thing", cost_hint=0.5)
        )
        text = format_suite(stats)
        assert "Empty Thing" in text
        # All-zero row: sequents, dispatched, cache, dup.
        row = next(
            line
            for line in text.splitlines()
            if line.strip().startswith("Empty Thing")
        )
        assert row.split()[-4:] == ["0", "0", "0", "0"]

    def test_all_cache_hit_class(self):
        stats = SuiteRunStats(jobs=2)
        stats.sequents_total = 20
        stats.hits_memory = 20
        stats.schedule_order = ["Warm Class"]
        stats.classes.append(
            ClassScheduleStats(
                class_name="Warm Class",
                cost_hint=3.0,
                sequents=20,
                hits_memory=20,
            )
        )
        text = format_suite(stats)
        assert "answered from cache 20 (memory 20, disk 0)" in text
        row = next(
            line
            for line in text.splitlines()
            if line.strip().startswith("Warm Class")
        )
        assert row.split()[-3:] == ["0", "20", "0"]  # dispatched, cache, dup


class TestFormatVerify:
    def test_empty_class_report(self):
        text = format_verify(ClassReport("Empty"))
        assert text == "total: 0/0 sequents, 0/0 methods, 0.0s"

    def test_method_with_no_sequents(self):
        report = ClassReport("Thin")
        report.methods.append(MethodReport("Thin", "noop"))
        text = format_verify(report)
        assert "Thin.noop: 0/0 sequents" in text
        assert text.endswith("total: 0/0 sequents, 1/1 methods, 0.0s")


class TestDaemonEmptySuite:
    def test_suite_op_with_empty_names(self, tmp_path):
        daemon = VerifierDaemon(
            tmp_path / "x.sock", engine=VerificationEngine(persist=False)
        )
        try:
            response = daemon.handle({"op": "suite", "names": []})
            assert response["ok"]
            assert response["reports"] == []
            assert "Suite schedule" in response["output"]
        finally:
            daemon.close()

    def test_verify_op_unknown_name_is_clean(self, tmp_path):
        daemon = VerifierDaemon(
            tmp_path / "y.sock", engine=VerificationEngine(persist=False)
        )
        try:
            response = daemon.handle({"op": "verify", "name": "Nope"})
            assert not response["ok"] and "Nope" in response["error"]
        finally:
            daemon.close()

    def test_report_payload_shape(self, tmp_path):
        daemon = VerifierDaemon(
            tmp_path / "z.sock", engine=VerificationEngine(persist=False)
        )
        try:
            cls = structure_by_name("Linked List")
            response = daemon.handle({"op": "verify", "name": cls.name})
            assert response["ok"]
            payload = response["report"]
            assert payload["class"] == cls.name
            assert payload["sequents_total"] == sum(
                len(method["outcomes"]) for method in payload["methods"]
            )
        finally:
            daemon.close()
