"""Direct coverage for :mod:`repro.verifier.strip` (the Table 2 ablation).

The stripper was previously exercised only through ``verify_class(...,
strip_proofs=True)``; these tests pin its structural contract down on
hand-built methods (nested control flow, ``from`` clauses) and on the real
catalogue (no proof construct survives anywhere, plain specifications stay
untouched, inputs are never mutated).
"""

from __future__ import annotations

from repro.frontend.ast import (
    AssertStmt,
    Assign,
    If,
    Method,
    ProofStmt,
    Stmt,
    While,
)
from repro.logic.terms import TRUE, Var
from repro.logic.sorts import BOOL, INT
from repro.proofs.constructs import Note
from repro.suite import all_structures
from repro.verifier.strip import strip_proofs_from_class, strip_proofs_from_method


def _note(label: str) -> ProofStmt:
    return ProofStmt(Note(label, TRUE))


def _walk(statements: tuple[Stmt, ...]):
    for statement in statements:
        yield statement
        yield from _walk(statement.substatements())


def build_method() -> Method:
    x = Var("x", INT)
    cond = Var("c", BOOL)
    body = (
        _note("top"),
        Assign(x, x),
        AssertStmt(TRUE, label="WithFrom", from_hints=("inv1", "inv2")),
        If(
            cond,
            then_branch=(_note("then"), Assign(x, x)),
            else_branch=(
                While(cond, TRUE, body=(_note("loop"), Assign(x, x))),
            ),
        ),
    )
    return Method(name="m", body=body, locals=(x, cond))


class TestHandBuiltMethod:
    def test_proof_statements_removed_everywhere(self):
        stripped = strip_proofs_from_method(build_method())
        assert all(not isinstance(stmt, ProofStmt) for stmt in _walk(stripped.body))
        # Nested structure survives: the If and its While are still there.
        kinds = [type(stmt).__name__ for stmt in _walk(stripped.body)]
        assert "If" in kinds and "While" in kinds

    def test_from_hints_are_cleared_but_assert_kept(self):
        stripped = strip_proofs_from_method(build_method())
        asserts = [
            stmt for stmt in _walk(stripped.body) if isinstance(stmt, AssertStmt)
        ]
        assert len(asserts) == 1
        assert asserts[0].label == "WithFrom"
        assert asserts[0].from_hints == ()

    def test_ordinary_statements_survive_in_order(self):
        stripped = strip_proofs_from_method(build_method())
        top_level = [type(stmt).__name__ for stmt in stripped.body]
        assert top_level == ["Assign", "AssertStmt", "If"]

    def test_original_method_is_untouched(self):
        method = build_method()
        strip_proofs_from_method(method)
        assert isinstance(method.body[0], ProofStmt)
        assert method.body[2].from_hints == ("inv1", "inv2")

    def test_idempotent(self):
        once = strip_proofs_from_method(build_method())
        twice = strip_proofs_from_method(once)
        assert once == twice

    def test_method_without_proofs_is_structurally_identical(self):
        x = Var("x", INT)
        method = Method(name="plain", body=(Assign(x, x),), locals=(x,))
        assert strip_proofs_from_method(method) == method


class TestCatalogue:
    def test_no_proof_construct_survives_any_class(self):
        for cls in all_structures():
            stripped = strip_proofs_from_class(cls)
            for method in stripped.methods:
                for stmt in _walk(method.body):
                    assert not isinstance(stmt, ProofStmt), (
                        cls.name,
                        method.name,
                    )
                    if isinstance(stmt, AssertStmt):
                        assert stmt.from_hints == (), (cls.name, method.name)

    def test_specifications_are_kept(self):
        for cls in all_structures():
            stripped = strip_proofs_from_class(cls)
            assert stripped.name == cls.name
            assert stripped.invariants == cls.invariants
            assert stripped.spec_vars == cls.spec_vars
            assert len(stripped.methods) == len(cls.methods)
            for original, bare in zip(cls.methods, stripped.methods):
                assert bare.name == original.name
                assert bare.contract == original.contract
                # While loops keep their invariants.
                for stmt in _walk(bare.body):
                    if isinstance(stmt, While):
                        assert stmt.invariant is not None

    def test_catalogue_actually_contains_proofs_to_strip(self):
        # Guard the guards: if the catalogue lost its proof constructs,
        # the tests above would pass vacuously.
        total = 0
        for cls in all_structures():
            for method in cls.methods:
                total += sum(
                    1
                    for stmt in _walk(method.body)
                    if isinstance(stmt, ProofStmt)
                )
        assert total > 10
