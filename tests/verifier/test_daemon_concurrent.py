"""Concurrent request handling and the TCP transport of the daemon.

PR 3's daemon served one connection at a time: a long ``table1`` made even
``ping`` queue behind it.  These tests pin the new contract: every
connection gets its own thread, engine ops serialize on the engine lock,
``nowait`` turns queueing into an immediate busy error, and the TCP
listener authenticates every client with the shared-secret handshake.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.provers.dispatch import default_portfolio
from repro.verifier.daemon import (
    DaemonClient,
    DaemonError,
    VerifierDaemon,
)
from repro.verifier.engine import VerificationEngine

TIMEOUT_SCALE = 0.4
SECRET = b"daemon-test-secret"


def start_daemon(daemon: VerifierDaemon, secret: bytes | None = None):
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    client = DaemonClient(daemon.address, secret=secret)
    deadline = time.monotonic() + 10.0
    while True:
        try:
            client.ping()
            return client, thread
        except DaemonError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.02)
            # TCP daemons resolve ":0" to a real port only after bind.
            client = DaemonClient(daemon.address, secret=secret)


@pytest.fixture()
def unix_daemon(tmp_path):
    daemon = VerifierDaemon(
        tmp_path / "jahob.sock",
        engine=VerificationEngine(
            default_portfolio().scaled(TIMEOUT_SCALE), persist=False
        ),
    )
    client, thread = start_daemon(daemon)
    yield daemon, client
    if thread.is_alive():
        daemon.stop()
        thread.join(timeout=10.0)
    daemon.close()


class TestConcurrentRequests:
    def test_ping_is_served_while_engine_op_runs(self, unix_daemon):
        daemon, client = unix_daemon
        started = threading.Event()
        release = threading.Event()

        def slow_verify(request):
            started.set()
            assert release.wait(30.0)
            return {"slow": True}

        daemon._op_verify = slow_verify  # instance attr wins in handle()
        responses = {}

        def long_request():
            responses["slow"] = client.request({"op": "verify", "name": "x"})

        worker = threading.Thread(target=long_request, daemon=True)
        worker.start()
        try:
            assert started.wait(10.0), "slow op never started"
            # The engine is busy, yet ping and list answer immediately.
            t0 = time.monotonic()
            assert client.ping()["ok"]
            names = client.request({"op": "list"})
            assert names["ok"] and len(names["structures"]) == 8
            assert time.monotonic() - t0 < 5.0
            assert not responses, "slow op finished too early"
        finally:
            release.set()
        worker.join(timeout=10.0)
        assert responses["slow"]["ok"] and responses["slow"]["slow"]

    def test_nowait_engine_op_reports_busy(self, unix_daemon):
        daemon, client = unix_daemon
        started = threading.Event()
        release = threading.Event()

        def slow_verify(request):
            started.set()
            assert release.wait(30.0)
            return {}

        daemon._op_verify = slow_verify
        worker = threading.Thread(
            target=lambda: client.request({"op": "verify", "name": "x"}),
            daemon=True,
        )
        worker.start()
        try:
            assert started.wait(10.0)
            busy = client.request({"op": "table1", "nowait": True})
            assert not busy["ok"]
            assert busy.get("busy") is True
            assert "busy" in busy["error"]
            # Non-engine ops never report busy.
            assert client.request({"op": "ping", "nowait": True})["ok"]
        finally:
            release.set()
        worker.join(timeout=10.0)

    def test_engine_ops_serialize(self, unix_daemon):
        """Two overlapping verify requests both succeed, one after the
        other -- the engine lock queues, it does not reject."""
        daemon, client = unix_daemon
        order = []
        lock_probe = threading.Lock()

        def recording_verify(request):
            with lock_probe:
                order.append(("start", request["name"]))
            time.sleep(0.1)
            with lock_probe:
                order.append(("end", request["name"]))
            return {}

        daemon._op_verify = recording_verify
        threads = [
            threading.Thread(
                target=lambda n=name: client.request({"op": "verify", "name": n}),
                daemon=True,
            )
            for name in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        # Strict nesting is impossible: starts and ends alternate.
        assert len(order) == 4
        assert [kind for kind, _ in order] == ["start", "end", "start", "end"]


class TestTcpDaemon:
    def test_tcp_end_to_end_with_handshake(self, tmp_path):
        daemon = VerifierDaemon(
            "127.0.0.1:0",
            engine=VerificationEngine(
                default_portfolio().scaled(TIMEOUT_SCALE), persist=False
            ),
            secret=SECRET,
        )
        client, thread = start_daemon(daemon, secret=SECRET)
        try:
            assert daemon.address.split(":")[1] != "0"  # port resolved
            pong = client.ping()
            assert pong["ok"]
            response = client.request({"op": "verify", "name": "Linked List"})
            assert response["ok"] and response["report"]["verified"]
            assert response["output"].splitlines()[-1].startswith("total:")
        finally:
            client.shutdown()
            thread.join(timeout=10.0)
            daemon.close()

    def test_tcp_requires_secret(self):
        with pytest.raises(DaemonError, match="secret"):
            VerifierDaemon("127.0.0.1:0", engine=VerificationEngine())

    def test_wrong_secret_is_rejected(self, tmp_path):
        daemon = VerifierDaemon(
            "127.0.0.1:0", engine=VerificationEngine(persist=False), secret=SECRET
        )
        client, thread = start_daemon(daemon, secret=SECRET)
        try:
            intruder = DaemonClient(daemon.address, secret=b"wrong")
            with pytest.raises(DaemonError, match="handshake"):
                intruder.ping()
            keyless = DaemonClient(daemon.address)
            with pytest.raises(DaemonError, match="secret"):
                keyless.ping()
            # The daemon survives rejected peers.
            assert client.ping()["ok"]
        finally:
            daemon.stop()
            thread.join(timeout=10.0)
            daemon.close()
