"""Daemon watch mode: subscription streaming over a live unix socket.

A background editor thread rewrites the watched file while the main
thread consumes the stream through the same :meth:`DaemonClient.watch`
generator the CLI uses, so the tests pin the full loop: subscribe,
baseline verdict, edit detection, incremental delta (only dirty sequents
re-dispatch), mid-edit error tolerance, and -- the shutdown regression --
a daemon stopping under an active subscription closes it cleanly instead
of leaving the client blocked on a read.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.verifier.daemon import (
    PROTOCOL_VERSION,
    DaemonClient,
    DaemonError,
    VerifierDaemon,
)

TIMEOUT_SCALE = 0.4

BASE_PROGRAM = '''
from repro.suite.common import StructureBuilder


def build_toggle():
    s = StructureBuilder("Toggle")
    s.concrete("on", "int")
    s.invariant("Bit", "0 <= on & on <= 1")
    m = s.method("flip", modifies="on", ensures="on = 1 - old on")
    m.assign("on", "1 - on")
    m.done()
    return s.build()
'''

#: Same class, one edited postcondition -- still provable, and an extra
#: conjunct no other obligation of the class shares a fingerprint with
#: (``0 <= on`` would dedup against the invariant-restoration sequent).
EDITED_PROGRAM = BASE_PROGRAM.replace(
    '"on = 1 - old on"', '"on = 1 - old on & on + old on = 1"'
)


@pytest.fixture()
def daemon(tmp_path):
    """A serving daemon (background thread), a client, and a program file."""
    program = tmp_path / "toggle.py"
    program.write_text(BASE_PROGRAM)
    instance = VerifierDaemon(
        tmp_path / "jahob.sock",
        jobs=1,
        cache_dir=tmp_path / "cache",
        timeout_scale=TIMEOUT_SCALE,
    )
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    client = DaemonClient(instance.socket_path)
    deadline = time.monotonic() + 5.0
    while True:
        try:
            client.ping()
            break
        except DaemonError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.02)
    yield instance, client, thread, program
    if thread.is_alive():
        instance.stop()
        thread.join(timeout=10.0)
    instance.close()


def edit_after_first_verdict(events, program, text):
    """A thread that rewrites ``program`` once the baseline verdict lands."""

    def run():
        deadline = time.monotonic() + 30.0
        while not any(e.get("event") == "verdicts" for e in events):
            if time.monotonic() > deadline:
                return
            time.sleep(0.02)
        program.write_text(text)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


def test_watch_is_socket_only(daemon):
    """``watch`` streams; it must stay off the request/response op table
    (and therefore off the HTTP front door -- see docs/service-api.md)."""
    instance, _, _, _ = daemon
    response = instance.handle({"op": "watch"})
    assert not response["ok"] and "unknown op" in response["error"]


def test_watch_streams_baseline_then_incremental_delta(daemon):
    instance, client, _, program = daemon
    events = []
    editor = edit_after_first_verdict(events, program, EDITED_PROGRAM)
    for event in client.watch(
        {"path": str(program), "interval": 0.1, "max_events": 2}
    ):
        events.append(event)
    editor.join(timeout=10.0)

    assert [e.get("event") for e in events] == [
        "subscribed",
        "verdicts",
        "verdicts",
        "closed",
    ]
    subscribed = events[0]
    assert subscribed["ok"] and subscribed["protocol"] == PROTOCOL_VERSION

    baseline, delta = events[1], events[2]
    assert baseline["verified"] and baseline["generation"] == 1
    (cold,) = baseline["classes"]
    assert cold["incremental"]["cold_start"]
    assert cold["incremental"]["dispatched"] == cold["sequents_total"] > 0

    assert delta["verified"] and delta["generation"] == 2
    (warm,) = delta["classes"]
    incremental = warm["incremental"]
    assert not incremental["cold_start"]
    # Only the sequents the edit invalidated were re-dispatched.
    assert 0 < incremental["dispatched"] < warm["sequents_total"]
    assert incremental["sequents_dirty"] == incremental["dispatched"]
    assert incremental["sequents_clean"] > 0
    # The carried PR 5 follow-up: every delta surfaces the live metrics
    # snapshot, including the watch section itself.
    watch_metrics = delta["metrics"]["watch"]
    assert watch_metrics["active"] == 1
    assert watch_metrics["events"] == 2
    assert watch_metrics["latency"]["count"] == 2

    closed = events[3]
    assert closed["reason"] == "max_events" and closed["events"] == 2
    assert instance.watch_active == 0
    assert instance.watch_subscriptions == 1


def test_watch_survives_mid_edit_syntax_error(daemon):
    _, client, _, program = daemon
    events = []

    def editor():
        deadline = time.monotonic() + 30.0
        while not any(e.get("event") == "verdicts" for e in events):
            if time.monotonic() > deadline:
                return
            time.sleep(0.02)
        program.write_text("def broken(:\n")  # a save mid-keystroke
        while not any(e.get("event") == "error" for e in events):
            if time.monotonic() > deadline:
                return
            time.sleep(0.02)
        program.write_text(EDITED_PROGRAM)

    thread = threading.Thread(target=editor, daemon=True)
    thread.start()
    for event in client.watch(
        {"path": str(program), "interval": 0.1, "max_events": 3}
    ):
        events.append(event)
    thread.join(timeout=10.0)

    kinds = [e.get("event") for e in events]
    assert kinds == ["subscribed", "verdicts", "error", "verdicts", "closed"]
    error = events[2]
    assert error["ok"] and "toggle.py" in error["error"]
    # The stream recovered: the post-fix verdict is a warm incremental one.
    (warm,) = events[3]["classes"]
    assert not warm["incremental"]["cold_start"]


def test_watch_rejects_bad_requests(daemon):
    _, client, _, program = daemon
    missing = list(client.watch({"path": str(program) + ".nope"}))
    assert len(missing) == 1
    assert not missing[0]["ok"] and "no such file" in missing[0]["error"]
    bad_budget = list(client.watch({"path": str(program), "max_events": 0}))
    assert len(bad_budget) == 1 and not bad_budget[0]["ok"]


def test_shutdown_closes_active_watch_cleanly(daemon):
    """A daemon stopping under a live subscription must end the stream
    with a ``closed`` event (no hung client read) and unlink its socket."""
    instance, client, thread, program = daemon
    events = []
    done = threading.Event()

    def subscribe():
        try:
            for event in client.watch({"path": str(program), "interval": 0.1}):
                events.append(event)
        finally:
            done.set()

    watcher = threading.Thread(target=subscribe, daemon=True)
    watcher.start()
    deadline = time.monotonic() + 30.0
    while not any(e.get("event") == "verdicts" for e in events):
        assert time.monotonic() < deadline, f"no baseline verdict: {events}"
        time.sleep(0.02)

    shutdown_client = DaemonClient(instance.socket_path)
    assert shutdown_client.shutdown()["ok"]

    assert done.wait(timeout=10.0), "watch client still blocked after shutdown"
    watcher.join(timeout=10.0)
    closed = events[-1]
    assert closed.get("event") == "closed" and closed["reason"] == "shutdown"
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    assert not instance.socket_path.exists()
    assert instance.watch_active == 0
