"""Unit tests for the shared wire layer (framing, addresses, handshake)."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.verifier.wire import (
    HandshakeError,
    LineChannel,
    WireError,
    decode_payload,
    encode_payload,
    format_address,
    handshake_accept,
    handshake_connect,
    is_tcp_address,
    load_secret,
    parse_address,
)


def channel_pair() -> tuple[LineChannel, LineChannel]:
    left, right = socket.socketpair()
    return LineChannel(left), LineChannel(right)


class TestAddresses:
    def test_host_port_is_tcp(self):
        assert parse_address("127.0.0.1:8700") == ("tcp", ("127.0.0.1", 8700))
        assert parse_address(":9000") == ("tcp", ("0.0.0.0", 9000))
        assert parse_address("example.org:1") == ("tcp", ("example.org", 1))

    def test_paths_are_unix(self):
        assert parse_address(".jahob.sock") == ("unix", ".jahob.sock")
        assert parse_address("/tmp/with:colon/x.sock")[0] == "unix"
        assert parse_address("relative/dir/jahob.sock")[0] == "unix"
        assert parse_address("host:notaport")[0] == "unix"

    def test_is_tcp_and_format(self):
        assert is_tcp_address("h:1") and not is_tcp_address("h.sock")
        assert format_address("127.0.0.1:80") == "127.0.0.1:80"
        assert format_address("x.sock") == "x.sock"


class TestLineChannel:
    def test_many_messages_one_buffer(self):
        a, b = channel_pair()
        # Two messages can land in one recv() chunk; the channel must
        # buffer past the first newline instead of discarding.
        a.sock.sendall(b'{"n":1}\n{"n":2}\n')
        assert b.recv() == {"n": 1}
        assert b.recv() == {"n": 2}
        a.close()
        assert b.recv() is None  # clean EOF between messages
        b.close()

    def test_send_recv_roundtrip(self):
        a, b = channel_pair()
        a.send({"op": "hello", "pid": 42})
        assert b.recv() == {"op": "hello", "pid": 42}
        b.send({"ok": True})
        assert a.recv() == {"ok": True}
        a.close()
        b.close()

    def test_eof_mid_message_is_an_error(self):
        a, b = channel_pair()
        a.sock.sendall(b'{"trunc')
        a.close()
        with pytest.raises(WireError, match="mid-message"):
            b.recv()
        b.close()

    def test_oversized_line_is_an_error(self):
        a, b = channel_pair()
        b.limit = 64
        a.sock.sendall(b"x" * 100)
        with pytest.raises(WireError, match="too large"):
            b.recv()
        a.close()
        b.close()

    def test_non_object_line_is_an_error(self):
        a, b = channel_pair()
        a.sock.sendall(b"[1,2]\n")
        with pytest.raises(WireError, match="not a JSON object"):
            b.recv()
        a.close()
        b.close()


def run_handshake(secret_a: bytes, secret_b: bytes, expect_role=None):
    """Acceptor with ``secret_a`` meets dialer with ``secret_b``."""
    a, b = channel_pair()
    results: dict = {}

    def accept():
        try:
            results["role"] = handshake_accept(a, secret_a, expect_role)
        except Exception as exc:  # noqa: BLE001 - recorded for assertions
            results["accept_error"] = exc

    thread = threading.Thread(target=accept)
    thread.start()
    try:
        handshake_connect(b, secret_b, role="worker")
    except Exception as exc:  # noqa: BLE001 - recorded for assertions
        results["connect_error"] = exc
    thread.join(5.0)
    a.close()
    b.close()
    return results


class TestHandshake:
    def test_matching_secret_succeeds(self):
        results = run_handshake(b"s3cret", b"s3cret")
        assert results.get("role") == "worker"
        assert "accept_error" not in results and "connect_error" not in results

    def test_wrong_secret_fails_both_sides(self):
        results = run_handshake(b"right", b"wrong")
        assert isinstance(results.get("accept_error"), HandshakeError)
        assert isinstance(results.get("connect_error"), HandshakeError)

    def test_unexpected_role_is_rejected(self):
        results = run_handshake(b"s", b"s", expect_role="client")
        assert isinstance(results.get("accept_error"), HandshakeError)
        assert isinstance(results.get("connect_error"), HandshakeError)

    def test_secret_never_crosses_the_wire(self):
        """Every handshake message is inspectable: none contains the secret."""
        secret = b"super-secret-value"
        captured: list[str] = []

        class SniffingChannel(LineChannel):
            def send(self, message):
                captured.append(repr(message))
                super().send(message)

        a_sock, b_sock = socket.socketpair()
        a, b = SniffingChannel(a_sock), SniffingChannel(b_sock)
        thread = threading.Thread(target=handshake_accept, args=(a, secret))
        thread.start()
        handshake_connect(b, secret, role="worker")
        thread.join(5.0)
        a.close()
        b.close()
        assert len(captured) >= 3  # challenge, answer, verdict
        for message in captured:
            assert secret.decode() not in message


class TestPayloadsAndSecrets:
    def test_payload_roundtrip(self):
        blob = {"nested": [1, 2, ("a", "b")], "flag": True}
        assert decode_payload(encode_payload(blob)) == blob

    def test_load_secret_file_beats_env(self, tmp_path, monkeypatch):
        path = tmp_path / "secret"
        path.write_text("  from-file\n")
        monkeypatch.setenv("JAHOB_SECRET", "from-env")
        assert load_secret(path) == b"from-file"
        assert load_secret(None) == b"from-env"
        monkeypatch.delenv("JAHOB_SECRET")
        assert load_secret(None) is None
