"""Adaptive scheduling: warm runs plan from measured cost profiles.

The tentpole acceptance tests of PR 5: a second suite run over a warm
persistent store plans longest-first from *measured* per-sequent timings
(the hint source is visible in the plan's statistics), non-catalogue
classes graduate from ``default`` to ``measured``, and none of it may
move a verdict -- the cost model only reorders dispatch, which the
differential harness (:mod:`test_scheduler_differential`) already pins
down for cold stores; here the warm-store variant is asserted too.

All wall-clock use is "did we measure anything", never "how fast" -- the
1-CPU container makes timing magnitudes meaningless (docs/performance.md).
"""

from __future__ import annotations

import dataclasses

from repro.provers.dispatch import default_portfolio
from repro.verifier.costmodel import HINT_DEFAULT, HINT_MEASURED, HINT_STATIC
from repro.verifier.engine import VerificationEngine
from repro.verifier.report import format_suite
from repro.verifier.scheduler import plan_dispatch_order

from test_parallel_differential import (
    FAST_CLASSES,
    TIMEOUT_SCALE,
    make_engine,
    sequent_trace,
    structures,
)

CLASSES = FAST_CLASSES[:3]


def engine_with_store(tmp_path, jobs: int = 2) -> VerificationEngine:
    return VerificationEngine(
        default_portfolio().scaled(TIMEOUT_SCALE),
        jobs=jobs,
        cache_dir=tmp_path,
    )


def test_cold_run_plans_from_static_hints(tmp_path):
    engine = engine_with_store(tmp_path)
    engine.verify_suite(structures(CLASSES))
    stats = engine.last_suite_stats
    assert {cls.hint_source for cls in stats.classes} == {HINT_STATIC}
    engine.close()


def test_warm_second_run_plans_from_measured_profiles(tmp_path):
    classes = structures(CLASSES)
    first = engine_with_store(tmp_path)
    first.verify_suite(classes)
    first.close()

    second = engine_with_store(tmp_path)
    reports = second.verify_suite(classes)
    stats = second.last_suite_stats
    # The acceptance assertion: every class's plan entry derives from
    # measured per-sequent profiles, and says so.
    assert {cls.hint_source for cls in stats.classes} == {HINT_MEASURED}
    assert all(cls.cost_hint > 0 for cls in stats.classes)
    # Fully warm: every class has zero *remaining* work, so the dispatch
    # order degenerates to input order (ties) -- and nothing dispatches.
    assert stats.schedule_order == [cls.class_name for cls in stats.classes]
    # The hint source is visible in the rendered plan too.
    rendered = format_suite(stats)
    assert "measured" in rendered and "hint src" in rendered
    # Nothing was dispatched -- the plan was measured, the answers warm.
    assert stats.dispatched == 0
    assert all(report.verified for report in reports)
    second.close()


def test_warm_store_differential_parity(tmp_path):
    """Verdicts/attribution with a warm store + active cost model equal a
    fresh sequential engine's (provenance aside: warm answers are disk
    hits)."""
    classes = structures(CLASSES)
    first = engine_with_store(tmp_path)
    first.verify_suite(classes)
    first.close()

    sequential = make_engine(jobs=1, use_cache=True)
    seq_reports = [sequential.verify_class(cls) for cls in classes]

    warm = engine_with_store(tmp_path, jobs=2)
    warm_reports = warm.verify_suite(classes)
    for seq_report, warm_report in zip(seq_reports, warm_reports):
        seq = sequent_trace(seq_report)
        wrm = sequent_trace(warm_report)
        # label/proved/refuted/prover must be identical; cached/origin
        # legitimately differ (the warm engine answers from disk).
        assert [entry[:6] for entry in seq] == [entry[:6] for entry in wrm]
        assert all(entry[6] for entry in wrm)  # everything cached
        assert {entry[7] for entry in wrm} == {"disk"}
    warm.close()


def test_non_catalogue_class_graduates_from_default_to_measured(tmp_path):
    """The DEFAULT_COST_HINT satellite: an unknown class schedules at the
    blind default only until the store has measured it once."""
    base = structures(("Array List",))[0]
    custom = dataclasses.replace(base, name="Custom Structure")

    first = engine_with_store(tmp_path)
    first.verify_suite([custom])
    cold = first.last_suite_stats.classes[0]
    assert cold.hint_source == HINT_DEFAULT
    first.close()

    second = engine_with_store(tmp_path)
    second.verify_suite([custom])
    warm = second.last_suite_stats.classes[0]
    assert warm.hint_source == HINT_MEASURED
    assert warm.cost_hint > 0
    second.close()


def test_measured_costs_update_same_engine_second_suite(tmp_path):
    """Within one engine, a repeat suite plans from the live observations
    even before anything is re-read from disk."""
    classes = structures(CLASSES[:2])
    engine = engine_with_store(tmp_path)
    engine.verify_suite(classes)
    assert {c.hint_source for c in engine.last_suite_stats.classes} == {HINT_STATIC}
    engine.verify_suite(classes)
    assert {c.hint_source for c in engine.last_suite_stats.classes} == {HINT_MEASURED}
    engine.close()


def test_dispatch_order_reflects_remaining_work_not_total_cost(tmp_path):
    """A mostly-warm expensive class must not lead a cold cheap class:
    the ordering cost is scaled by the dispatched fraction."""
    warm_cls, cold_cls = structures(CLASSES[:2])
    first = engine_with_store(tmp_path)
    first.verify_suite([warm_cls])  # warm only the first class
    first.close()

    second = engine_with_store(tmp_path)
    second.verify_suite([warm_cls, cold_cls])
    stats = second.last_suite_stats
    by_name = {cls.class_name: cls for cls in stats.classes}
    assert by_name[warm_cls.name].dispatched == 0
    assert by_name[cold_cls.name].dispatched > 0
    # The cold class's real work leads, regardless of total-cost hints.
    assert stats.schedule_order[0] == cold_cls.name
    second.close()


def test_reprofile_tracks_edited_classes(tmp_path):
    """Profiles follow the *current* class: re-running after sequents
    change rebuilds the profile instead of accumulating forever."""
    cls = structures(CLASSES[:1])[0]
    engine = engine_with_store(tmp_path)
    engine.verify_suite([cls])
    first = engine.cost_model.profiles[cls.name]
    engine.verify_suite([cls])  # warm repeat: identical ground truth
    second = engine.cost_model.profiles[cls.name]
    assert second.sequents == first.sequents
    assert second.wall == first.wall
    engine.close()


def test_profile_only_changes_still_flush(tmp_path):
    """Regression: cost-model observations land *after* the run's last
    verdict checkpoint, so a flush gated only on proof-cache mutations
    could drop a run's profiles (e.g. when the dispatch count is an exact
    multiple of the scheduler's checkpoint interval)."""
    engine = engine_with_store(tmp_path, jobs=1)
    engine.verify_class(structures(("Array List",))[0])
    assert engine.flush_persistent_cache() == 0  # nothing new since run
    engine.cost_model.observe("Phantom Class", None, wall=1.0, cpu=0.9)
    assert engine.flush_persistent_cache() > 0
    assert engine.flush_persistent_cache() == 0  # and it re-arms
    engine.persistent_store.load()
    assert "Phantom Class" in engine.persistent_store.last_profiles
    engine.close()


def test_plan_dispatch_order_accepts_explicit_costs():
    classes = structures(CLASSES)
    order = plan_dispatch_order(classes, costs=[1.0, 3.0, 2.0])
    assert order == [1, 2, 0]
    # Ties break by input order.
    assert plan_dispatch_order(classes, costs=[1.0, 1.0, 1.0]) == [0, 1, 2]


def test_measured_sequents_dispatch_longest_first_within_class(tmp_path):
    """When dispatched sequents have measured timings (store warm but the
    verdict cache cold: persist=True, cache read skipped via no_cache on
    the second engine is impossible -- instead we drop the verdict cache
    preload by clearing it), the within-class dispatch order is longest
    first."""
    classes = structures(("Array List",))
    first = engine_with_store(tmp_path)
    first.verify_suite(classes)
    first.close()

    second = engine_with_store(tmp_path)
    # Forget the preloaded verdicts but keep the cost model's timings:
    # every sequent misses the cache and is dispatched, now with a
    # measured cost attached.
    second.portfolio.proof_cache.clear()
    second.verify_suite(classes)
    stats = second.last_suite_stats
    assert stats.dispatched > 0
    assert stats.classes[0].hint_source == HINT_MEASURED
    second.close()
