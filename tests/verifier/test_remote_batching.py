"""Heterogeneous batching and pool-robustness regressions (PR 5).

These tests drive :class:`~repro.verifier.remote.RemoteWorkerPool` with
*scripted* fake workers -- in-process threads that speak the real worker
protocol (TCP + handshake + newline-JSON) through a real
:class:`~repro.verifier.remote.WorkerRegistry` -- so batch windows, task
errors and mid-run registration can be choreographed exactly, which real
``jahob-py worker`` subprocesses cannot guarantee.

Covered satellites/regressions:

* mid-run worker adoption used to be event-gated -- a newcomer sat idle
  until an existing worker answered or died; the bounded-timeout poll
  must put it to work while every live worker is mid-long-task;
* the ``error`` branch used to raise without closing the surviving
  workers' channels, leaking sockets and reader threads;
* per-worker in-flight windows scale with the EWMA of worker-reported
  per-task wall time, between 1 and ``batch_size``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.provers.dispatch import PortfolioSpec
from repro.verifier.remote import (
    RemoteWorkerError,
    RemoteWorkerPool,
    WorkerConnection,
    WorkerRegistry,
)
from repro.verifier.wire import (
    LineChannel,
    WireError,
    connect_address,
    encode_payload,
    handshake_connect,
)

SECRET = b"batching-test-secret"
SPEC = PortfolioSpec((("smt", 1.0),))


class FakeWorker(threading.Thread):
    """A scripted worker-protocol peer, registered through the registry.

    ``delay`` sleeps before each answer (synthetic slowness); ``hold``
    is an optional event each answer waits on first (a "worker deep in a
    long prover task"); ``error_on`` answers that task index with an
    ``error`` message instead of a result.
    """

    def __init__(
        self,
        registry_address: str,
        pid: int,
        name: str,
        delay: float = 0.0,
        hold: threading.Event | None = None,
        error_on: int | None = None,
    ) -> None:
        super().__init__(daemon=True, name=f"fake-worker-{name}")
        self.delay = delay
        self.hold = hold
        self.error_on = error_on
        self.received: list[int] = []
        self.answered: list[int] = []
        self.disconnected = threading.Event()
        sock = connect_address(registry_address, timeout=5.0)
        self.channel = LineChannel(sock)
        handshake_connect(self.channel, SECRET, role="worker")
        sock.settimeout(None)
        self.channel.send({"op": "hello", "pid": pid, "host": name})
        self.start()

    def run(self) -> None:
        while True:
            try:
                message = self.channel.recv()
            except WireError:
                self.disconnected.set()
                return
            if message is None or message.get("op") == "bye":
                self.disconnected.set()
                return
            if message.get("op") != "batch":
                continue
            for index, _payload in message.get("tasks", []):
                self.received.append(index)
                if index == self.error_on:
                    self.channel.send(
                        {"op": "error", "index": index, "error": "scripted boom"}
                    )
                    continue
                if self.hold is not None:
                    self.hold.wait()
                if self.delay:
                    time.sleep(self.delay)
                try:
                    self.channel.send(
                        {
                            "op": "result",
                            "index": index,
                            "wall": self.delay,
                            "payload": encode_payload(("verdict", index)),
                        }
                    )
                except WireError:
                    self.disconnected.set()
                    return
                self.answered.append(index)


@pytest.fixture()
def registry():
    instance = WorkerRegistry("127.0.0.1:0", SECRET)
    yield instance
    instance.close()


def wait_until(predicate, timeout: float = 10.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {message}"
        time.sleep(0.01)


class DummyChannel:
    def send(self, message):
        pass

    def close(self):
        pass


def connection(name: str, pid: int = 1) -> WorkerConnection:
    return WorkerConnection(
        DummyChannel(), {"pid": pid, "host": name}, address=None, origin="test"
    )


class TestWindows:
    def test_unmeasured_workers_get_the_full_window(self, registry):
        pool = RemoteWorkerPool(SPEC, registry=registry, secret=SECRET, batch_size=4)
        fast, slow = connection("fast"), connection("slow")
        assert pool._window(fast, [fast, slow]) == 4

    def test_windows_scale_with_relative_task_wall(self, registry):
        pool = RemoteWorkerPool(SPEC, registry=registry, secret=SECRET, batch_size=4)
        fast, mid, slow = connection("fast"), connection("mid"), connection("slow")
        for _ in range(8):
            fast.observe_answer(0.05, 0.05)
            mid.observe_answer(0.1, 0.1)
            slow.observe_answer(0.4, 0.4)
        peers = [fast, mid, slow]
        assert pool._window(fast, peers) == 4
        assert pool._window(mid, peers) == 2
        assert pool._window(slow, peers) == 1

    def test_lone_worker_keeps_the_full_window_however_slow(self, registry):
        pool = RemoteWorkerPool(SPEC, registry=registry, secret=SECRET, batch_size=4)
        slow = connection("slow")
        for _ in range(8):
            slow.observe_answer(5.0, 5.0)
        assert pool._window(slow, [slow]) == 4

    def test_ewma_tracks_recent_answers(self):
        worker = connection("w")
        worker.observe_answer(1.0, 1.0)
        assert worker.ewma_task_wall == 1.0
        for _ in range(30):
            worker.observe_answer(0.1, 0.1)
        assert worker.ewma_task_wall < 0.11
        # The sojourn side feeds the histogram only.
        assert worker.latency.count == 31


class TestHeterogeneousDispatch:
    def test_slow_worker_stops_hoarding_after_calibration(self, registry):
        """A slow and a fast worker share 24 tasks: once the EWMA has
        calibrated, the slow worker's window shrinks to 1 and the fast
        worker carries the bulk of the queue."""
        pool = RemoteWorkerPool(SPEC, registry=registry, secret=SECRET, batch_size=4)
        slow = FakeWorker(registry.address, pid=1, name="slow", delay=0.25)
        fast = FakeWorker(registry.address, pid=2, name="fast", delay=0.005)
        items = [(i, f"task-{i}") for i in range(24)]
        results = dict()
        for index, label, _wall, payload in pool.run(items):
            results[index] = (label, payload)
        assert set(results) == set(range(24))
        assert all(
            payload == ("verdict", index)
            for index, (_, payload) in results.items()
        )
        by_label = {w.label: w for w in pool._workers}
        slow_conn = by_label["slow/1"]
        fast_conn = by_label["fast/2"]
        # Latency metrics were recorded for every answer...
        assert slow_conn.latency.count == len(slow.answered) > 0
        assert fast_conn.latency.count == len(fast.answered) > 0
        # ...and the calibrated windows diverge: the slow worker is down
        # to single-task batches, the fast one keeps the full window.
        assert slow_conn.ewma_task_wall > fast_conn.ewma_task_wall
        assert pool._window(slow_conn, pool._workers) == 1
        assert pool._window(fast_conn, pool._workers) == 4
        # The fast worker did most of the work.
        assert len(fast.answered) > len(slow.answered)
        pool.close()

    def test_worker_metrics_are_json_ready(self, registry):
        import json

        pool = RemoteWorkerPool(SPEC, registry=registry, secret=SECRET, batch_size=2)
        # A nonzero reported wall: the EWMA tracks worker-reported task
        # time, and a zero-cost answer carries no throughput signal.
        worker = FakeWorker(registry.address, pid=7, name="metrics", delay=0.01)
        for _index, _label, _wall, _payload in pool.run([(0, "t"), (1, "u")]):
            pass
        payload = json.loads(json.dumps(pool.worker_metrics()))
        assert len(payload) == 1
        assert payload[0]["worker"] == "metrics/7"
        assert payload[0]["latency"]["count"] == 2
        assert payload[0]["ewma_task_wall"] > 0
        pool.close()
        assert worker.disconnected.wait(5.0)


class TestMidRunAdoption:
    def test_newcomer_is_adopted_while_workers_are_mid_task(self, registry):
        """Regression (satellite): adoption used to be event-gated.  With
        every live worker stuck in a long task (no events coming), a
        newly registered worker must still receive the pending tasks."""
        pool = RemoteWorkerPool(SPEC, registry=registry, secret=SECRET, batch_size=2)
        hold = threading.Event()
        stuck = FakeWorker(registry.address, pid=1, name="stuck", hold=hold)
        items = [(i, f"task-{i}") for i in range(4)]
        results: dict[int, str] = {}
        finished = threading.Event()

        def consume():
            for index, label, _wall, _payload in pool.run(items):
                results[index] = label
            finished.set()

        thread = threading.Thread(target=consume, daemon=True)
        thread.start()
        # The stuck worker received its window (it blocks inside the
        # first task, so only that one is ticked off) and holds it; two
        # tasks stay pending.
        wait_until(lambda: len(stuck.received) >= 1, message="initial batch")
        assert len(pool._workers) == 1 and len(pool._workers[0].inflight) == 2
        newcomer = FakeWorker(registry.address, pid=2, name="speedy")
        # Pre-fix this deadlocks: no event ever arrives, so the newcomer
        # is never adopted and the pending tasks never dispatch.
        wait_until(
            lambda: len(newcomer.answered) == 2,
            message="newcomer answering the pending tasks",
        )
        assert not finished.is_set()  # the stuck worker still holds two
        hold.set()
        assert finished.wait(10.0)
        assert set(results) == {0, 1, 2, 3}
        assert sorted(label for label in results.values()).count("speedy/2") == 2
        pool.close()
        thread.join(timeout=5.0)

    def test_between_run_registrations_still_adopted_up_front(self, registry):
        """The pre-existing path: workers registered before the run are
        all attached before the first dispatch."""
        pool = RemoteWorkerPool(SPEC, registry=registry, secret=SECRET, batch_size=1)
        FakeWorker(registry.address, pid=1, name="a")
        FakeWorker(registry.address, pid=2, name="b")
        # Give the registry's accept loop time to finish both handshakes.
        wait_until(lambda: registry._ready.qsize() == 2, message="registrations")
        seen = set()
        for index, label, _wall, _payload in pool.run([(i, "t") for i in range(8)]):
            seen.add(label)
        assert seen == {"a/1", "b/2"}
        pool.close()


class TestErrorCleanup:
    def test_task_error_closes_every_worker_connection(self, registry):
        """Regression (satellite): the error branch used to raise without
        closing the surviving workers, leaking sockets/reader threads."""
        pool = RemoteWorkerPool(SPEC, registry=registry, secret=SECRET, batch_size=2)
        good = FakeWorker(registry.address, pid=1, name="good", delay=0.05)
        bad = FakeWorker(registry.address, pid=2, name="bad", error_on=2)
        wait_until(lambda: registry._ready.qsize() == 2, message="registrations")
        with pytest.raises(RemoteWorkerError, match="scripted boom"):
            for _ in pool.run([(i, f"task-{i}") for i in range(4)]):
                pass
        # The pool dropped every connection before raising...
        assert pool._workers == []
        assert not pool.started
        # ...and both peers observed their connection closing.
        assert good.disconnected.wait(5.0), "surviving worker leaked"
        assert bad.disconnected.wait(5.0)

    def test_pool_recovers_after_an_error_run(self, registry):
        """A closed-on-error pool serves the next run with fresh workers
        (the between-run re-dial/adoption path)."""
        pool = RemoteWorkerPool(SPEC, registry=registry, secret=SECRET, batch_size=2)
        FakeWorker(registry.address, pid=1, name="bad", error_on=0)
        with pytest.raises(RemoteWorkerError):
            for _ in pool.run([(0, "t")]):
                pass
        FakeWorker(registry.address, pid=2, name="fresh")
        answered = dict(
            (index, label)
            for index, label, _wall, _payload in pool.run([(0, "t"), (1, "u")])
        )
        assert set(answered) == {0, 1}
        assert set(answered.values()) == {"fresh/2"}
        pool.close()
