"""The daemon's ``metrics`` op (protocol v3) and the CLI around it.

Three layers:

* :meth:`VerifierDaemon.handle` directly, for the op's semantics (cost
  model, schedule plan, cache provenance) without socket plumbing;
* a live unix-socket daemon whose engine dispatches to a real worker
  session (``serve_session`` on an in-process thread through a real
  registry + handshake), for the acceptance criterion: ``metrics``
  against a live daemon returns per-worker latency and per-class costs;
* ``jahob-py metrics --connect`` end to end, printing
  :func:`~repro.verifier.report.format_metrics`.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.verifier.cli import main
from repro.verifier.costmodel import HINT_MEASURED, HINT_STATIC
from repro.verifier.daemon import (
    PROTOCOL_VERSION,
    DaemonClient,
    DaemonError,
    VerifierDaemon,
)
from repro.verifier.wire import LineChannel, connect_address, handshake_connect
from repro.verifier.worker import serve_session

TIMEOUT_SCALE = 0.4
SECRET = b"daemon-metrics-test-secret"


def test_protocol_version_is_current():
    # The metrics op arrived in protocol v3; verify_file bumped it to 4;
    # admission control (structured rejections, priority lanes, rate
    # limits, tenant namespaces) and the HTTP front door bumped it to 5;
    # the streaming watch subscription bumped it to 6.  Ping reports
    # whatever the current version is -- pin it here so any future op
    # addition bumps the constant deliberately.
    assert PROTOCOL_VERSION == 6


class InThreadWorker(threading.Thread):
    """A *real* worker session (``serve_session``) on a thread, registered
    with a daemon's worker registry -- full protocol, no subprocess cost."""

    def __init__(self, registry_address: str) -> None:
        super().__init__(daemon=True, name="in-thread-worker")
        sock = connect_address(registry_address, timeout=5.0)
        self.channel = LineChannel(sock)
        handshake_connect(self.channel, SECRET, role="worker")
        sock.settimeout(None)
        self.start()

    def run(self) -> None:
        serve_session(self.channel)


class TestHandle:
    @pytest.fixture()
    def daemon(self, tmp_path):
        instance = VerifierDaemon(
            tmp_path / "jahob.sock",
            jobs=1,
            cache_dir=tmp_path / "cache",
            timeout_scale=TIMEOUT_SCALE,
        )
        yield instance
        instance.engine.close()

    def test_metrics_before_any_work(self, daemon):
        response = daemon.handle({"op": "metrics"})
        assert response["ok"]
        assert response["protocol"] == PROTOCOL_VERSION
        assert response["cost_model"]["classes"] == {}
        assert response["schedule"] is None
        assert response["workers"] == []
        assert response["persistent_cache"]["status"] == "cold:missing"

    def test_metrics_after_verify_and_suite(self, daemon):
        assert daemon.handle({"op": "verify", "name": "Array List"})["ok"]
        assert daemon.handle(
            {"op": "suite", "names": ["Array List", "Cursor List"]}
        )["ok"]
        response = daemon.handle({"op": "metrics"})
        assert response["ok"]
        # Per-class measured costs from the live observations.
        classes = response["cost_model"]["classes"]
        assert set(classes) == {"Array List", "Cursor List"}
        assert all(entry["wall"] > 0 for entry in classes.values())
        assert response["cost_model"]["sequent_timings"] > 0
        # Cache-hit provenance counters.
        counters = response["counters"]
        assert counters["proof_cache_hits_memory"] > 0
        assert counters["proof_cache_misses"] > 0
        # The schedule plan of the suite run, with hint sources: Array
        # List was measured by the preceding verify, Cursor List was not.
        schedule = response["schedule"]
        assert schedule["jobs"] == 1
        by_name = {entry["class"]: entry for entry in schedule["classes"]}
        assert by_name["Array List"]["source"] == HINT_MEASURED
        assert by_name["Cursor List"]["source"] == HINT_STATIC
        assert schedule["order"]

    def test_metrics_is_not_engine_gated(self, daemon):
        # A busy engine must not block metrics: nowait metrics succeeds
        # while the engine lock is held.
        assert daemon._engine_lock.acquire()
        try:
            response = daemon.handle({"op": "metrics", "nowait": True})
            assert response["ok"]
        finally:
            daemon._engine_lock.release()


class TestLiveDaemonWithRemoteWorker:
    @pytest.fixture()
    def served(self, tmp_path):
        instance = VerifierDaemon(
            tmp_path / "jahob.sock",
            cache_dir=tmp_path / "cache",
            timeout_scale=TIMEOUT_SCALE,
            secret=SECRET,
            worker_listen="127.0.0.1:0",
        )
        thread = threading.Thread(target=instance.serve_forever, daemon=True)
        thread.start()
        client = DaemonClient(instance.socket_path)
        deadline = time.monotonic() + 5.0
        while True:
            try:
                client.ping()
                break
            except DaemonError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.02)
        worker = InThreadWorker(instance.registry.address)
        yield instance, client
        instance.stop()
        thread.join(timeout=10.0)
        instance.close()
        worker.join(timeout=5.0)

    def test_metrics_returns_per_worker_latency_and_class_costs(self, served):
        """The acceptance criterion, over a real socket with a real
        worker session carrying the prover phase."""
        instance, client = served
        verify = client.request({"op": "verify", "name": "Array List"})
        assert verify["ok"] and verify["exit"] == 0

        response = client.request({"op": "metrics"})
        assert response["ok"] and response["protocol"] == PROTOCOL_VERSION
        # Per-class measured cost data...
        classes = response["cost_model"]["classes"]
        assert classes["Array List"]["wall"] > 0
        assert classes["Array List"]["sequents"] > 0
        # ...and per-worker latency data from the remote dispatch.
        [worker_entry] = response["workers"]
        assert worker_entry["origin"] == "registry"
        assert worker_entry["latency"]["count"] > 0
        assert worker_entry["ewma_task_wall"] > 0
        assert sum(count for _, count in worker_entry["latency"]["buckets"]) == (
            worker_entry["latency"]["count"]
        )

    def test_cli_metrics_connect_prints_the_report(self, served, capsys):
        instance, client = served
        assert client.request({"op": "verify", "name": "Array List"})["ok"]
        exit_code = main(["--connect", str(instance.socket_path), "metrics"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert f"Daemon metrics (protocol {PROTOCOL_VERSION})" in out
        assert "Measured class costs" in out
        assert "Array List" in out
        assert "Remote workers" in out
        assert "registry" in out


def test_cli_metrics_requires_connect(capsys):
    assert main(["metrics"]) == 2
    assert "requires --connect" in capsys.readouterr().err
